"""Shared fixtures for the FRL-FI test suite.

Expensive artefacts (trained tiny policies, the policy cache) are
session-scoped so the many tests that need a trained policy reuse one
training run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache


@pytest.fixture(scope="session")
def tiny_gridworld_scale() -> GridWorldScale:
    return GridWorldScale.tiny()

@pytest.fixture(scope="session")
def tiny_drone_scale() -> DroneScale:
    return DroneScale.tiny()


@pytest.fixture(scope="session")
def policy_cache(tmp_path_factory) -> PolicyCache:
    """A session-scoped policy cache rooted in a temporary directory."""
    return PolicyCache(tmp_path_factory.mktemp("frlfi_cache"))


@pytest.fixture(scope="session")
def tiny_gridworld_policies(policy_cache, tiny_gridworld_scale):
    """Trained tiny GridWorld FRL policies (consensus + per-agent)."""
    return policy_cache.gridworld_policies(tiny_gridworld_scale)


@pytest.fixture(scope="session")
def tiny_drone_policy(policy_cache, tiny_drone_scale):
    """Behaviour-cloned tiny drone policy."""
    return policy_cache.drone_policy(tiny_drone_scale)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
