"""Tests for JSON serialization of state dicts and results."""

import numpy as np
import pytest

from repro.utils.serialization import (
    load_json,
    save_json,
    state_dict_from_lists,
    state_dict_to_lists,
)


class TestStateDictRoundtrip:
    def test_roundtrip_preserves_values(self):
        state = {"w": np.arange(6, dtype=np.float64).reshape(2, 3), "b": np.zeros(3)}
        encoded = state_dict_to_lists(state)
        decoded = state_dict_from_lists(encoded)
        for name in state:
            np.testing.assert_array_equal(decoded[name], state[name])

    def test_roundtrip_preserves_dtype_and_shape(self):
        state = {"codes": np.array([[1, -2]], dtype=np.int8)}
        decoded = state_dict_from_lists(state_dict_to_lists(state))
        assert decoded["codes"].dtype == np.int8
        assert decoded["codes"].shape == (1, 2)

    def test_empty_state(self):
        assert state_dict_from_lists(state_dict_to_lists({})) == {}


class TestJsonFiles:
    def test_save_and_load(self, tmp_path):
        path = save_json(tmp_path / "nested" / "result.json", {"value": 3})
        assert path.exists()
        assert load_json(path) == {"value": 3}

    def test_numpy_scalars_serializable(self, tmp_path):
        payload = {"i": np.int64(3), "f": np.float64(0.5), "b": np.bool_(True),
                   "arr": np.array([1.0, 2.0])}
        path = save_json(tmp_path / "np.json", payload)
        loaded = load_json(path)
        assert loaded == {"i": 3, "f": 0.5, "b": True, "arr": [1.0, 2.0]}

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(tmp_path / "bad.json", {"x": object()})
