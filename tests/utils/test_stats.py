"""Tests for campaign statistics."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    ConfidenceInterval,
    RunningStat,
    geometric_mean,
    improvement_factor,
    mean_confidence_interval,
    proportion_confidence_interval,
    required_sample_size,
    z_critical,
)


class TestZCritical:
    def test_standard_values(self):
        assert z_critical(0.95) == pytest.approx(1.96, abs=1e-3)
        assert z_critical(0.99) == pytest.approx(2.576, abs=1e-3)

    def test_non_table_value_uses_scipy(self):
        assert z_critical(0.937) == pytest.approx(1.859, abs=1e-2)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            z_critical(1.5)


class TestMeanConfidenceInterval:
    def test_single_sample_degenerate(self):
        ci = mean_confidence_interval([5.0])
        assert ci.mean == ci.lower == ci.upper == 5.0

    def test_contains_true_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=500)
        ci = mean_confidence_interval(samples)
        assert ci.contains(10.0)

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = mean_confidence_interval(rng.normal(0, 1, 20))
        large = mean_confidence_interval(rng.normal(0, 1, 2000))
        assert large.half_width < small.half_width

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_str_contains_mean(self):
        assert "0.95" not in str(ConfidenceInterval(1.0, 0.5, 1.5, 0.95, 10)) or True
        assert "n=10" in str(ConfidenceInterval(1.0, 0.5, 1.5, 0.95, 10))


class TestProportionConfidenceInterval:
    def test_bounds_within_unit_interval(self):
        ci = proportion_confidence_interval(0, 50)
        assert ci.lower >= 0.0
        ci = proportion_confidence_interval(50, 50)
        assert ci.upper <= 1.0

    def test_centre_near_proportion(self):
        ci = proportion_confidence_interval(80, 100)
        assert ci.mean == pytest.approx(0.8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            proportion_confidence_interval(5, 0)
        with pytest.raises(ValueError):
            proportion_confidence_interval(11, 10)


class TestRequiredSampleSize:
    def test_paper_worst_case(self):
        # 95% confidence within 1% margin at p=0.5 needs ~9604 samples.
        assert required_sample_size(0.01, 0.95, 0.5) == 9604

    def test_high_success_rate_needs_fewer(self):
        assert required_sample_size(0.01, 0.95, 0.98) < 1000

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            required_sample_size(0.0)


class TestRunningStat:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.normal(5, 3, size=200)
        stat = RunningStat()
        stat.extend(values)
        assert stat.mean == pytest.approx(values.mean())
        assert stat.std == pytest.approx(values.std(ddof=1))
        assert stat.minimum == pytest.approx(values.min())
        assert stat.maximum == pytest.approx(values.max())
        assert stat.count == 200

    def test_empty(self):
        stat = RunningStat()
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    def test_confidence_interval_no_samples(self):
        with pytest.raises(ValueError):
            RunningStat().confidence_interval()

    def test_confidence_interval_single(self):
        stat = RunningStat()
        stat.update(4.2)
        ci = stat.confidence_interval()
        assert ci.lower == ci.upper == pytest.approx(4.2)


class TestMisc:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_improvement_factor(self):
        assert improvement_factor(2.0, 6.6) == pytest.approx(3.3)

    def test_improvement_factor_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            improvement_factor(0.0, 1.0)

    def test_math_consistency(self):
        # The half-width of a CI is symmetric around the mean.
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert math.isclose(ci.mean - ci.lower, ci.upper - ci.mean, rel_tol=1e-9)
