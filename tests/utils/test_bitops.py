"""Tests for bit-level helpers."""

import numpy as np
import pytest

from repro.utils.bitops import (
    bit_planes,
    count_ones,
    faults_for_ber,
    flip_bits,
    one_bit_fraction,
    pack_unsigned,
    random_bit_positions,
    set_bits,
    signed_dtype_for,
    unsigned_dtype_for,
)


class TestDtypeSelection:
    @pytest.mark.parametrize("width,expected", [(8, np.uint8), (16, np.uint16), (12, np.uint16),
                                                 (32, np.uint32), (64, np.uint64)])
    def test_unsigned(self, width, expected):
        assert unsigned_dtype_for(width) == np.dtype(expected)

    def test_signed(self):
        assert signed_dtype_for(8) == np.dtype(np.int8)
        assert signed_dtype_for(16) == np.dtype(np.int16)

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            unsigned_dtype_for(65)


class TestFlipBits:
    def test_single_flip(self):
        codes = np.array([0, 0, 0], dtype=np.int8)
        flipped = flip_bits(codes, np.array([1]), np.array([0]), bit_width=8)
        assert flipped.tolist() == [0, 1, 0]

    def test_double_flip_cancels(self):
        codes = np.array([0], dtype=np.int8)
        flipped = flip_bits(codes, np.array([0, 0]), np.array([3, 3]), bit_width=8)
        assert flipped.tolist() == [0]

    def test_sign_bit_flip(self):
        codes = np.array([0], dtype=np.int8)
        flipped = flip_bits(codes, np.array([0]), np.array([7]), bit_width=8)
        assert flipped[0] == -128

    def test_preserves_shape_and_dtype(self):
        codes = np.arange(12, dtype=np.int16).reshape(3, 4)
        flipped = flip_bits(codes, np.array([5]), np.array([2]), bit_width=16)
        assert flipped.shape == (3, 4)
        assert flipped.dtype == np.int16

    def test_original_untouched(self):
        codes = np.zeros(4, dtype=np.int8)
        flip_bits(codes, np.array([0]), np.array([0]), bit_width=8)
        assert codes.tolist() == [0, 0, 0, 0]

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_bits(np.zeros(2, dtype=np.int8), np.array([0]), np.array([8]), bit_width=8)

    def test_out_of_range_element_rejected(self):
        with pytest.raises(IndexError):
            flip_bits(np.zeros(2, dtype=np.int8), np.array([5]), np.array([0]), bit_width=8)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            flip_bits(np.zeros(2, dtype=np.int8), np.array([0, 1]), np.array([0]), bit_width=8)


class TestSetBits:
    def test_stuck_at_one(self):
        codes = np.array([0], dtype=np.int8)
        result = set_bits(codes, np.array([0]), np.array([2]), bit_width=8, value=1)
        assert result[0] == 4

    def test_stuck_at_zero(self):
        codes = np.array([7], dtype=np.int8)
        result = set_bits(codes, np.array([0]), np.array([1]), bit_width=8, value=0)
        assert result[0] == 5

    def test_idempotent(self):
        codes = np.array([12], dtype=np.int8)
        once = set_bits(codes, np.array([0]), np.array([3]), 8, value=1)
        twice = set_bits(once, np.array([0]), np.array([3]), 8, value=1)
        assert once.tolist() == twice.tolist()

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            set_bits(np.zeros(1, dtype=np.int8), np.array([0]), np.array([0]), 8, value=2)


class TestCounting:
    def test_count_ones_simple(self):
        assert count_ones(np.array([0b1011], dtype=np.int8), 8) == 3

    def test_count_ones_negative_two_complement(self):
        # -1 in 8-bit two's complement is all ones.
        assert count_ones(np.array([-1], dtype=np.int8), 8) == 8

    def test_one_bit_fraction_zeros(self):
        assert one_bit_fraction(np.zeros(10, dtype=np.int8), 8) == 0.0

    def test_one_bit_fraction_empty(self):
        assert one_bit_fraction(np.zeros(0, dtype=np.int8), 8) == 0.0

    def test_bit_planes_roundtrip(self):
        codes = np.array([5, 2], dtype=np.int8)
        planes = bit_planes(codes, 8)
        assert planes.shape == (8, 2)
        reconstructed = sum(planes[b] * (1 << b) for b in range(8))
        assert reconstructed.tolist() == [5, 2]


class TestFaultCounts:
    def test_zero_rate(self, rng):
        assert faults_for_ber(1000, 0.0, rng) == 0

    def test_large_expected_deterministic(self, rng):
        assert faults_for_ber(10_000, 0.01, rng) == 100

    def test_small_expected_binomial(self, rng):
        counts = [faults_for_ber(100, 0.01, rng) for _ in range(200)]
        assert min(counts) >= 0
        assert 0.2 < np.mean(counts) < 3.0

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            faults_for_ber(10, 1.5, rng)

    def test_random_bit_positions_in_range(self, rng):
        positions = random_bit_positions(rng, 100, 16)
        assert positions.min() >= 0 and positions.max() < 16

    def test_pack_unsigned_masks(self):
        packed, dtype = pack_unsigned(np.array([0x1FF]), 8)
        assert packed[0] == 0xFF
        assert dtype == np.dtype(np.uint8)
