"""Tests for plain-text table and heatmap rendering."""

import pytest

from repro.utils.tables import Table, render_heatmap, render_series, render_table


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["name", "value"], [["alpha", 1.5], ["beta", 2.0]])
        assert "name" in text and "alpha" in text and "1.50" in text

    def test_title_first_line(self):
        text = render_table(["a"], [[1]], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_custom_float_format(self):
        text = render_table(["x"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in text


class TestTable:
    def test_add_row_and_render(self):
        table = Table(headers=["id", "metric"])
        table.add_row([1, 0.5])
        assert "0.50" in table.render()

    def test_add_row_validates_length(self):
        table = Table(headers=["only"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_to_dicts(self):
        table = Table(headers=["k", "v"], rows=[["a", 1]])
        assert table.to_dicts() == [{"k": "a", "v": 1}]

    def test_str_matches_render(self):
        table = Table(headers=["k"], rows=[["x"]])
        assert str(table) == table.render()


class TestRenderHeatmap:
    def test_layout(self):
        text = render_heatmap(["r0", "r1"], [10, 20], [[1.0, 2.0], [3.0, 4.0]],
                              title="heat", row_axis="BER", column_axis="episode")
        assert "heat" in text
        assert "r0" in text and "20" in text
        assert "4.0" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            render_heatmap(["r0"], [1, 2], [[1.0]])
        with pytest.raises(ValueError):
            render_heatmap(["r0", "r1"], [1], [[1.0]])


class TestRenderSeries:
    def test_series_columns(self):
        text = render_series("x", [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]})
        assert "a" in text and "b" in text and "0.40" in text
