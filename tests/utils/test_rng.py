"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_rng, choice_without_replacement, spawn_rngs, split_evenly


class TestAsRng:
    def test_accepts_integer_seed(self):
        generator = as_rng(42)
        assert isinstance(generator, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert as_rng(7).integers(0, 1000, 10).tolist() == as_rng(7).integers(0, 1000, 10).tolist()

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(5)
        generator = as_rng(sequence)
        assert isinstance(generator, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_differ(self):
        streams = spawn_rngs(0, 3)
        draws = [stream.integers(0, 10**9) for stream in streams]
        assert len(set(draws)) == 3

    def test_reproducible(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2


class TestRngFactory:
    def test_same_key_same_stream(self):
        factory = RngFactory(0)
        a = factory.stream("agent", 3).integers(0, 10**9, 5)
        b = factory.stream("agent", 3).integers(0, 10**9, 5)
        assert a.tolist() == b.tolist()

    def test_different_keys_different_streams(self):
        factory = RngFactory(0)
        a = factory.stream("agent", 0).integers(0, 10**9, 5)
        b = factory.stream("agent", 1).integers(0, 10**9, 5)
        assert a.tolist() != b.tolist()

    def test_order_independence(self):
        first = RngFactory(1)
        _ = first.stream("x")
        value_after = first.stream("y").integers(0, 10**9)
        second = RngFactory(1)
        value_direct = second.stream("y").integers(0, 10**9)
        assert value_after == value_direct

    def test_streams_helper(self):
        factory = RngFactory(2)
        streams = factory.streams("fault", 4)
        assert len(streams) == 4

    def test_seed_property(self):
        assert RngFactory(9).seed == 9


class TestHelpers:
    def test_choice_without_replacement_unique(self, rng):
        indices = choice_without_replacement(rng, 50, 20)
        assert len(set(indices.tolist())) == 20

    def test_choice_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            choice_without_replacement(rng, 5, 10)

    def test_split_evenly_covers_all(self):
        chunks = split_evenly(range(10), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_split_evenly_more_parts_than_items(self):
        chunks = split_evenly([1, 2], 4)
        assert sum(chunks, []) == [1, 2]
        assert len(chunks) == 4

    def test_split_evenly_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            split_evenly([1], 0)
