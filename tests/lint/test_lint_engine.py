"""Engine behavior: pragmas, malformed input, config scoping, determinism."""

import pytest

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.config import LintConfigError, load_config
from repro.lint.pragmas import (
    MALFORMED_PRAGMA_ID,
    format_pragma,
    parse_pragma_comment,
    parse_pragmas,
)

WALLCLOCK = "import time\n\npayload = {'at': time.time()}\n"


# --------------------------------------------------------------------- pragmas
def test_same_line_pragma_suppresses():
    source = (
        "import time\n\n"
        "at = time.time()  # repro-lint: disable=REP003 -- ingest metadata\n"
    )
    report = lint_source(source)
    assert not report.findings
    assert report.suppressed == 1


def test_pragma_on_adjacent_line_does_not_suppress():
    source = (
        "import time\n\n"
        "# repro-lint: disable=REP003 -- wrong line, pragmas are line-exact\n"
        "at = time.time()\n"
    )
    report = lint_source(source)
    assert [f.rule_id for f in report.findings] == ["REP003"]
    assert report.suppressed == 0


def test_pragma_for_other_rule_does_not_suppress():
    source = (
        "import time\n\n"
        "at = time.time()  # repro-lint: disable=REP001 -- mismatched rule\n"
    )
    report = lint_source(source)
    assert [f.rule_id for f in report.findings] == ["REP003"]


def test_pragma_without_reason_is_a_finding_and_does_not_suppress():
    source = "import time\n\nat = time.time()  # repro-lint: disable=REP003\n"
    report = lint_source(source)
    rule_ids = sorted(f.rule_id for f in report.findings)
    assert rule_ids == [MALFORMED_PRAGMA_ID, "REP003"]
    assert report.suppressed == 0


def test_pragma_with_bad_rule_id_is_a_finding():
    source = "x = 1  # repro-lint: disable=REP3 -- typo'd id\n"
    report = lint_source(source)
    assert [f.rule_id for f in report.findings] == [MALFORMED_PRAGMA_ID]
    assert "REP3" in report.findings[0].message


def test_pragma_syntax_inside_string_is_ignored():
    source = 'doc = "# repro-lint: disable=BOGUS"\n'
    report = lint_source(source)
    assert not report.findings


def test_multi_rule_pragma_suppresses_both():
    source = (
        "import glob\n"
        "import time\n\n"
        "rows = [(p, time.time()) for p in glob.glob('*')]"
        "  # repro-lint: disable=REP002,REP003 -- demo\n"
    )
    report = lint_source(source)
    assert not report.findings
    assert report.suppressed == 2


def test_format_pragma_round_trips_through_parser():
    ids, reason, problem = parse_pragma_comment(
        format_pragma(["REP001", "REP005"], "because reasons")
    )
    assert ids == ["REP001", "REP005"]
    assert reason == "because reasons"
    assert problem is None


def test_parse_pragmas_keys_by_line():
    source = "x = 1\ny = 2  # repro-lint: disable=REP001 -- demo\n"
    pragmas, malformed = parse_pragmas(source)
    assert list(pragmas) == [2]
    assert pragmas[2].rule_ids == ("REP001",)
    assert not malformed


# ------------------------------------------------------------- malformed input
def test_syntax_error_becomes_finding():
    report = lint_source("def broken(:\n")
    assert [f.rule_id for f in report.findings] == [MALFORMED_PRAGMA_ID]
    assert "does not parse" in report.findings[0].message


# ------------------------------------------------------------- config scoping
def test_isolated_config_applies_every_rule(tmp_path):
    path = tmp_path / "anywhere.py"
    path.write_text(WALLCLOCK, encoding="utf8")
    report = lint_paths([path], config=LintConfig())
    assert [f.rule_id for f in report.findings] == ["REP003"]


def test_per_rule_paths_scope_rule_to_configured_tree(tmp_path):
    (tmp_path / "runtime").mkdir()
    inside = tmp_path / "runtime" / "store.py"
    outside = tmp_path / "tool.py"
    inside.write_text(WALLCLOCK, encoding="utf8")
    outside.write_text(WALLCLOCK, encoding="utf8")
    config = LintConfig(root=tmp_path, per_rule_paths={"REP003": ("runtime",)})
    report = lint_paths([inside, outside], config=config)
    assert [f.path for f in report.findings] == [str(inside)]


def test_load_config_reads_pyproject(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.repro-lint]\ninclude = ["src"]\n'
        '[tool.repro-lint.per-rule-paths]\nREP003 = ["src/runtime"]\n',
        encoding="utf8",
    )
    config = load_config(pyproject)
    assert config.per_rule_paths == {"REP003": ("src/runtime",)}
    assert config.rule_applies("REP003", tmp_path / "src" / "runtime" / "x.py")
    assert not config.rule_applies("REP003", tmp_path / "src" / "other.py")
    # Unscoped rules always apply.
    assert config.rule_applies("REP001", tmp_path / "src" / "other.py")


def test_load_config_rejects_unknown_keys(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.repro-lint]\nbogus = 1\n", encoding="utf8")
    with pytest.raises(LintConfigError):
        load_config(pyproject)


def test_missing_pyproject_is_permissive(tmp_path):
    config = load_config(tmp_path / "nope.toml")
    assert config.rule_applies("REP003", tmp_path / "anything.py")


# --------------------------------------------------------------- determinism
def test_report_order_is_deterministic(tmp_path):
    b = tmp_path / "b.py"
    a = tmp_path / "a.py"
    for path in (b, a):
        path.write_text(WALLCLOCK, encoding="utf8")
    report = lint_paths([tmp_path])
    assert [f.path for f in report.findings] == [str(a), str(b)]
    assert report.checked_files == 2
