"""Every rule, demonstrated against the fixture corpus.

Each rule has a ``repNNN_bad.py`` fixture (≥1 true positive per pattern the
rule claims to catch) and a ``repNNN_good.py`` near-miss fixture (the same
shapes written correctly, which must produce zero findings).  The corpus is
linted with an isolated :class:`~repro.lint.config.LintConfig` so the
pyproject path scoping cannot mask a rule regression.

The REP004 and REP005 bad fixtures are seeded regressions: they reproduce
the PR 3 bug (absolute ``cache_dir`` path digested into a fingerprint
token) and the PR 5 bug (blocking stderr read on the asyncio event loop)
in miniature, so the rules that exist because of those bugs provably still
catch them.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, rule_by_id
from repro.lint.rules import RULES

FIXTURES = Path(__file__).parent / "fixtures"
RULE_IDS = [rule.id for rule in RULES]

# Minimum true-positive count per bad fixture: every distinct pattern the
# fixture exercises must be flagged at least once.
EXPECTED_BAD_MINIMUM = {
    "REP001": 5,  # randint, standard_normal, shuffle, choice, argless default_rng
    "REP002": 4,  # os.listdir, glob.glob, set(...) loop, .glob comprehension
    "REP003": 3,  # time.time, datetime.now, date.today
    "REP004": 4,  # repr(cache_dir), .resolve(), abspath, f-string of pathlike
    "REP005": 4,  # read_text, bare .wait(), time.sleep, subprocess.run
    "REP006": 4,  # nested fn, lambda, partial(nested), nested group runner
}


def _lint_fixture(name: str):
    path = FIXTURES / name
    assert path.exists(), f"fixture corpus is missing {name}"
    return lint_paths([path], config=LintConfig())


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_is_flagged(rule_id):
    """The bad fixture yields at least the expected true positives."""
    report = _lint_fixture(f"{rule_id.lower()}_bad.py")
    hits = [f for f in report.findings if f.rule_id == rule_id]
    assert len(hits) >= EXPECTED_BAD_MINIMUM[rule_id], (
        f"{rule_id} found only {len(hits)} of >= "
        f"{EXPECTED_BAD_MINIMUM[rule_id]} expected violations: {hits}"
    )


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_has_no_foreign_noise(rule_id):
    """A bad fixture only trips its own rule (plus none of REP000)."""
    report = _lint_fixture(f"{rule_id.lower()}_bad.py")
    foreign = [f for f in report.findings if f.rule_id != rule_id]
    assert not foreign, f"unexpected cross-rule findings: {foreign}"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    """The near-miss fixture produces zero findings from any rule."""
    report = _lint_fixture(f"{rule_id.lower()}_good.py")
    assert not report.findings, (
        f"near-miss fixture for {rule_id} was flagged: {report.findings}"
    )


def test_rep004_bad_reproduces_pr3_bug_class():
    """The seeded PR 3 regression (path in fingerprint_token) is caught."""
    report = _lint_fixture("rep004_bad.py")
    lines = {f.line for f in report.findings if f.rule_id == "REP004"}
    source = (FIXTURES / "rep004_bad.py").read_text(encoding="utf8").splitlines()
    flagged = "\n".join(source[line - 1] for line in sorted(lines))
    assert "repr(self.cache_dir)" in flagged, flagged


def test_rep005_bad_reproduces_pr5_bug_class():
    """The seeded PR 5 regression (blocking read in async def) is caught."""
    report = _lint_fixture("rep005_bad.py")
    lines = {f.line for f in report.findings if f.rule_id == "REP005"}
    source = (FIXTURES / "rep005_bad.py").read_text(encoding="utf8").splitlines()
    flagged = "\n".join(source[line - 1] for line in sorted(lines))
    assert "read_text()" in flagged, flagged


def test_registry_is_complete_and_explainable():
    """Six rules, stable ids, and every rule explains itself fully."""
    assert RULE_IDS == [f"REP00{i}" for i in range(1, 7)]
    for rule_id in RULE_IDS:
        text = rule_by_id(rule_id).explain()
        assert rule_id in text
        # Worked examples are part of the rule contract (--explain output).
        assert "Violation:" in text and "Fix:" in text
