"""The ``repro-lint`` CLI: exit codes, formats, explain/list, config flags."""

import json
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.rules import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

CLEAN = "x = 1\n"
DIRTY = "import time\n\nat = time.time()\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf8")
    return path


def test_clean_path_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN)
    assert main([str(path), "--isolated"]) == 0
    assert "0 finding(s) in 1 file" in capsys.readouterr().out


def test_findings_exit_one(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY)
    assert main([str(path), "--isolated"]) == 1
    out = capsys.readouterr().out
    assert "REP003" in out and f"{path}:3:" in out


def test_no_error_is_advisory(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY)
    assert main([str(path), "--isolated", "--no-error"]) == 0
    assert "REP003" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY)
    assert main([str(path), "--isolated", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked_files"] == 1
    assert payload["suppressed"] == 0
    [finding] = payload["findings"]
    assert finding["rule"] == "REP003"
    assert finding["line"] == 3


def test_explain_prints_rationale(capsys):
    assert main(["--explain", "REP004"]) == 0
    out = capsys.readouterr().out
    assert "REP004" in out and "Violation:" in out and "Fix:" in out


def test_explain_unknown_rule_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--explain", "REP999"])
    assert excinfo.value.code == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.id in out


def test_no_paths_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "does-not-exist.py")])
    assert excinfo.value.code == 2


def test_config_flag_scopes_rules(tmp_path, capsys):
    pyproject = _write(
        tmp_path,
        "pyproject.toml",
        '[tool.repro-lint]\n[tool.repro-lint.per-rule-paths]\nREP003 = ["runtime"]\n',
    )
    outside = _write(tmp_path, "tool.py", DIRTY)
    assert main([str(outside), "--config", str(pyproject)]) == 0
    capsys.readouterr()
    # --isolated ignores the same config and the finding comes back.
    assert main([str(outside), "--config", str(pyproject), "--isolated"]) == 1


def test_malformed_config_is_usage_error(tmp_path):
    pyproject = _write(tmp_path, "pyproject.toml", "[tool.repro-lint]\nbogus = 1\n")
    target = _write(tmp_path, "clean.py", CLEAN)
    with pytest.raises(SystemExit) as excinfo:
        main([str(target), "--config", str(pyproject)])
    assert excinfo.value.code == 2


def test_in_tree_sources_are_clean_under_repo_config(capsys):
    """The acceptance gate: ``repro-lint src/repro`` exits 0 on this tree.

    Uses the repo's own pyproject (path scoping included), exactly as CI
    invokes it — an in-tree regression of any rule fails here first.
    """
    src = REPO_ROOT / "src" / "repro"
    exit_code = main([str(src), "--config", str(REPO_ROOT / "pyproject.toml")])
    out = capsys.readouterr().out
    assert exit_code == 0, f"repro-lint found in-tree violations:\n{out}"
    assert "0 finding(s)" in out
