# Near-miss negatives for REP005: the sanctioned async equivalents.
import asyncio
import subprocess
import time
from pathlib import Path


async def poll_launch_fixed(launch):
    # The PR 5 fix shape: offload the blocking read to the executor.
    def _read() -> str:
        return Path(launch.stderr_path).read_text()

    return await asyncio.get_running_loop().run_in_executor(None, _read)


async def wait_for_job(process):
    # Awaiting an asyncio subprocess wait is the non-blocking form.
    await process.wait()


async def schedule_wait(launch):
    # .wait() handed to an async wrapper is not a blocking call.
    return asyncio.ensure_future(launch.wait())


async def throttle():
    await asyncio.sleep(0.5)


def run_sbatch(script):
    # Blocking subprocess.run in a SYNC function is ordinary code.
    return subprocess.run(["sbatch", script], capture_output=True)


def measure():
    time.sleep(0.01)
