# True positives for REP006: unpicklable / unimportable pool callables.
import functools
from concurrent.futures import ProcessPoolExecutor

from repro.runtime.vectorize import register_group_runner


def run_batch(cells):
    def _evaluate(cell):
        return cell * 2

    with ProcessPoolExecutor() as pool:
        # Nested function: the child process cannot import it by name.
        futures = [pool.submit(_evaluate, cell) for cell in cells]
        # Lambdas are never picklable.
        extra = pool.submit(lambda: 0)
        # functools.partial of a nested function is just as broken.
        bound = pool.submit(functools.partial(_evaluate, cells[0]))
    return futures, extra, bound


def install_runner(evaluate_cell):
    def _group_runner(cells, context):
        return [evaluate_cell(cell) for cell in cells]

    # The vectorize registry is keyed by function object and repopulated by
    # worker-side import — a nested runner silently misses in the child.
    register_group_runner(evaluate_cell, _group_runner)
