# Near-miss negatives for REP006: module-level, importable pool callables.
import functools
from concurrent.futures import ProcessPoolExecutor

from repro.runtime.vectorize import register_group_runner


def _evaluate(cell):
    return cell * 2


def _evaluate_scaled(cell, factor):
    return cell * factor


def _group_runner(cells, context):
    return [_evaluate(cell) for cell in cells]


def run_batch(cells):
    with ProcessPoolExecutor() as pool:
        # Module-level functions import cleanly in the worker process.
        futures = [pool.submit(_evaluate, cell) for cell in cells]
        # partial of a module-level function pickles fine.
        bound = pool.submit(functools.partial(_evaluate_scaled, cells[0], factor=3))
    return futures, bound


register_group_runner(_evaluate, _group_runner)
