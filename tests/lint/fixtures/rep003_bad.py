# True positives for REP003: wall-clock reads in fingerprint-adjacent code.
import datetime
import time


def stamp_payload(payload):
    payload["generated_at"] = time.time()
    return payload


def journal_header():
    return {"written": datetime.datetime.now().isoformat()}


def label_run():
    return f"run-{datetime.date.today()}"
