# Near-miss negatives for REP001: explicit, seeded RNG plumbing.
import random

import numpy as np


def sample_faults(count, rng: np.random.Generator):
    # Drawing from an injected Generator is the sanctioned pattern.
    bits = rng.integers(0, 32, size=count)
    noise = rng.standard_normal(count)
    return bits, noise


def pick_agent(agents, seed):
    # Instantiating stdlib Random with a seed is allowed.
    local = random.Random(seed)
    return local.choice(agents)


def make_generator(seed):
    # Seeded default_rng is the repo-wide idiom, not a finding.
    return np.random.default_rng(np.random.SeedSequence(seed))
