# True positives for REP001: global / unseeded RNG state.
import random

import numpy as np


def sample_faults(count):
    # Module-level numpy RNG draws from hidden global state.
    bits = np.random.randint(0, 32, size=count)
    noise = np.random.standard_normal(count)
    return bits, noise


def pick_agent(agents):
    # stdlib global RNG is just as non-reproducible.
    random.shuffle(agents)
    return random.choice(agents)


def make_generator():
    # Argless default_rng() seeds from OS entropy: different every run.
    return np.random.default_rng()
