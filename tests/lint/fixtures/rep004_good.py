# Near-miss negatives for REP004: location-independent fingerprint tokens.
import os
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class PolicyRefFixed:
    cache_dir: str
    key: str
    field: str

    def fingerprint_token(self):
        # The PR 3 fix: identity is the cache key + field, never the path.
        return f"policy:{self.key}:{self.field}"


@dataclass(frozen=True)
class RelativeRef:
    path: Path

    def fingerprint_token(self):
        # A repo-relative name (no resolve/abspath) is machine-portable.
        return f"artifact:{self.path.name}"


def load_config(workdir):
    # Path resolution OUTSIDE fingerprint_token is ordinary code.
    absolute = os.path.abspath(workdir)
    return Path(absolute, "config.json")
