# Near-miss negatives for REP003: monotonic timing and injected clocks.
import time


def measure(fn):
    # perf_counter/monotonic are for durations, never serialized as identity.
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def heartbeat_interval():
    return time.monotonic()


def stamp_payload(payload, clock):
    # An injected clock callable keeps the caller in control of determinism.
    payload["generated_at"] = clock()
    return payload
