# True positives for REP005: the PR 5 bug class, reproduced.
#
# The original defect: the orchestrator's async poll loop drained a launch's
# stderr with a blocking read while the child still held the pipe open —
# deadlocking the event loop against a fork-inherited process group.
import subprocess
import time
from pathlib import Path


async def poll_launch_pr5_bug(launch):
    # Blocking file read on the event loop: the literal PR 5 deadlock shape.
    stderr = Path(launch.stderr_path).read_text()
    return stderr


async def wait_for_job(process):
    # Bare .wait() not awaited and not wrapped: blocks the loop.
    process.wait()


async def throttle():
    # time.sleep inside async def stalls every other coroutine.
    time.sleep(0.5)


async def run_sbatch(script):
    # subprocess.run blocks until the child exits.
    return subprocess.run(["sbatch", script], capture_output=True)
