# True positives for REP004: the PR 3 bug class, reproduced.
#
# The original defect: PolicyRef.fingerprint_token() digested repr(self),
# which included the absolute cache_dir path — journals fingerprinted on one
# machine could never be byte-identical on another.
import os
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class PolicyRefLikePr3Bug:
    cache_dir: str
    key: str
    field: str

    def fingerprint_token(self):
        # repr() of a value whose name says "dir" — the literal PR 3 bug.
        return repr(self.cache_dir) + self.key


@dataclass(frozen=True)
class ResolvingRef:
    path: Path

    def fingerprint_token(self):
        # .resolve() bakes the machine's filesystem layout into the token.
        return str(self.path.resolve())


def fingerprint_token(workdir):
    # Free function variant: abspath + f-string of a pathlike name.
    absolute_dir = os.path.abspath(workdir)
    return f"cell@{absolute_dir}"
