# True positives for REP002: unordered iteration feeding output.
import glob
import os


def collect_shards(root):
    rows = []
    for name in os.listdir(root):
        rows.append(name)
    return rows


def collect_journals(pattern):
    return [path for path in glob.glob(pattern)]


def union_agents(a, b):
    merged = []
    for agent in set(a + b):
        merged.append(agent)
    return merged


def walk_cache(cache_dir):
    return [entry for entry in cache_dir.glob("*.json")]
