# Near-miss negatives for REP002: the same listings, deterministically ordered.
import glob
import os


def collect_shards(root):
    rows = []
    for name in sorted(os.listdir(root)):
        rows.append(name)
    return rows


def collect_journals(pattern):
    return [path for path in sorted(glob.glob(pattern))]


def union_agents(a, b):
    merged = []
    for agent in sorted(set(a) | set(b)):
        merged.append(agent)
    return merged


def walk_cache(cache_dir):
    return [entry for entry in sorted(cache_dir.glob("*.json"))]


def membership_only(names):
    # Building a set for membership tests (not iterating it) is fine.
    wanted = set(names)
    return "agent-0" in wanted
