"""Tests for smoothing-average aggregation."""

import numpy as np
import pytest

from repro.federated import AlphaSchedule, smoothing_average
from repro.federated.aggregation import average_states


def make_states(count, size=4, seed=0):
    rng = np.random.default_rng(seed)
    return [{"w": rng.normal(size=size), "b": rng.normal(size=2)} for _ in range(count)]


class TestAverageStates:
    def test_plain_average(self):
        states = [{"w": np.array([0.0, 2.0])}, {"w": np.array([2.0, 4.0])}]
        np.testing.assert_allclose(average_states(states)["w"], [1.0, 3.0])

    def test_single_state(self):
        states = [{"w": np.array([1.0])}]
        np.testing.assert_allclose(average_states(states)["w"], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_states([])

    def test_key_mismatch_rejected(self):
        with pytest.raises(KeyError):
            average_states([{"w": np.zeros(1)}, {"v": np.zeros(1)}])


class TestSmoothingAverage:
    def test_alpha_one_keeps_own_policy(self):
        states = make_states(3)
        mixed = smoothing_average(states, alpha=1.0)
        for own, new in zip(states, mixed):
            np.testing.assert_allclose(new["w"], own["w"])

    def test_alpha_one_over_n_gives_consensus(self):
        states = make_states(4)
        mixed = smoothing_average(states, alpha=0.25)
        consensus = average_states(states)
        for new in mixed:
            np.testing.assert_allclose(new["w"], consensus["w"])

    def test_formula_matches_definition(self):
        states = make_states(3, seed=5)
        alpha = 0.6
        beta = (1 - alpha) / 2
        mixed = smoothing_average(states, alpha=alpha)
        expected = alpha * states[0]["w"] + beta * (states[1]["w"] + states[2]["w"])
        np.testing.assert_allclose(mixed[0]["w"], expected)

    def test_single_agent_passthrough_copy(self):
        states = make_states(1)
        mixed = smoothing_average(states, alpha=0.5)
        np.testing.assert_allclose(mixed[0]["w"], states[0]["w"])
        mixed[0]["w"][0] += 1.0
        assert mixed[0]["w"][0] != states[0]["w"][0]

    def test_mean_preserved(self):
        # The smoothing average is mean-preserving: the average of the
        # broadcast policies equals the average of the uploads.
        states = make_states(5, seed=2)
        mixed = smoothing_average(states, alpha=0.4)
        np.testing.assert_allclose(average_states(mixed)["w"], average_states(states)["w"])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            smoothing_average(make_states(2), alpha=0.0)
        with pytest.raises(ValueError):
            smoothing_average(make_states(2), alpha=1.5)


class TestAlphaSchedule:
    def test_converges_to_one_over_n(self):
        schedule = AlphaSchedule(initial_alpha=0.8, decay=0.5)
        assert schedule.alpha(0, 4) == pytest.approx(0.8)
        assert schedule.alpha(50, 4) == pytest.approx(0.25, abs=1e-6)

    def test_monotone_decreasing(self):
        schedule = AlphaSchedule()
        values = [schedule.alpha(k, 4) for k in range(30)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_never_below_limit(self):
        schedule = AlphaSchedule(initial_alpha=0.1)
        assert schedule.alpha(0, 2) >= 0.5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            AlphaSchedule(initial_alpha=0.0)
        with pytest.raises(ValueError):
            AlphaSchedule().alpha(-1, 4)
        with pytest.raises(ValueError):
            AlphaSchedule().alpha(0, 0)
