"""Bitwise identity of lockstep group training/evaluation vs serial systems.

``train_group_lockstep`` interleaves the episodes of several independent
systems through one vector environment and one stacked policy.  The contract
is byte-identity with training each system alone: logs, reward histories and
evaluation results must match exactly, not approximately — this is what lets
the campaign runner route whole cell groups through the vectorized path
without perturbing any published number.
"""

import numpy as np
import pytest

from repro.core.fault_callbacks import make_training_fault
from repro.core.workloads import build_drone_frl_system, build_drone_single_system
from repro.federated.callbacks import TrainingCallback
from repro.federated.lockstep import (
    average_flight_distance_group_lockstep,
    lockstep_compatible,
    train_group_lockstep,
)
from repro.utils.rng import RngFactory


@pytest.fixture(scope="module")
def pretrained(tiny_drone_policy):
    """The behaviour-cloned state dict inside the cached policy payload."""
    return tiny_drone_policy["policy"]


def _fault(scale, ber, stream_args, location="agent", target="weights"):
    return make_training_fault(
        location=location,
        bit_error_rate=ber,
        injection_episode=1,
        target=target,
        datatype=scale.datatype,
        rng=RngFactory(scale.seed).stream(*stream_args),
    )


def _mixed_group(scale, pretrained):
    """Three independent cells: FRL/agent-fault, FRL/server-fault, single."""
    systems = [
        build_drone_frl_system(scale, seed_offset=0, initial_state=pretrained),
        build_drone_frl_system(scale, seed_offset=1, initial_state=pretrained),
        build_drone_single_system(scale, initial_state=pretrained),
    ]
    callbacks = [
        [_fault(scale, 1e-2, ("fi", 0), location="agent")],
        [_fault(scale, 1e-3, ("fi", 1), location="server")],
        [_fault(scale, 1e-2, ("fi", 2), location="agent")],
    ]
    return systems, callbacks


def _reward_histories(system):
    if hasattr(system, "schedule"):
        return [list(fed.reward_history) for fed in system.agents]
    return [list(system.wrapper.reward_history)]


class TestGroupTrainingIdentity:
    def test_mixed_group_matches_serial_bitwise(self, tiny_drone_scale, pretrained):
        scale = tiny_drone_scale
        episodes = scale.fine_tune_episodes
        serial_systems, serial_callbacks = _mixed_group(scale, pretrained)
        for system, callbacks in zip(serial_systems, serial_callbacks):
            system.train(episodes, callbacks=callbacks)
        serial_distances = [
            system.average_flight_distance(attempts=scale.evaluation_attempts)
            for system in serial_systems
        ]

        vec_systems, vec_callbacks = _mixed_group(scale, pretrained)
        assert lockstep_compatible(vec_systems, vec_callbacks)
        logs = train_group_lockstep(vec_systems, vec_callbacks, [episodes] * 3)
        vec_distances = average_flight_distance_group_lockstep(
            vec_systems, attempts=scale.evaluation_attempts
        )

        assert vec_distances == serial_distances  # exact, not approx
        for serial, vec, log in zip(serial_systems, vec_systems, logs):
            assert log is vec.log
            assert vec.log.episode_rewards == serial.log.episode_rewards
            assert _reward_histories(vec) == _reward_histories(serial)
            assert vec.log.communication_count == serial.log.communication_count

    def test_unequal_episode_counts_drop_lanes_out_early(
        self, tiny_drone_scale, pretrained
    ):
        scale = tiny_drone_scale
        counts = [scale.fine_tune_episodes, 1]
        serial = [
            build_drone_frl_system(scale, seed_offset=k, initial_state=pretrained)
            for k in range(2)
        ]
        for system, count in zip(serial, counts):
            system.train(count)
        vec = [
            build_drone_frl_system(scale, seed_offset=k, initial_state=pretrained)
            for k in range(2)
        ]
        train_group_lockstep(vec, [[], []], counts)
        for a, b in zip(serial, vec):
            assert a.log.episode_rewards == b.log.episode_rewards
            assert _reward_histories(a) == _reward_histories(b)


class TestLockstepCompatibility:
    def test_weights_fault_callbacks_pass(self, tiny_drone_scale, pretrained):
        systems, callbacks = _mixed_group(tiny_drone_scale, pretrained)
        assert lockstep_compatible(systems, callbacks)

    def test_activation_fault_callbacks_are_rejected(
        self, tiny_drone_scale, pretrained
    ):
        # Activation faults hook the serial network.forward, which the
        # stacked forward never calls — running them in lockstep would
        # silently drop the injected faults.
        scale = tiny_drone_scale
        system = build_drone_frl_system(scale, initial_state=pretrained)
        callback = _fault(scale, 1e-2, ("fi", 9), target="activations")
        assert not lockstep_compatible([system], [[callback]])

    def test_unknown_callback_types_are_rejected(self, tiny_drone_scale, pretrained):
        system = build_drone_frl_system(tiny_drone_scale, initial_state=pretrained)

        class Watcher(TrainingCallback):
            pass

        assert not lockstep_compatible([system], [[Watcher()]])

    def test_empty_callbacks_pass(self, tiny_drone_scale, pretrained):
        system = build_drone_frl_system(tiny_drone_scale, initial_state=pretrained)
        assert lockstep_compatible([system], [[]])

    def test_mismatched_episode_list_lengths_rejected(
        self, tiny_drone_scale, pretrained
    ):
        system = build_drone_frl_system(tiny_drone_scale, initial_state=pretrained)
        with pytest.raises(ValueError):
            train_group_lockstep([system], [[]], [1, 2])
        with pytest.raises(ValueError):
            train_group_lockstep([system], [[]], [-1])


class TestGroupRunnersMatchSerialCells:
    def test_drone_training_group_runner_identity(self, tiny_drone_scale, pretrained):
        from repro.core.experiments.drone_training import (
            _drone_training_group,
            drone_training_cell,
        )

        scale = tiny_drone_scale
        kwargs_list = [
            dict(
                location=location,
                scale=scale,
                pretrained=pretrained,
                ber=ber,
                injection_episode=1,
                repeat=0,
                row=row,
                column=0,
            )
            for row, (location, ber) in enumerate(
                [("agent", 1e-3), ("server", 1e-2), ("single", 1e-3)]
            )
        ]
        serial = [drone_training_cell(**kwargs) for kwargs in kwargs_list]
        grouped = _drone_training_group(kwargs_list)
        assert grouped == serial

    def test_heterogeneous_attempts_fall_back_to_serial(
        self, tiny_drone_scale, pretrained
    ):
        from dataclasses import replace

        from repro.core.experiments.drone_training import (
            _drone_training_group,
            drone_training_cell,
        )

        scale = tiny_drone_scale
        other = replace(scale, evaluation_attempts=scale.evaluation_attempts + 1)
        kwargs_list = [
            dict(
                location="agent",
                scale=s,
                pretrained=pretrained,
                ber=1e-3,
                injection_episode=1,
                repeat=0,
                row=row,
                column=0,
            )
            for row, s in enumerate([scale, other])
        ]
        serial = [drone_training_cell(**kwargs) for kwargs in kwargs_list]
        assert _drone_training_group(kwargs_list) == serial
