"""Tests for the FRL training orchestrator and the single-agent baseline."""

import numpy as np
import pytest

from repro.envs import make_gridworld_suite
from repro.federated import (
    CallbackList,
    CommunicationSchedule,
    FRLSystem,
    FederatedAgent,
    SingleAgentSystem,
    TrainingCallback,
)
from repro.rl import QLearningAgent, QLearningConfig


def tiny_system(agent_count=2, interval=1, episodes_max_steps=30):
    envs = make_gridworld_suite(agent_count=agent_count, max_steps=episodes_max_steps)
    config = QLearningConfig(hidden_sizes=(8, 8), epsilon_decay_episodes=10)
    agents = [
        FederatedAgent(i, QLearningAgent(config, rng=100 + i), envs[i]) for i in range(agent_count)
    ]
    return FRLSystem(agents, schedule=CommunicationSchedule(base_interval=interval))


class RecordingCallback(TrainingCallback):
    def __init__(self):
        self.events = []

    def on_training_start(self, system):
        self.events.append("start")

    def on_episode_start(self, system, episode):
        self.events.append(("episode_start", episode))

    def on_agent_episode_end(self, system, episode, agent_index, stats):
        self.events.append(("agent_end", episode, agent_index))

    def transform_upload(self, system, episode, agent_index, state):
        self.events.append(("upload", episode, agent_index))
        return state

    def transform_broadcast(self, system, episode, agent_index, state):
        self.events.append(("broadcast", episode, agent_index))
        return state

    def on_round_end(self, system, episode, communicated):
        self.events.append(("round_end", episode, communicated))

    def on_training_end(self, system):
        self.events.append("end")


class TestFRLSystem:
    def test_training_log_shapes(self):
        system = tiny_system()
        log = system.train(4)
        assert log.episodes == 4
        assert all(len(rewards) == 2 for rewards in log.episode_rewards)
        assert log.communication_count == 4

    def test_communication_respects_interval(self):
        system = tiny_system(interval=3)
        log = system.train(7)
        assert log.communication_episodes == [2, 5]

    def test_callbacks_invoked_in_order(self):
        system = tiny_system()
        callback = RecordingCallback()
        system.train(2, callbacks=[callback])
        assert callback.events[0] == "start"
        assert callback.events[-1] == "end"
        assert ("upload", 0, 0) in callback.events
        assert ("broadcast", 0, 1) in callback.events

    def test_agents_share_policy_after_round(self):
        system = tiny_system()
        # Force full consensus: with two agents, alpha = 1/n = 0.5 from round 0.
        system.server.alpha_schedule = type(system.server.alpha_schedule)(
            initial_alpha=0.5, decay=1.0
        )
        system.train(1)
        a = system.agents[0].upload_state()
        b = system.agents[1].upload_state()
        for name in a:
            np.testing.assert_allclose(a[name], b[name])

    def test_consensus_state_without_round(self):
        system = tiny_system(interval=100)
        system.train(1)
        consensus = system.consensus_state()
        assert set(consensus) == set(system.agents[0].upload_state())

    def test_corrupt_agent_overwrites_policy(self):
        system = tiny_system()
        zeros = {name: np.zeros_like(value) for name, value in system.agents[0].upload_state().items()}
        system.corrupt_agent(0, zeros)
        for value in system.agents[0].upload_state().values():
            assert np.all(value == 0)

    def test_corrupt_all_agents_validates_length(self):
        system = tiny_system()
        with pytest.raises(ValueError):
            system.corrupt_all_agents([system.agents[0].upload_state()])

    def test_requires_agents(self):
        with pytest.raises(ValueError):
            FRLSystem([])

    def test_negative_episodes_rejected(self):
        with pytest.raises(ValueError):
            tiny_system().train(-1)

    def test_average_success_rate_bounds(self):
        system = tiny_system()
        system.train(3)
        rate = system.average_success_rate(attempts=3)
        assert 0.0 <= rate <= 1.0

    def test_start_episode_offsets_schedule(self):
        system = tiny_system(interval=2)
        system.train(2, start_episode=1)  # episodes 1 and 2; only episode 1 communicates
        assert system.log.communication_episodes == [1]

    def test_server_fault_via_transform_server_state(self):
        class ServerZeroer(TrainingCallback):
            def transform_server_state(self, system, episode, state):
                return {name: np.zeros_like(value) for name, value in state.items()}

        system = tiny_system()
        system.train(1, callbacks=[ServerZeroer()])
        for value in system.agents[0].upload_state().values():
            assert np.all(value == 0)


class TestSingleAgentSystem:
    def test_training_cycles_environments(self):
        envs = make_gridworld_suite(agent_count=3, max_steps=20)
        agent = QLearningAgent(QLearningConfig(hidden_sizes=(8,)), rng=0)
        system = SingleAgentSystem(agent, envs)
        log = system.train(6)
        assert log.episodes == 6
        assert log.communication_count == 0

    def test_agent_count_is_one(self):
        envs = make_gridworld_suite(agent_count=1, max_steps=20)
        system = SingleAgentSystem(QLearningAgent(QLearningConfig(hidden_sizes=(8,)), rng=0), envs)
        assert system.agent_count == 1

    def test_corrupt_agent_bounds(self):
        envs = make_gridworld_suite(agent_count=1, max_steps=20)
        system = SingleAgentSystem(QLearningAgent(QLearningConfig(hidden_sizes=(8,)), rng=0), envs)
        with pytest.raises(IndexError):
            system.corrupt_agent(1, {})

    def test_requires_environments(self):
        with pytest.raises(ValueError):
            SingleAgentSystem(QLearningAgent(QLearningConfig(hidden_sizes=(8,)), rng=0), [])

    def test_callbacks_receive_events(self):
        envs = make_gridworld_suite(agent_count=1, max_steps=20)
        system = SingleAgentSystem(QLearningAgent(QLearningConfig(hidden_sizes=(8,)), rng=0), envs)
        callback = RecordingCallback()
        system.train(2, callbacks=CallbackList([callback]))
        assert ("round_end", 0, False) in callback.events
