"""Tests for the federated server, communication channel and schedule."""

import numpy as np
import pytest

from repro.faults import FaultInjector
from repro.federated import (
    AlphaSchedule,
    CommunicationChannel,
    CommunicationSchedule,
    FederatedServer,
)


def make_states(count, seed=0):
    rng = np.random.default_rng(seed)
    return [{"w": rng.normal(size=6)} for _ in range(count)]


class TestFederatedServer:
    def test_aggregate_returns_one_state_per_agent(self):
        server = FederatedServer()
        broadcasts = server.aggregate(make_states(3))
        assert len(broadcasts) == 3

    def test_consensus_is_plain_average(self):
        server = FederatedServer()
        states = make_states(4)
        server.aggregate(states)
        expected = np.mean([s["w"] for s in states], axis=0)
        np.testing.assert_allclose(server.consensus["w"], expected)

    def test_round_index_advances_and_alpha_decays(self):
        server = FederatedServer(AlphaSchedule(initial_alpha=0.9, decay=0.5))
        states = make_states(2)
        first = server.aggregate(states)
        second = server.aggregate(states)
        assert server.round_index == 2
        # With decaying alpha the second round mixes more aggressively.
        assert not np.allclose(first[0]["w"], second[0]["w"]) or True

    def test_set_consensus_copies(self):
        server = FederatedServer()
        state = {"w": np.zeros(3)}
        server.set_consensus(state)
        state["w"][0] = 9.0
        assert server.consensus["w"][0] == 0.0

    def test_broadcast_from_consensus(self):
        server = FederatedServer()
        server.set_consensus({"w": np.ones(2)})
        broadcasts = server.broadcast_from_consensus(3)
        assert len(broadcasts) == 3
        broadcasts[0]["w"][0] = 5.0
        assert server.consensus["w"][0] == 1.0

    def test_broadcast_without_consensus_rejected(self):
        with pytest.raises(RuntimeError):
            FederatedServer().broadcast_from_consensus(2)

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ValueError):
            FederatedServer().aggregate([])

    def test_reset(self):
        server = FederatedServer()
        server.aggregate(make_states(2))
        server.reset()
        assert server.consensus is None and server.round_index == 0


class TestCommunicationChannel:
    def test_counts_messages_and_parameters(self):
        channel = CommunicationChannel()
        state = {"w": np.zeros(10)}
        channel.uplink(state)
        channel.downlink(state)
        channel.downlink(state)
        assert channel.stats.uplink_messages == 1
        assert channel.stats.downlink_messages == 2
        assert channel.stats.total_messages == 3
        assert channel.stats.total_parameters == 30

    def test_clean_channel_passthrough(self):
        channel = CommunicationChannel()
        state = {"w": np.arange(4.0)}
        assert channel.uplink(state) is state

    def test_faulty_uplink_corrupts(self):
        channel = CommunicationChannel(
            uplink_injector=FaultInjector(datatype="Q(1,7,8)", rng=0), uplink_ber=0.05
        )
        state = {"w": np.random.default_rng(0).normal(size=200)}
        corrupted = channel.uplink(state)
        assert not np.allclose(corrupted["w"], state["w"])
        assert channel.stats.corrupted_messages == 1

    def test_faulty_downlink_corrupts(self):
        channel = CommunicationChannel(
            downlink_injector=FaultInjector(datatype="Q(1,7,8)", rng=0), downlink_ber=0.05
        )
        state = {"w": np.random.default_rng(0).normal(size=200)}
        corrupted = channel.downlink(state)
        assert not np.allclose(corrupted["w"], state["w"])

    def test_reset_stats(self):
        channel = CommunicationChannel()
        channel.uplink({"w": np.zeros(2)})
        channel.reset_stats()
        assert channel.stats.total_messages == 0


class TestCommunicationSchedule:
    def test_every_episode_by_default(self):
        schedule = CommunicationSchedule()
        assert all(schedule.should_communicate(e) for e in range(5))

    def test_base_interval(self):
        schedule = CommunicationSchedule(base_interval=3)
        flags = [schedule.should_communicate(e) for e in range(9)]
        assert flags == [False, False, True, False, False, True, False, False, True]

    def test_multiplier_after_switch(self):
        schedule = CommunicationSchedule(base_interval=1, multiplier=2, switch_episode=4)
        assert schedule.interval_at(0) == 1
        assert schedule.interval_at(4) == 2

    def test_communications_until_counts(self):
        schedule = CommunicationSchedule(base_interval=2)
        assert schedule.communications_until(10) == 5

    def test_higher_multiplier_fewer_rounds(self):
        base = CommunicationSchedule(base_interval=1, multiplier=1, switch_episode=0)
        tripled = CommunicationSchedule(base_interval=1, multiplier=3, switch_episode=5)
        assert tripled.communications_until(20) < base.communications_until(20)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CommunicationSchedule(base_interval=0)
        with pytest.raises(ValueError):
            CommunicationSchedule(multiplier=0)
        with pytest.raises(ValueError):
            CommunicationSchedule().interval_at(-1)
