"""Property tests for the repro-lint pragma layer.

Two contracts:

* ``format_pragma`` / ``parse_pragma_comment`` are exact inverses for every
  well-formed rule-id list and reason — a pragma the tooling writes is always
  a pragma the tooling honours;
* suppression is **line-exact**: a pragma on line N suppresses precisely the
  findings anchored at line N, never a neighbour's.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.lint import lint_source
from repro.lint.pragmas import format_pragma, parse_pragma_comment

# Well-formed rule ids: three ASCII uppercase letters + three digits.
RULE_IDS = st.from_regex(r"[A-Z]{3}[0-9]{3}", fullmatch=True)
RULE_ID_LISTS = st.lists(RULE_IDS, min_size=1, max_size=6, unique=True)
# Reasons: printable, no newlines (comments are single-line), and no "--"
# (the pragma's own reason separator), non-empty once stripped.
REASONS = (
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters="#"),
        min_size=1,
        max_size=60,
    )
    .map(str.strip)
    .filter(lambda s: s and "--" not in s and "," not in s)
)


@given(rule_ids=RULE_ID_LISTS, reason=REASONS)
def test_format_pragma_parse_round_trip(rule_ids, reason):
    """Any formatted pragma parses back to the same ids and reason."""
    parsed = parse_pragma_comment(format_pragma(rule_ids, reason))
    assert parsed is not None
    ids, parsed_reason, problem = parsed
    assert problem is None
    assert ids == rule_ids
    assert parsed_reason == reason


@given(rule_ids=RULE_ID_LISTS, reason=REASONS)
def test_round_trip_through_full_source_scan(rule_ids, reason):
    """The engine-level scanner agrees with the single-comment parser."""
    from repro.lint.pragmas import parse_pragmas

    source = f"x = 1  {format_pragma(rule_ids, reason)}\n"
    pragmas, malformed = parse_pragmas(source)
    assert not malformed
    assert list(pragmas) == [1]
    assert pragmas[1].rule_ids == tuple(rule_ids)
    assert pragmas[1].reason == reason


@given(
    pragma_line=st.integers(min_value=0, max_value=9),
    reason=REASONS,
)
def test_suppression_is_line_exact(pragma_line, reason):
    """A pragma on line N suppresses exactly line N's finding.

    Builds ten lines that each trip REP003, puts one pragma on an arbitrary
    line, and checks the suppressed finding is precisely that line's — every
    other line still reports.
    """
    lines = ["import time", ""]
    offending_lines = []
    for index in range(10):
        line = f"value_{index} = time.time()"
        if index == pragma_line:
            line += f"  {format_pragma(['REP003'], reason)}"
        offending_lines.append(len(lines) + 1)
        lines.append(line)
    report = lint_source("\n".join(lines) + "\n")

    expected = [n for i, n in enumerate(offending_lines) if i != pragma_line]
    assert [f.line for f in report.findings] == expected
    assert all(f.rule_id == "REP003" for f in report.findings)
    assert report.suppressed == 1
