"""Property-based tests for aggregation, fault injection and mitigation invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.faults import FaultInjector
from repro.federated import AlphaSchedule, smoothing_average
from repro.federated.aggregation import average_states
from repro.mitigation import RangeAnomalyDetector
from repro.utils.stats import RunningStat, mean_confidence_interval

STATE_VALUES = hnp.arrays(
    dtype=np.float64,
    shape=(6,),
    elements=st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=40, deadline=None)
@given(states=st.lists(STATE_VALUES, min_size=2, max_size=6),
       alpha=st.floats(0.05, 1.0))
def test_smoothing_average_is_mean_preserving_and_bounded(states, alpha):
    dicts = [{"w": s} for s in states]
    mixed = smoothing_average(dicts, alpha=alpha)
    # Mean preservation.
    np.testing.assert_allclose(
        average_states(mixed)["w"], average_states(dicts)["w"], atol=1e-9
    )
    # Convex combination: every mixed value stays within the per-element min/max.
    stacked = np.stack(states)
    lower, upper = stacked.min(axis=0) - 1e-9, stacked.max(axis=0) + 1e-9
    for state in mixed:
        assert (state["w"] >= lower).all() and (state["w"] <= upper).all()


@settings(max_examples=40, deadline=None)
@given(round_index=st.integers(0, 200), agent_count=st.integers(2, 16),
       initial_alpha=st.floats(0.1, 1.0), decay=st.floats(0.5, 1.0))
def test_alpha_schedule_bounded(round_index, agent_count, initial_alpha, decay):
    schedule = AlphaSchedule(initial_alpha=initial_alpha, decay=decay)
    alpha = schedule.alpha(round_index, agent_count)
    assert 1.0 / agent_count - 1e-12 <= alpha <= 1.0 + 1e-12


@settings(max_examples=30, deadline=None)
@given(
    values=hnp.arrays(dtype=np.float64, shape=st.integers(8, 128),
                      elements=st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False)),
    ber=st.floats(0.0, 0.2),
    seed=st.integers(0, 1000),
)
def test_injector_preserves_shape_and_identity_at_zero_ber(values, ber, seed):
    injector = FaultInjector(datatype="Q(1,7,8)", rng=seed)
    corrupted = injector.corrupt_array(values, ber)
    assert corrupted.shape == values.shape
    if ber == 0.0:
        np.testing.assert_array_equal(corrupted, values)
    # Whatever the corruption, the decoded values stay within the format range.
    assert np.abs(corrupted).max() <= 2 ** 7 + 1


@settings(max_examples=30, deadline=None)
@given(
    values=hnp.arrays(dtype=np.float64, shape=(40,),
                      elements=st.floats(-0.5, 0.5, allow_nan=False, allow_infinity=False)),
    ber=st.floats(0.0, 0.1),
    seed=st.integers(0, 500),
)
def test_anomaly_repair_never_worsens_range(values, ber, seed):
    state = {"w": values}
    detector = RangeAnomalyDetector(margin=0.1)
    detector.calibrate(state)
    injector = FaultInjector(datatype="Q(1,10,5)", rng=seed)
    corrupted = injector.corrupt_state_dict(state, ber)
    repaired, repaired_count = detector.repair(corrupted)
    assert repaired_count >= 0
    limit = max(abs(values.min()), abs(values.max()), detector.ranges["w"].margin) * 1.1 + 1e-9
    assert np.abs(repaired["w"]).max() <= limit
    # Repairing an already-repaired state changes nothing.
    repaired_again, second_count = detector.repair(repaired)
    assert second_count == 0
    np.testing.assert_array_equal(repaired_again["w"], repaired["w"])


@settings(max_examples=40, deadline=None)
@given(samples=st.lists(st.floats(-100, 100, allow_nan=False, allow_infinity=False),
                        min_size=2, max_size=200))
def test_running_stat_matches_batch_statistics(samples):
    stat = RunningStat()
    stat.extend(samples)
    array = np.asarray(samples)
    assert stat.mean == np.float64(array.mean()).item() or abs(stat.mean - array.mean()) < 1e-6
    assert abs(stat.std - array.std(ddof=1)) < 1e-6
    ci = mean_confidence_interval(samples)
    assert ci.lower <= ci.mean <= ci.upper
