"""Property-based tests for the multi-machine shard partition.

The merge-only contract hangs on these invariants: for every ``(k, n)`` the
shards are pairwise disjoint and their union is exactly ``range(cell_count)``
— otherwise ``--merge-only`` could double-count a cell or treat a covered
plan as incomplete.  Byte-for-byte payload identity of the sharded fig6a run
is pinned separately in ``tests/runtime/test_sharding.py``.
"""

from hypothesis import given, settings, strategies as st

from repro.runtime.cells import shard_cell_indices
from repro.runtime.sharding import ShardSpec


@settings(max_examples=100, deadline=None)
@given(shard_count=st.integers(1, 24), cell_count=st.integers(0, 300))
def test_shards_are_disjoint_and_cover_every_cell(shard_count, cell_count):
    shards = [
        shard_cell_indices(index, shard_count, cell_count)
        for index in range(1, shard_count + 1)
    ]
    flattened = [cell for shard in shards for cell in shard]
    # Disjoint: no cell appears in two shards...
    assert len(flattened) == len(set(flattened))
    # ...and the union is exactly the plan's index range.
    assert sorted(flattened) == list(range(cell_count))


@settings(max_examples=100, deadline=None)
@given(shard_count=st.integers(1, 24), cell_count=st.integers(1, 300))
def test_strided_assignment_is_balanced_and_owner_consistent(shard_count, cell_count):
    spec_by_index = {
        index: ShardSpec(index=index, count=shard_count)
        for index in range(1, shard_count + 1)
    }
    sizes = []
    for index, spec in spec_by_index.items():
        cells = spec.cell_indices(cell_count)
        sizes.append(len(cells))
        # owner_of inverts the partition: every assigned cell maps back to
        # its shard (this is what merge validation leans on).
        assert all(spec.owner_of(cell) == index for cell in cells)
    # Strided partitions are balanced to within one cell, so no machine gets
    # a pathological share of the campaign.
    assert max(sizes) - min(sizes) <= 1


@settings(max_examples=60, deadline=None)
@given(index=st.integers(1, 24), count=st.integers(1, 24))
def test_spec_parse_round_trips(index, count):
    if index > count:
        return
    spec = ShardSpec(index=index, count=count)
    assert ShardSpec.parse(spec.describe()) == spec
