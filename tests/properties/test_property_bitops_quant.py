"""Property-based tests for the bit-level and quantization substrates."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import Int8AffineCodec, resolve_datatype
from repro.quant.fixedpoint import FixedPointFormat
from repro.utils.bitops import count_ones, flip_bits, one_bit_fraction, set_bits

SMALL_FLOATS = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 64),
    elements=st.floats(-8.0, 8.0, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=50, deadline=None)
@given(
    values=hnp.arrays(dtype=np.int64, shape=st.integers(1, 32),
                      elements=st.integers(-128, 127)),
    data=st.data(),
)
def test_flip_twice_is_identity(values, data):
    codes = values.astype(np.int8)
    element = data.draw(st.integers(0, codes.size - 1))
    bit = data.draw(st.integers(0, 7))
    once = flip_bits(codes, np.array([element]), np.array([bit]), 8)
    twice = flip_bits(once, np.array([element]), np.array([bit]), 8)
    np.testing.assert_array_equal(twice, codes)


@settings(max_examples=50, deadline=None)
@given(
    values=hnp.arrays(dtype=np.int64, shape=st.integers(1, 32),
                      elements=st.integers(-128, 127)),
    data=st.data(),
)
def test_flip_changes_exactly_one_bit(values, data):
    codes = values.astype(np.int8)
    element = data.draw(st.integers(0, codes.size - 1))
    bit = data.draw(st.integers(0, 7))
    flipped = flip_bits(codes, np.array([element]), np.array([bit]), 8)
    before = count_ones(codes, 8)
    after = count_ones(flipped, 8)
    assert abs(after - before) == 1


@settings(max_examples=50, deadline=None)
@given(
    values=hnp.arrays(dtype=np.int64, shape=st.integers(1, 32),
                      elements=st.integers(-128, 127)),
    data=st.data(),
)
def test_stuck_at_bounds_one_count(values, data):
    codes = values.astype(np.int8)
    element = data.draw(st.integers(0, codes.size - 1))
    bit = data.draw(st.integers(0, 7))
    stuck1 = set_bits(codes, np.array([element]), np.array([bit]), 8, value=1)
    stuck0 = set_bits(codes, np.array([element]), np.array([bit]), 8, value=0)
    assert count_ones(stuck1, 8) >= count_ones(codes, 8)
    assert count_ones(stuck0, 8) <= count_ones(codes, 8)


@settings(max_examples=50, deadline=None)
@given(values=SMALL_FLOATS)
def test_one_bit_fraction_in_unit_interval(values):
    codes = values.astype(np.int64)
    fraction = one_bit_fraction(codes, 16)
    assert 0.0 <= fraction <= 1.0


@settings(max_examples=40, deadline=None)
@given(
    values=SMALL_FLOATS,
    integer_bits=st.integers(1, 8),
    fraction_bits=st.integers(1, 12),
)
def test_fixedpoint_roundtrip_error_bounded(values, integer_bits, fraction_bits):
    fmt = FixedPointFormat(integer_bits=integer_bits, fraction_bits=fraction_bits)
    restored = fmt.roundtrip(values)
    clipped = np.clip(values, fmt.min_value, fmt.max_value)
    assert np.abs(restored - clipped).max() <= fmt.scale / 2 + 1e-12
    # Idempotence: quantizing an already-quantized value changes nothing.
    np.testing.assert_allclose(fmt.roundtrip(restored), restored)


@settings(max_examples=40, deadline=None)
@given(values=SMALL_FLOATS)
def test_int8_roundtrip_error_bounded(values):
    codec = Int8AffineCodec()
    quantized = codec.quantize(values)
    assert np.abs(quantized.dequantize() - values).max() <= quantized.scale / 2 + 1e-12


@settings(max_examples=30, deadline=None)
@given(values=SMALL_FLOATS,
       name=st.sampled_from(["int8", "Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)", "Q(1,2,5)"]))
def test_datatype_decode_encode_idempotent(values, name):
    datatype = resolve_datatype(name)
    once = datatype.roundtrip(values)
    twice = datatype.roundtrip(once)
    np.testing.assert_allclose(twice, once, atol=1e-12)
