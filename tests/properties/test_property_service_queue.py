"""Property tests for the campaign service's admission queue.

The :class:`~repro.runtime.service_queue.QuotaQueue` is the synchronous,
deterministic core of "who launches next" — the asyncio dispatcher adds
waiting, nothing else.  Hypothesis drives random (priority, tenant, quota)
sequences through a grant/release simulation and checks the three contracts
the service leans on:

* **determinism** — the same submission/release sequence always produces the
  same dispatch order;
* **quota safety** — a tenant never holds more concurrent admissions than its
  quota, at any point in the run;
* **liveness** — the queue always drains completely (quota-blocked tickets
  are skipped, never deadlocking the rest), and every grant goes to the
  best-ordered eligible ticket (priority desc, then submission order) as
  computed by an independent shadow model.
"""

from hypothesis import given, settings, strategies as st

from repro.runtime.service_queue import QuotaQueue

TENANTS = ["alice", "bob", "carol"]

submissions_strategy = st.lists(
    st.tuples(st.sampled_from(TENANTS), st.integers(min_value=-5, max_value=5)),
    min_size=1,
    max_size=30,
)

quotas_strategy = st.dictionaries(
    st.sampled_from(TENANTS), st.integers(min_value=1, max_value=3), max_size=len(TENANTS)
)

default_quota_strategy = st.one_of(st.none(), st.integers(min_value=1, max_value=3))

# Indices (taken modulo the in-flight count) choosing which granted admission
# releases when nothing is grantable; a fixed list keeps the schedule a pure
# function of the Hypothesis example.
releases_strategy = st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=8)


def _drain(quotas, default_quota, submissions, release_choices):
    """Run the full grant/release simulation; returns the dispatch order.

    Greedily grants whatever is grantable; when nothing is, releases one
    granted admission (chosen by the deterministic ``release_choices``
    schedule) and tries again.  Asserts quota safety and shadow-model
    agreement at every single grant.
    """
    queue = QuotaQueue(dict(quotas), default_quota)
    tickets = [queue.submit(tenant, priority) for tenant, priority in submissions]

    # Independent shadow model: pending tickets + per-tenant grant counts.
    pending = list(tickets)
    shadow_granted = {tenant: 0 for tenant in TENANTS}

    def shadow_head():
        eligible = [
            ticket
            for ticket in pending
            if queue.quota(ticket.tenant) is None
            or shadow_granted[ticket.tenant] < queue.quota(ticket.tenant)
        ]
        return min(eligible, key=lambda ticket: ticket.sort_key) if eligible else None

    order = []
    in_flight = []  # tenants of currently granted admissions, grant order
    step = 0
    while len(order) < len(tickets):
        ticket = queue.grantable()
        assert ticket is shadow_head(), "queue disagrees with the shadow model"
        if ticket is not None:
            queue.grant(ticket)
            pending.remove(ticket)
            shadow_granted[ticket.tenant] += 1
            quota = queue.quota(ticket.tenant)
            assert quota is None or queue.granted(ticket.tenant) <= quota
            order.append((ticket.seq, ticket.tenant, ticket.priority))
            in_flight.append(ticket.tenant)
            continue
        # Nothing grantable while tickets remain: someone must be holding an
        # admission (otherwise the queue deadlocked, which must never happen).
        assert in_flight, "queue wedged with no admissions held"
        choice = release_choices[step % len(release_choices)] % len(in_flight)
        step += 1
        tenant = in_flight.pop(choice)
        queue.release(tenant)
        shadow_granted[tenant] -= 1
    return order


@settings(max_examples=100, deadline=None)
@given(
    quotas=quotas_strategy,
    default_quota=default_quota_strategy,
    submissions=submissions_strategy,
    release_choices=releases_strategy,
)
def test_dispatch_order_is_deterministic(quotas, default_quota, submissions, release_choices):
    first = _drain(quotas, default_quota, submissions, release_choices)
    second = _drain(quotas, default_quota, submissions, release_choices)
    assert first == second


@settings(max_examples=100, deadline=None)
@given(
    quotas=quotas_strategy,
    default_quota=default_quota_strategy,
    submissions=submissions_strategy,
    release_choices=releases_strategy,
)
def test_queue_drains_completely_without_starvation(
    quotas, default_quota, submissions, release_choices
):
    order = _drain(quotas, default_quota, submissions, release_choices)
    assert len(order) == len(submissions)
    # Every submitted ticket dispatched exactly once.
    assert sorted(seq for seq, _, _ in order) == list(range(1, len(submissions) + 1))


@settings(max_examples=100, deadline=None)
@given(submissions=submissions_strategy)
def test_unbounded_queue_dispatches_in_strict_priority_order(submissions):
    """With no quotas and no releases needed, the order is exactly sorted."""
    queue = QuotaQueue()
    tickets = [queue.submit(tenant, priority) for tenant, priority in submissions]
    order = []
    while True:
        ticket = queue.grantable()
        if ticket is None:
            break
        queue.grant(ticket)
        order.append(ticket)
    assert order == sorted(tickets, key=lambda ticket: ticket.sort_key)
