"""Property-based tests for the batched-vs-serial byte-identity contract.

The vectorized evaluation path promises *bitwise* equality with the serial
hot path for any environment, bit-error rate, seed and batch size — not just
the handful of configurations the example-based suites pin.  Hypothesis
drives randomized combinations through the vector environments and the
lane-batched fault injector, plus the masked-termination edge cases (lanes
finishing at different times, partial resets) the lockstep evaluator relies
on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.envs import DroneNavConfig, DroneNavEnv, GridWorldEnv
from repro.envs.dronenav import DroneNavVecEnv, generate_world
from repro.envs.gridworld import GridWorldVecEnv, generate_layout
from repro.faults.injector import FaultInjector, corrupt_lanes

BERS = st.sampled_from([0.0, 1e-4, 1e-3, 1e-2, 0.25])
DATATYPES = st.sampled_from(["int8", "q1_7_8"])


def _drive_and_compare(vec_env, serial_envs, actions_for, action_count):
    """Step vec and serial lanes together; assert every field matches bitwise."""
    lane_count = len(serial_envs)
    serial_obs = [env.reset() for env in serial_envs]
    vec_obs = vec_env.reset_batch()
    for lane in range(lane_count):
        assert vec_obs[lane].tobytes() == serial_obs[lane].tobytes()
    serial_done = [False] * lane_count
    for _ in range(200):
        if all(serial_done):
            break
        actions = np.array([actions_for(lane) for lane in range(lane_count)],
                           dtype=np.int64)
        actions %= action_count
        result = vec_env.step_batch(actions)
        for lane in range(lane_count):
            if serial_done[lane]:
                assert not result.stepped[lane]
                continue
            serial_result = serial_envs[lane].step(int(actions[lane]))
            assert result.observations[lane].tobytes() == serial_result.observation.tobytes()
            assert result.rewards[lane] == serial_result.reward
            assert bool(result.done[lane]) == serial_result.done
            assert result.outcomes[lane] == serial_result.info["outcome"]
            serial_done[lane] = serial_result.done
    assert all(serial_done)


@settings(max_examples=25, deadline=None)
@given(
    lane_count=st.integers(1, 5),
    seed0=st.integers(0, 1000),
    max_steps=st.integers(1, 30),
    action_seed=st.integers(0, 1000),
)
def test_gridworld_vec_identity(lane_count, seed0, max_steps, action_seed):
    serial = [
        GridWorldEnv(generate_layout(seed=seed0 + i), max_steps=max_steps)
        for i in range(lane_count)
    ]
    vec = GridWorldVecEnv(
        [GridWorldEnv(generate_layout(seed=seed0 + i), max_steps=max_steps)
         for i in range(lane_count)]
    )
    rng = np.random.default_rng(action_seed)
    _drive_and_compare(vec, serial, lambda _: int(rng.integers(0, 4)), 4)


@settings(max_examples=10, deadline=None)
@given(
    lane_count=st.integers(1, 3),
    seed0=st.integers(0, 500),
    max_steps=st.integers(1, 12),
    action_seed=st.integers(0, 500),
)
def test_dronenav_vec_identity(lane_count, seed0, max_steps, action_seed):
    config = DroneNavConfig(image_width=8, image_height=6, max_steps=max_steps)
    serial = [
        DroneNavEnv(generate_world(seed=seed0 + i, length=80.0), config)
        for i in range(lane_count)
    ]
    vec = DroneNavVecEnv(
        [DroneNavEnv(generate_world(seed=seed0 + i, length=80.0), config)
         for i in range(lane_count)]
    )
    rng = np.random.default_rng(action_seed)
    _drive_and_compare(vec, serial, lambda _: int(rng.integers(0, 25)), 25)
    np.testing.assert_array_equal(
        vec.flight_distances, np.array([env.flight_distance for env in serial])
    )


@settings(max_examples=25, deadline=None)
@given(
    lane_count=st.integers(1, 5),
    seed0=st.integers(0, 100),
    revive=st.data(),
)
def test_masked_termination_partial_resets(lane_count, seed0, revive):
    """Lanes that finish stay frozen; partial resets revive only named lanes."""
    vec = GridWorldVecEnv(
        [GridWorldEnv(generate_layout(seed=seed0 + i), max_steps=1)
         for i in range(lane_count)]
    )
    vec.reset_batch()
    vec.step_batch(np.zeros(lane_count, dtype=np.int64))
    assert vec.done.all()
    lanes = revive.draw(
        st.lists(st.integers(0, lane_count - 1), min_size=1, unique=True)
    )
    frozen = {
        lane: vec.observations[lane].copy()
        for lane in range(lane_count) if lane not in lanes
    }
    vec.reset_batch(lanes=np.array(lanes))
    done = vec.done
    for lane in range(lane_count):
        assert bool(done[lane]) == (lane not in lanes)
    result = vec.step_batch(np.ones(lane_count, dtype=np.int64))
    for lane, before in frozen.items():
        assert not result.stepped[lane]
        assert vec.observations[lane].tobytes() == before.tobytes()


@settings(max_examples=40, deadline=None)
@given(
    lane_count=st.integers(1, 6),
    elements=st.integers(1, 40),
    ber=BERS,
    datatype=DATATYPES,
    seed=st.integers(0, 10_000),
)
def test_corrupt_lanes_matches_serial_loop(lane_count, elements, ber, datatype, seed):
    streams = np.random.SeedSequence(seed).spawn(lane_count)
    serial_inj = [
        FaultInjector(datatype, rng=np.random.default_rng(s)) for s in streams
    ]
    batch_inj = [
        FaultInjector(datatype, rng=np.random.default_rng(s)) for s in streams
    ]
    values = np.random.default_rng(seed + 1).normal(size=(lane_count, elements))
    serial = np.stack(
        [inj.corrupt_array(values[i], ber) for i, inj in enumerate(serial_inj)]
    )
    batched = corrupt_lanes(batch_inj, values, ber)
    assert serial.tobytes() == batched.tobytes()
    for a, b in zip(serial_inj, batch_inj):
        assert a.rng.bit_generator.state == b.rng.bit_generator.state
