"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, HuberLoss, MSELoss, log_softmax, softmax


class TestSoftmaxHelpers:
    def test_softmax_sums_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(4, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))

    def test_log_softmax_matches_log_of_softmax(self):
        logits = np.random.default_rng(1).normal(size=(3, 5))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(probs).all()


class TestMSELoss:
    def test_zero_when_equal(self):
        loss, grad = MSELoss()(np.ones((2, 3)), np.ones((2, 3)))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros((2, 3)))

    def test_known_value(self):
        loss, _ = MSELoss()(np.array([[2.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(4.0)

    def test_gradient_direction(self):
        _, grad = MSELoss()(np.array([[2.0]]), np.array([[0.0]]))
        assert grad[0, 0] > 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((1, 2)), np.zeros((2, 1)))

    def test_gradient_numerically(self):
        rng = np.random.default_rng(0)
        preds = rng.normal(size=(3, 4))
        targets = rng.normal(size=(3, 4))
        loss_fn = MSELoss()
        _, grad = loss_fn(preds, targets)
        eps = 1e-6
        bumped = preds.copy()
        bumped[1, 2] += eps
        plus, _ = loss_fn(bumped, targets)
        bumped[1, 2] -= 2 * eps
        minus, _ = loss_fn(bumped, targets)
        assert grad[1, 2] == pytest.approx((plus - minus) / (2 * eps), rel=1e-5)


class TestHuberLoss:
    def test_quadratic_region_matches_mse_half(self):
        loss, _ = HuberLoss(delta=1.0)(np.array([[0.5]]), np.array([[0.0]]))
        assert loss == pytest.approx(0.125)

    def test_linear_region(self):
        loss, _ = HuberLoss(delta=1.0)(np.array([[3.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(2.5)

    def test_gradient_clipped_in_linear_region(self):
        _, grad = HuberLoss(delta=1.0)(np.array([[10.0]]), np.array([[0.0]]))
        assert grad[0, 0] == pytest.approx(1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestCrossEntropyLoss:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = CrossEntropyLoss()(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_uniform_prediction_log_classes(self):
        loss, _ = CrossEntropyLoss()(np.zeros((1, 4)), np.array([2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_sums_to_zero_per_row(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 3))
        _, grad = CrossEntropyLoss()(logits, np.array([0, 1, 2, 0, 1]))
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(5), atol=1e-12)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((1, 2)), np.array([5]))

    def test_requires_2d_logits(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros(3), np.array([0]))
