"""Tests for dense/structural layers and the module machinery."""

import numpy as np
import pytest

from repro.nn import Dropout, Flatten, Linear, Parameter, ReLU, Sequential


class TestParameter:
    def test_grad_initialized_to_zero(self):
        param = Parameter(np.ones((2, 2)))
        assert np.all(param.grad == 0)

    def test_accumulate_grad_adds(self):
        param = Parameter(np.zeros(3))
        param.accumulate_grad(np.ones(3))
        param.accumulate_grad(np.ones(3))
        np.testing.assert_array_equal(param.grad, 2 * np.ones(3))

    def test_accumulate_shape_mismatch(self):
        with pytest.raises(ValueError):
            Parameter(np.zeros(3)).accumulate_grad(np.zeros(4))

    def test_copy_preserves_identity(self):
        param = Parameter(np.zeros(2))
        buffer = param.value
        param.copy_(np.ones(2))
        assert param.value is buffer
        np.testing.assert_array_equal(param.value, np.ones(2))

    def test_copy_shape_mismatch(self):
        with pytest.raises(ValueError):
            Parameter(np.zeros(2)).copy_(np.zeros(3))

    def test_clone_is_independent(self):
        param = Parameter(np.zeros(2), name="w")
        clone = param.clone()
        clone.value[0] = 5.0
        assert param.value[0] == 0.0
        assert clone.name == "w"


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        assert layer.forward(np.zeros((7, 4))).shape == (7, 3)

    def test_forward_1d_promoted(self):
        layer = Linear(4, 3, rng=0)
        assert layer.forward(np.zeros(4)).shape == (1, 3)

    def test_wrong_feature_count(self):
        with pytest.raises(ValueError):
            Linear(4, 3, rng=0).forward(np.zeros((2, 5)))

    def test_bias_optional(self):
        layer = Linear(2, 2, bias=False, rng=0)
        assert len(layer.parameters()) == 1

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng=0).backward(np.zeros((1, 2)))

    def test_known_matmul(self):
        layer = Linear(2, 2, rng=0)
        layer.weight.copy_(np.array([[1.0, 2.0], [3.0, 4.0]]))
        layer.bias.copy_(np.array([1.0, -1.0]))
        out = layer.forward(np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(out, [[5.0, 5.0]])

    def test_backward_gradient_shapes(self):
        layer = Linear(3, 2, rng=0)
        layer.forward(np.zeros((4, 3)))
        grad_in = layer.backward(np.ones((4, 2)))
        assert grad_in.shape == (4, 3)
        assert layer.weight.grad.shape == (3, 2)
        assert layer.bias.grad.shape == (2,)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestFlattenDropout:
    def test_flatten_roundtrip(self):
        flatten = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = flatten.forward(x)
        assert out.shape == (2, 12)
        grad = flatten.backward(out)
        assert grad.shape == (2, 3, 4)

    def test_dropout_eval_is_identity(self):
        dropout = Dropout(0.5, rng=0).eval()
        x = np.ones((3, 3))
        np.testing.assert_array_equal(dropout.forward(x), x)

    def test_dropout_train_masks(self):
        dropout = Dropout(0.5, rng=0)
        out = dropout.forward(np.ones((100, 10)))
        assert (out == 0).any()
        # Inverted dropout keeps the expectation roughly constant.
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequential:
    def test_forward_backward_chain(self):
        net = Sequential(Linear(3, 5, rng=0), ReLU(), Linear(5, 2, rng=1))
        out = net.forward(np.ones((2, 3)))
        assert out.shape == (2, 2)
        grad = net.backward(np.ones((2, 2)))
        assert grad.shape == (2, 3)

    def test_named_parameters_unique(self):
        net = Sequential(Linear(3, 3, rng=0), ReLU(), Linear(3, 3, rng=1))
        names = [name for name, _ in net.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_state_dict_roundtrip(self):
        net = Sequential(Linear(3, 3, rng=0))
        other = Sequential(Linear(3, 3, rng=5))
        other.load_state_dict(net.state_dict())
        np.testing.assert_array_equal(other[0].weight.value, net[0].weight.value)

    def test_load_state_dict_mismatch(self):
        net = Sequential(Linear(3, 3, rng=0))
        with pytest.raises(KeyError):
            net.load_state_dict({"bogus": np.zeros(1)})

    def test_zero_grad(self):
        net = Sequential(Linear(2, 2, rng=0))
        net.forward(np.ones((1, 2)))
        net.backward(np.ones((1, 2)))
        net.zero_grad()
        assert np.all(net[0].weight.grad == 0)

    def test_train_eval_propagate(self):
        net = Sequential(Dropout(0.3), Linear(2, 2, rng=0))
        net.eval()
        assert net[0].training is False
        net.train()
        assert net[0].training is True

    def test_len_iter_getitem(self):
        net = Sequential(ReLU(), ReLU())
        assert len(net) == 2
        assert list(iter(net))[0] is net[0]

    def test_append(self):
        net = Sequential(ReLU())
        net.append(ReLU())
        assert len(net) == 2
