"""Numerical gradient checks for the whole network stack.

These tests validate backpropagation end to end by comparing analytic
parameter gradients against central finite differences on small networks.
"""

import numpy as np
import pytest

from repro.nn import Linear, MSELoss, ReLU, Sequential, Softmax, Tanh
from repro.nn.conv import Conv2d, MaxPool2d
from repro.nn.layers import Flatten


def numerical_gradient(network, loss_fn, x, y, parameter, index, eps=1e-6):
    original = parameter.value.flat[index]
    parameter.value.flat[index] = original + eps
    plus, _ = loss_fn(network.forward(x), y)
    parameter.value.flat[index] = original - eps
    minus, _ = loss_fn(network.forward(x), y)
    parameter.value.flat[index] = original
    return (plus - minus) / (2 * eps)


def analytic_gradients(network, loss_fn, x, y):
    out = network.forward(x)
    _, grad = loss_fn(out, y)
    network.zero_grad()
    network.backward(grad)


@pytest.mark.parametrize("activation", [ReLU, Tanh])
def test_mlp_gradients_match_numerical(activation):
    rng = np.random.default_rng(0)
    network = Sequential(Linear(3, 6, rng=0), activation(), Linear(6, 2, rng=1))
    x = rng.normal(size=(4, 3))
    y = rng.normal(size=(4, 2))
    loss_fn = MSELoss()
    analytic_gradients(network, loss_fn, x, y)
    for parameter in network.parameters():
        for index in range(0, parameter.size, max(1, parameter.size // 5)):
            numeric = numerical_gradient(network, loss_fn, x, y, parameter, index)
            assert parameter.grad.flat[index] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


def test_cnn_gradients_match_numerical():
    rng = np.random.default_rng(1)
    network = Sequential(
        Conv2d(1, 2, kernel_size=3, padding=1, rng=0),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(2 * 3 * 3, 4, rng=1),
        Softmax(),
    )
    x = rng.normal(size=(2, 1, 6, 6))
    y = np.abs(rng.normal(size=(2, 4)))
    y /= y.sum(axis=1, keepdims=True)
    loss_fn = MSELoss()
    analytic_gradients(network, loss_fn, x, y)
    checked = 0
    for parameter in network.parameters():
        for index in range(0, parameter.size, max(1, parameter.size // 4)):
            numeric = numerical_gradient(network, loss_fn, x, y, parameter, index)
            assert parameter.grad.flat[index] == pytest.approx(numeric, rel=1e-3, abs=1e-7)
            checked += 1
    assert checked > 10


def test_input_gradient_matches_numerical():
    rng = np.random.default_rng(2)
    network = Sequential(Linear(4, 5, rng=0), Tanh(), Linear(5, 3, rng=1))
    x = rng.normal(size=(1, 4))
    y = rng.normal(size=(1, 3))
    loss_fn = MSELoss()
    out = network.forward(x)
    _, grad = loss_fn(out, y)
    network.zero_grad()
    input_grad = network.backward(grad)
    eps = 1e-6
    for index in range(4):
        bumped = x.copy()
        bumped[0, index] += eps
        plus, _ = loss_fn(network.forward(bumped), y)
        bumped[0, index] -= 2 * eps
        minus, _ = loss_fn(network.forward(bumped), y)
        numeric = (plus - minus) / (2 * eps)
        assert input_grad[0, index] == pytest.approx(numeric, rel=1e-4, abs=1e-8)
