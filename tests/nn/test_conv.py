"""Tests for convolution and pooling layers."""

import numpy as np
import pytest

from repro.nn import Conv2d, MaxPool2d
from repro.nn.conv import col2im, im2col


class TestIm2Col:
    def test_output_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = im2col(x, 3, 3, stride=1, padding=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_col2im_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> — the fold/unfold pair must be adjoint.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5))
        cols, _ = im2col(x, 3, 3, stride=2, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, stride=2, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 2, 2)), 5, 5, stride=1, padding=0)


class TestConv2d:
    def test_output_shape_with_padding(self):
        conv = Conv2d(3, 8, kernel_size=3, padding=1, rng=0)
        out = conv.forward(np.zeros((2, 3, 10, 12)))
        assert out.shape == (2, 8, 10, 12)

    def test_output_shape_with_stride(self):
        conv = Conv2d(1, 4, kernel_size=3, stride=2, rng=0)
        out = conv.forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 4, 4, 4)

    def test_known_convolution(self):
        conv = Conv2d(1, 1, kernel_size=2, bias=False, rng=0)
        conv.weight.copy_(np.ones((1, 1, 2, 2)))
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = conv.forward(x)
        np.testing.assert_allclose(out[0, 0], [[8.0, 12.0], [20.0, 24.0]])

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, rng=0).forward(np.zeros((1, 2, 8, 8)))

    def test_requires_4d(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, rng=0).forward(np.zeros((8, 8)))

    def test_backward_shapes(self):
        conv = Conv2d(2, 5, kernel_size=3, padding=1, rng=0)
        x = np.random.default_rng(0).normal(size=(3, 2, 6, 6))
        out = conv.forward(x)
        grad_in = conv.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert conv.weight.grad.shape == conv.weight.value.shape
        assert conv.bias.grad.shape == (5,)

    def test_gradient_numerically(self):
        conv = Conv2d(1, 2, kernel_size=2, rng=0)
        x = np.random.default_rng(2).normal(size=(1, 1, 4, 4))
        out = conv.forward(x)
        upstream = np.random.default_rng(3).normal(size=out.shape)
        conv.zero_grad()
        conv.forward(x)
        conv.backward(upstream)
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        flat_index = 3
        unraveled = np.unravel_index(flat_index, conv.weight.value.shape)
        original = conv.weight.value[unraveled]
        conv.weight.value[unraveled] = original + eps
        plus = float((conv.forward(x) * upstream).sum())
        conv.weight.value[unraveled] = original - eps
        minus = float((conv.forward(x) * upstream).sum())
        conv.weight.value[unraveled] = original
        numeric = (plus - minus) / (2 * eps)
        assert analytic[unraveled] == pytest.approx(numeric, rel=1e-4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, stride=0)


class TestMaxPool2d:
    def test_forward_known_values(self):
        pool = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        np.testing.assert_allclose(pool.forward(x), [[[[4.0]]]])

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool.forward(x)
        grad = pool.backward(np.array([[[[1.0]]]]))
        np.testing.assert_allclose(grad, [[[[0.0, 0.0], [0.0, 1.0]]]])

    def test_output_shape(self):
        pool = MaxPool2d(2)
        assert pool.forward(np.zeros((2, 3, 8, 6))).shape == (2, 3, 4, 3)

    def test_requires_4d(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((3, 8, 8)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MaxPool2d(2).backward(np.zeros((1, 1, 1, 1)))
