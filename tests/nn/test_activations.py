"""Tests for activation layers."""

import numpy as np
import pytest

from repro.nn import ReLU, Sigmoid, Softmax, Tanh


class TestReLU:
    def test_forward_clips_negative(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_backward_masks_gradient(self):
        relu = ReLU()
        relu.forward(np.array([-1.0, 3.0]))
        grad = relu.backward(np.array([5.0, 5.0]))
        np.testing.assert_array_equal(grad, [0.0, 5.0])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros(2))


class TestTanhSigmoid:
    def test_tanh_range(self):
        out = Tanh().forward(np.linspace(-5, 5, 11))
        assert np.all(np.abs(out) < 1.0)

    def test_tanh_gradient(self):
        tanh = Tanh()
        tanh.forward(np.array([0.0]))
        np.testing.assert_allclose(tanh.backward(np.array([1.0])), [1.0])

    def test_sigmoid_extremes_stable(self):
        out = Sigmoid().forward(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-9)

    def test_sigmoid_gradient_peak(self):
        sigmoid = Sigmoid()
        sigmoid.forward(np.array([0.0]))
        np.testing.assert_allclose(sigmoid.backward(np.array([1.0])), [0.25])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = Softmax().forward(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5))

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        softmax = Softmax()
        np.testing.assert_allclose(softmax.forward(x), softmax.forward(x + 100.0))

    def test_1d_promoted(self):
        assert Softmax().forward(np.array([0.0, 0.0])).shape == (1, 2)

    def test_backward_jacobian(self):
        # Check the softmax backward pass against a numerical Jacobian product.
        softmax = Softmax()
        x = np.array([[0.3, -0.7, 1.1]])
        upstream = np.array([[0.2, -0.5, 0.9]])
        analytic = softmax.forward(x)
        grad = softmax.backward(upstream)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[1]):
            bumped = x.copy()
            bumped[0, i] += eps
            plus = Softmax().forward(bumped)
            bumped[0, i] -= 2 * eps
            minus = Softmax().forward(bumped)
            numeric[0, i] = ((plus - minus) / (2 * eps) * upstream).sum()
        np.testing.assert_allclose(grad, numeric, atol=1e-6)
        assert analytic.shape == grad.shape
