"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter


def quadratic_grad(param: Parameter) -> None:
    """Gradient of f(w) = 0.5 * ||w||^2."""
    param.zero_grad()
    param.accumulate_grad(param.value.copy())


class TestSGD:
    def test_single_step(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], learning_rate=0.1)
        quadratic_grad(param)
        optimizer.step()
        assert param.value[0] == pytest.approx(0.9)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = SGD([param], learning_rate=0.1)
        for _ in range(200):
            quadratic_grad(param)
            optimizer.step()
        assert np.abs(param.value).max() < 1e-4

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([1.0]))
        momentum = Parameter(np.array([1.0]))
        sgd_plain = SGD([plain], learning_rate=0.01)
        sgd_momentum = SGD([momentum], learning_rate=0.01, momentum=0.9)
        for _ in range(50):
            quadratic_grad(plain)
            sgd_plain.step()
            quadratic_grad(momentum)
            sgd_momentum.step()
        assert abs(momentum.value[0]) < abs(plain.value[0])

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], learning_rate=0.1, weight_decay=0.5)
        param.zero_grad()  # zero task gradient; only decay acts
        optimizer.step()
        assert param.value[0] < 1.0

    def test_invalid_hyperparameters(self):
        param = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([param], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([param], momentum=1.0)

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_zero_grad(self):
        param = Parameter(np.ones(2))
        optimizer = SGD([param], learning_rate=0.1)
        param.accumulate_grad(np.ones(2))
        optimizer.zero_grad()
        assert np.all(param.grad == 0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([4.0, -2.0, 0.5]))
        optimizer = Adam([param], learning_rate=0.05)
        for _ in range(500):
            quadratic_grad(param)
            optimizer.step()
        assert np.abs(param.value).max() < 1e-3

    def test_first_step_size_close_to_lr(self):
        param = Parameter(np.array([10.0]))
        optimizer = Adam([param], learning_rate=0.01)
        quadratic_grad(param)
        optimizer.step()
        # Bias correction makes the first step roughly the learning rate.
        assert 10.0 - param.value[0] == pytest.approx(0.01, rel=0.05)

    def test_invalid_hyperparameters(self):
        param = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            Adam([param], learning_rate=-1.0)
        with pytest.raises(ValueError):
            Adam([param], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([param], epsilon=0.0)

    def test_weight_decay(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], learning_rate=0.01, weight_decay=1.0)
        param.zero_grad()
        optimizer.step()
        assert param.value[0] < 1.0
