"""Tests for policy network factories and state-dict helpers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    MSELoss,
    build_drone_policy_network,
    build_gridworld_q_network,
    clone_state_dict,
    count_parameters,
)
from repro.nn.network import flatten_state_dict, unflatten_state_dict


class TestGridworldNetwork:
    def test_output_shape(self):
        net = build_gridworld_q_network(observation_size=6, action_count=4, rng=0)
        assert net.forward(np.zeros((3, 6))).shape == (3, 4)

    def test_deterministic_construction(self):
        a = build_gridworld_q_network(rng=7).state_dict()
        b = build_gridworld_q_network(rng=7).state_dict()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_different_seeds_differ(self):
        a = build_gridworld_q_network(rng=0).state_dict()
        b = build_gridworld_q_network(rng=1).state_dict()
        assert any(not np.array_equal(a[name], b[name]) for name in a)

    def test_custom_hidden_sizes(self):
        net = build_gridworld_q_network(hidden_sizes=(8,), rng=0)
        assert count_parameters(net) == 4 * 8 + 8 + 8 * 4 + 4

    def test_trains_on_regression(self):
        net = build_gridworld_q_network(observation_size=4, hidden_sizes=(16,), rng=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 4))
        y = np.tile(np.sin(x.sum(axis=1, keepdims=True)), (1, 4))
        loss_fn, optimizer = MSELoss(), Adam(net.parameters(), 0.01)
        first_loss = None
        for _ in range(200):
            out = net.forward(x)
            loss, grad = loss_fn(out, y)
            if first_loss is None:
                first_loss = loss
            net.zero_grad()
            net.backward(grad)
            optimizer.step()
        assert loss < first_loss * 0.1


class TestDronePolicyNetwork:
    def test_output_is_probability_distribution(self):
        net = build_drone_policy_network(input_shape=(3, 8, 8), conv_channels=(4, 4, 4),
                                         fc_hidden=16, rng=0)
        probs = net.forward(np.random.default_rng(0).normal(size=(2, 3, 8, 8)))
        assert probs.shape == (2, 25)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(2))
        assert (probs >= 0).all()

    def test_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            build_drone_policy_network(input_shape=(3, 4, 4), conv_channels=(4, 4, 4), rng=0)

    def test_custom_action_count(self):
        net = build_drone_policy_network(input_shape=(3, 8, 8), conv_channels=(2, 2, 2),
                                         fc_hidden=8, action_count=10, rng=0)
        assert net.forward(np.zeros((1, 3, 8, 8))).shape == (1, 10)


class TestStateDictHelpers:
    def test_clone_is_deep(self):
        net = build_gridworld_q_network(rng=0)
        state = net.state_dict()
        cloned = clone_state_dict(state)
        cloned[next(iter(cloned))][0] = 99.0
        assert not np.array_equal(cloned[next(iter(state))], state[next(iter(state))])

    def test_flatten_unflatten_roundtrip(self):
        net = build_gridworld_q_network(hidden_sizes=(8, 8), rng=0)
        state = net.state_dict()
        vector = flatten_state_dict(state)
        restored = unflatten_state_dict(vector, state)
        for name in state:
            np.testing.assert_array_equal(restored[name], state[name])

    def test_unflatten_size_mismatch(self):
        net = build_gridworld_q_network(hidden_sizes=(8,), rng=0)
        state = net.state_dict()
        with pytest.raises(ValueError):
            unflatten_state_dict(np.zeros(3), state)

    def test_count_parameters_positive(self):
        assert count_parameters(build_gridworld_q_network(rng=0)) > 0
