"""Bitwise identity of :class:`StackedPolicy` against per-network forwards.

The stacked forward reproduces each lane's *serial operand memory layout*
before every GEMM (BLAS picks its kernel — and hence its floating-point
reduction order — from operand strides), which is what makes row ``j`` of
``forward`` byte-identical to ``networks[j].forward(obs[None])[0]`` rather
than merely numerically close.
"""

import numpy as np
import pytest

from repro.core.config import DroneScale
from repro.core.workloads import drone_agent_config
from repro.nn.batched import StackedPolicy
from repro.rl.reinforce import ReinforceAgent


def _agents(count, seed=77):
    config = drone_agent_config(DroneScale.tiny())
    streams = np.random.SeedSequence(seed).spawn(count)
    return [ReinforceAgent(config, rng=np.random.default_rng(s)) for s in streams]


def _observations(count, shape, seed=5):
    return np.random.default_rng(seed).normal(size=(count, *shape))


class TestStackedForwardIdentity:
    @pytest.mark.parametrize("lane_count", [1, 2, 5])
    def test_forward_matches_serial_bitwise(self, lane_count):
        agents = _agents(lane_count)
        policy = StackedPolicy([agent.network for agent in agents])
        shape = agents[0].config.input_shape
        observations = _observations(lane_count, shape)
        stacked = policy.forward(observations)
        for lane, agent in enumerate(agents):
            serial = agent.network.forward(observations[lane][None])[0]
            assert stacked[lane].tobytes() == serial.tobytes()

    def test_lane_selection_routes_each_row_to_its_network(self):
        agents = _agents(3)
        policy = StackedPolicy([agent.network for agent in agents])
        shape = agents[0].config.input_shape
        observations = _observations(2, shape)
        lanes = np.array([2, 0])
        stacked = policy.forward(observations, lanes=lanes)
        for row, lane in enumerate(lanes):
            serial = agents[lane].network.forward(observations[row][None])[0]
            assert stacked[row].tobytes() == serial.tobytes()

    def test_refresh_picks_up_weight_mutations(self):
        agents = _agents(2)
        policy = StackedPolicy([agent.network for agent in agents])
        shape = agents[0].config.input_shape
        observations = _observations(2, shape)
        before = policy.forward(observations)
        # Mutate lane 1's weights in place (as a fault injection would).
        state = agents[1].network.state_dict()
        key = sorted(state)[0]
        state[key] = state[key] + 0.25
        agents[1].network.load_state_dict(state)
        stale = policy.forward(observations)
        assert stale[1].tobytes() == before[1].tobytes()  # stale until refresh
        policy.refresh()
        fresh = policy.forward(observations)
        serial = agents[1].network.forward(observations[1][None])[0]
        assert fresh[1].tobytes() == serial.tobytes()
        assert fresh[0].tobytes() == before[0].tobytes()

    def test_mismatched_topologies_rejected(self):
        from dataclasses import replace

        config = drone_agent_config(DroneScale.tiny())
        small = ReinforceAgent(config, rng=np.random.default_rng(1))
        big = ReinforceAgent(
            replace(config, fc_hidden=config.fc_hidden * 2), rng=np.random.default_rng(2)
        )
        with pytest.raises(ValueError):
            StackedPolicy([small.network, big.network])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            StackedPolicy([])
