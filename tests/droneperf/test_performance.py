"""Tests for the drone performance / overhead model."""

import pytest

from repro.droneperf import (
    AIRSIM_DRONE,
    DJI_SPARK,
    DronePlatform,
    estimate_flight,
    evaluate_protection_overheads,
)
from repro.mitigation import PROTECTION_SCHEMES


class TestPlatforms:
    def test_paper_parameters(self):
        # Values from the paper's Fig. 9 platform table.
        assert AIRSIM_DRONE.mass_g == 1652.0
        assert AIRSIM_DRONE.battery_capacity_mah == 6250.0
        assert DJI_SPARK.mass_g == 300.0
        assert DJI_SPARK.battery_capacity_mah == 1480.0

    def test_battery_energy(self):
        assert DJI_SPARK.battery_energy_wh == pytest.approx(1.48 * 11.4)

    def test_hover_power_increases_with_mass(self):
        assert AIRSIM_DRONE.hover_power_w(2000) > AIRSIM_DRONE.hover_power_w(1652)

    def test_hover_power_invalid_mass(self):
        with pytest.raises(ValueError):
            AIRSIM_DRONE.hover_power_w(0)

    def test_invalid_platform(self):
        with pytest.raises(ValueError):
            DronePlatform("x", "t", 100, -1, 1000, 11, 10, 1, 5, 100)

    def test_realistic_flight_times(self):
        for platform in (AIRSIM_DRONE, DJI_SPARK):
            estimate = estimate_flight(platform, PROTECTION_SCHEMES["baseline"])
            assert 8 * 60 < estimate.flight_time_s < 40 * 60


class TestEstimateFlight:
    def test_redundancy_increases_power_and_mass(self):
        baseline = estimate_flight(DJI_SPARK, PROTECTION_SCHEMES["baseline"])
        tmr = estimate_flight(DJI_SPARK, PROTECTION_SCHEMES["tmr"])
        assert tmr.total_mass_g > baseline.total_mass_g
        assert tmr.total_power_w > baseline.total_power_w
        assert tmr.flight_time_s < baseline.flight_time_s
        assert tmr.flight_distance_m < baseline.flight_distance_m

    def test_detection_overhead_small(self):
        baseline = estimate_flight(AIRSIM_DRONE, PROTECTION_SCHEMES["baseline"])
        detection = estimate_flight(AIRSIM_DRONE, PROTECTION_SCHEMES["detection"])
        degradation = 1.0 - detection.flight_distance_m / baseline.flight_distance_m
        assert degradation < 0.03  # the paper's <2.7 % overhead claim

    def test_invalid_energy_fraction(self):
        with pytest.raises(ValueError):
            estimate_flight(AIRSIM_DRONE, PROTECTION_SCHEMES["baseline"], mission_energy_fraction=0.0)

    def test_as_dict_keys(self):
        estimate = estimate_flight(AIRSIM_DRONE, PROTECTION_SCHEMES["dmr"])
        assert {"platform", "scheme", "flight_distance_m"} <= set(estimate.as_dict())


class TestProtectionComparison:
    def test_ordering_matches_paper(self):
        # detection barely hurts; DMR hurts more; TMR hurts most.
        for platform in (AIRSIM_DRONE, DJI_SPARK):
            result = evaluate_protection_overheads(platform)
            distances = {name: est.flight_distance_m for name, est in result.estimates.items()}
            assert distances["detection"] > distances["dmr"] > distances["tmr"]

    def test_micro_uav_hit_harder_than_mini_uav(self):
        # The paper's asymmetry: TMR is far more damaging on the DJI Spark.
        airsim = evaluate_protection_overheads(AIRSIM_DRONE)
        spark = evaluate_protection_overheads(DJI_SPARK)
        assert spark.distance_degradation("tmr", "detection") > airsim.distance_degradation(
            "tmr", "detection"
        )

    def test_spark_tmr_degradation_large(self):
        spark = evaluate_protection_overheads(DJI_SPARK)
        assert spark.distance_degradation("tmr", "detection") > 0.5

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            evaluate_protection_overheads(AIRSIM_DRONE, schemes=["baseline", "ecc"])

    def test_degradation_reference_validation(self):
        result = evaluate_protection_overheads(AIRSIM_DRONE)
        assert result.distance_degradation("baseline", "baseline") == pytest.approx(0.0)
