"""Tests for the DroneNav corridor environment."""

import numpy as np
import pytest

from repro.envs import DroneNavConfig, DroneNavEnv, DroneWorld, default_drone_worlds
from repro.envs.dronenav import SPEED_FACTORS, YAW_DELTAS_DEG, decode_action, generate_world


class TestActionSpace:
    def test_25_actions(self):
        assert DroneNavEnv.action_count == 25

    def test_decode_action_covers_grid(self):
        pairs = {decode_action(a) for a in range(25)}
        assert len(pairs) == 25

    def test_decode_action_bounds(self):
        yaw, speed = decode_action(0)
        assert yaw == pytest.approx(np.deg2rad(YAW_DELTAS_DEG[0]))
        assert speed == SPEED_FACTORS[0]

    def test_decode_invalid(self):
        with pytest.raises(ValueError):
            decode_action(25)


class TestWorldGeometry:
    def test_generate_world_deterministic(self):
        a = generate_world(seed=1)
        b = generate_world(seed=1)
        np.testing.assert_array_equal(a.obstacles, b.obstacles)

    def test_keepout_region_clear(self):
        world = generate_world(seed=2, keepout=15.0)
        assert not world.collides(np.array([0.0, 0.0]), drone_radius=1.0)

    def test_wall_collision(self):
        world = DroneWorld(length=100, half_width=10)
        assert world.collides(np.array([5.0, 9.5]), drone_radius=1.0)
        assert not world.collides(np.array([5.0, 0.0]), drone_radius=1.0)

    def test_obstacle_collision(self):
        world = DroneWorld(length=100, half_width=20, obstacles=np.array([[10.0, 0.0]]))
        assert world.collides(np.array([10.5, 0.5]), drone_radius=1.0)
        assert not world.collides(np.array([50.0, 0.0]), drone_radius=1.0)

    def test_ray_depths_clear_corridor(self):
        world = DroneWorld(length=1000, half_width=50)
        depths = world.ray_depths(np.array([0.0, 0.0]), 0.0, np.array([0.0]), max_range=40.0)
        assert depths[0] == pytest.approx(40.0)

    def test_ray_depth_hits_obstacle(self):
        world = DroneWorld(length=1000, half_width=50,
                           obstacles=np.array([[10.0, 0.0]]), obstacle_radius=2.0)
        depths = world.ray_depths(np.array([0.0, 0.0]), 0.0, np.array([0.0]), max_range=40.0)
        assert depths[0] == pytest.approx(8.0, abs=0.1)

    def test_ray_depth_hits_wall(self):
        world = DroneWorld(length=1000, half_width=10)
        # Ray pointing straight "up" (+y) hits the wall at 10 m.
        depths = world.ray_depths(np.array([0.0, 0.0]), np.pi / 2, np.array([0.0]), max_range=40.0)
        assert depths[0] == pytest.approx(10.0, abs=0.1)

    def test_default_worlds(self):
        worlds = default_drone_worlds(count=3)
        assert len(worlds) == 3
        assert len({w.name for w in worlds}) == 3

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            DroneWorld(length=-1.0)


class TestEnvironment:
    def make_env(self, **config_kwargs):
        config = DroneNavConfig(image_width=16, image_height=8, max_steps=50, **config_kwargs)
        world = generate_world(seed=3, length=300.0)
        return DroneNavEnv(world, config)

    def test_observation_shape_and_range(self):
        env = self.make_env()
        observation = env.reset()
        assert observation.shape == (3, 8, 16)
        assert observation.min() >= 0.0 and observation.max() <= 1.0

    def test_requires_reset(self):
        env = self.make_env()
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_flight_distance_accumulates(self):
        env = self.make_env()
        env.reset()
        straight_full_speed = 2 * len(SPEED_FACTORS) + 2  # yaw index 2, speed index 2
        result = env.step(straight_full_speed)
        assert env.flight_distance > 0
        assert result.info["flight_distance"] == pytest.approx(env.flight_distance)

    def test_episode_ends_within_max_steps(self):
        env = self.make_env()
        env.reset()
        rng = np.random.default_rng(0)
        steps = 0
        done = False
        while not done:
            result = env.step(int(rng.integers(0, 25)))
            done = result.done
            steps += 1
        assert steps <= env.config.max_steps
        assert result.info["outcome"] in ("crash", "survived")

    def test_crash_penalty(self):
        config = DroneNavConfig(image_width=16, image_height=8, max_steps=400)
        world = DroneWorld(length=500, half_width=5.0)  # narrow corridor forces a crash
        env = DroneNavEnv(world, config)
        env.reset()
        done = False
        reward = 0.0
        while not done:
            result = env.step(0)  # hard yaw left at low speed -> drifts into the wall
            reward = result.reward
            done = result.done
        assert result.info["outcome"] == "crash"
        assert reward == pytest.approx(config.crash_penalty)

    def test_invalid_action(self):
        env = self.make_env()
        env.reset()
        with pytest.raises(ValueError):
            env.step(30)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DroneNavConfig(image_width=1)
        with pytest.raises(ValueError):
            DroneNavConfig(field_of_view_deg=0.0)
        with pytest.raises(ValueError):
            DroneNavConfig(max_steps=0)
