"""Tests for the GridWorld environment."""

import numpy as np
import pytest

from repro.envs import CellType, GridWorldEnv, GridWorldLayout, default_gridworld_layouts
from repro.envs.gridworld import ACTIONS, enumerate_observations, generate_layout, make_gridworld_suite


class TestLayoutGeneration:
    def test_default_layouts_count_and_size(self):
        layouts = default_gridworld_layouts(count=12)
        assert len(layouts) == 12
        assert all(layout.shape == (10, 10) for layout in layouts)

    def test_layouts_are_solvable(self):
        from repro.envs.gridworld import _path_exists

        for layout in default_gridworld_layouts(count=6):
            assert _path_exists(layout)

    def test_deterministic_generation(self):
        a = generate_layout(seed=5)
        b = generate_layout(seed=5)
        np.testing.assert_array_equal(a.grid, b.grid)
        assert a.source == b.source and a.goal == b.goal

    def test_out_of_bounds_is_hell(self):
        layout = generate_layout(seed=1)
        assert layout.cell(-1, 0) == CellType.HELL
        assert layout.cell(0, 10) == CellType.HELL

    def test_render_symbols(self):
        text = generate_layout(seed=2).render()
        assert "S" in text and "G" in text and "#" in text

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_layout(seed=0, size=2)
        with pytest.raises(ValueError):
            generate_layout(seed=0, obstacle_fraction=0.9)

    def test_layout_validation(self):
        grid = np.zeros((4, 4), dtype=np.int8)
        grid[1, 1] = int(CellType.GOAL)
        with pytest.raises(ValueError):
            GridWorldLayout(grid=grid, source=(0, 0), goal=(2, 2))


class TestObservations:
    def test_local_mode_shape_and_values(self):
        env = GridWorldEnv(generate_layout(seed=3), observation_mode="local")
        observation = env.reset()
        assert observation.shape == (4,)
        assert set(np.unique(observation)).issubset({-1.0, 0.0, 1.0})

    def test_goal_direction_mode_shape(self):
        env = GridWorldEnv(generate_layout(seed=3))
        assert env.reset().shape == (6,)

    def test_goal_direction_signs(self):
        layout = generate_layout(seed=4)
        env = GridWorldEnv(layout)
        observation = env.reset()
        row, col = layout.source
        goal_row, goal_col = layout.goal
        assert observation[4] == np.sign(goal_row - row)
        assert observation[5] == np.sign(goal_col - col)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            GridWorldEnv(generate_layout(seed=0), observation_mode="pixels")

    def test_enumerate_observations_sizes(self):
        assert enumerate_observations(4).shape == (81, 4)
        assert enumerate_observations(6).shape == (729, 6)

    def test_enumerate_observations_unique(self):
        observations = enumerate_observations(4)
        assert len({tuple(row) for row in observations}) == 81


class TestStepDynamics:
    def make_env(self):
        # Hand-built 4x4 layout: source at (0,0), goal at (0,3), hell at (1,1).
        grid = np.zeros((4, 4), dtype=np.int8)
        grid[0, 0] = int(CellType.SOURCE)
        grid[0, 3] = int(CellType.GOAL)
        grid[1, 1] = int(CellType.HELL)
        layout = GridWorldLayout(grid=grid, source=(0, 0), goal=(0, 3), name="manual")
        return GridWorldEnv(layout, max_steps=20)

    def test_requires_reset(self):
        env = self.make_env()
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_move_toward_goal_rewarded(self):
        env = self.make_env()
        env.reset()
        result = env.step(2)  # right, toward the goal
        assert result.reward == pytest.approx(GridWorldEnv.REWARD_CLOSER)
        assert not result.done

    def test_move_away_penalized(self):
        env = self.make_env()
        env.reset()
        result = env.step(1)  # down, away from the goal column 3? still same distance change
        assert result.reward in (GridWorldEnv.REWARD_CLOSER, GridWorldEnv.REWARD_FARTHER)

    def test_reach_goal(self):
        env = self.make_env()
        env.reset()
        outcomes = [env.step(2) for _ in range(3)]
        assert outcomes[-1].done
        assert outcomes[-1].info["outcome"] == "goal"
        assert outcomes[-1].reward == pytest.approx(GridWorldEnv.REWARD_GOAL)

    def test_crash_into_wall(self):
        env = self.make_env()
        env.reset()
        result = env.step(0)  # up and out of the grid
        assert result.done
        assert result.info["outcome"] == "crash"
        assert result.reward == pytest.approx(GridWorldEnv.REWARD_CRASH)

    def test_crash_into_hell(self):
        env = self.make_env()
        env.reset()
        env.step(1)  # down to (1,0)
        result = env.step(2)  # right into the hell cell at (1,1)
        assert result.done and result.info["outcome"] == "crash"

    def test_timeout(self):
        env = self.make_env()
        env.reset()
        done = False
        steps = 0
        while not done:
            result = env.step(1 if steps % 2 == 0 else 0)  # oscillate down/up in place
            done = result.done
            steps += 1
        assert steps == env.max_steps
        assert result.info["outcome"] == "timeout"

    def test_invalid_action(self):
        env = self.make_env()
        env.reset()
        with pytest.raises(ValueError):
            env.step(7)

    def test_action_count_matches_action_table(self):
        assert GridWorldEnv.action_count == len(ACTIONS) == 4


class TestSuite:
    def test_suite_has_one_env_per_agent(self):
        suite = make_gridworld_suite(agent_count=5)
        assert len(suite) == 5
        assert len({env.layout.name for env in suite}) == 5

    def test_suite_observation_mode_forwarded(self):
        suite = make_gridworld_suite(agent_count=2, observation_mode="local")
        assert all(env.observation_shape == (4,) for env in suite)
