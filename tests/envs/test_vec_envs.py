"""Bitwise identity of the vectorized environments against their serial twins.

The vectorized campaign path stands on one contract: a ``GridWorldVecEnv`` /
``DroneNavVecEnv`` lane must produce *byte-identical* observations, rewards
and termination flags to the serial environment it stacks.  These tests drive
vec and serial lanes with the same action streams and compare every step,
plus the masked-termination edge cases (a lane finishing at t=0, every lane
finished) the lockstep evaluator leans on.
"""

import numpy as np
import pytest

from repro.envs import DroneNavConfig, DroneNavEnv, GridWorldEnv
from repro.envs.dronenav import DroneNavVecEnv, generate_world
from repro.envs.gridworld import GridWorldVecEnv, generate_layout


def _drone_envs(count, config=None, seed0=11):
    config = config or DroneNavConfig(image_width=8, image_height=8, max_steps=30)
    return [
        DroneNavEnv(generate_world(seed=seed0 + i, length=120.0), config)
        for i in range(count)
    ]


def _gridworld_envs(count, max_steps=25, seed0=3):
    return [
        GridWorldEnv(generate_layout(seed=seed0 + i), max_steps=max_steps)
        for i in range(count)
    ]


def _assert_lockstep_identical(vec_env, serial_envs, action_streams, max_rounds=200):
    """Drive vec and serial lanes with the same actions; compare bytes each step."""
    lane_count = len(serial_envs)
    serial_obs = [env.reset() for env in serial_envs]
    vec_obs = vec_env.reset_batch()
    for lane in range(lane_count):
        assert vec_obs[lane].tobytes() == serial_obs[lane].tobytes()
    serial_done = [False] * lane_count
    for round_index in range(max_rounds):
        if all(serial_done):
            break
        actions = np.array(
            [next(stream) for stream in action_streams], dtype=np.int64
        )
        result = vec_env.step_batch(actions)
        for lane in range(lane_count):
            if serial_done[lane]:
                assert not result.stepped[lane]
                assert result.rewards[lane] == 0.0
                assert result.outcomes[lane] is None
                continue
            serial_result = serial_envs[lane].step(int(actions[lane]))
            assert result.stepped[lane]
            assert result.observations[lane].tobytes() == serial_result.observation.tobytes()
            assert result.rewards[lane] == serial_result.reward
            assert bool(result.done[lane]) == serial_result.done
            assert result.outcomes[lane] == serial_result.info["outcome"]
            serial_done[lane] = serial_result.done
    assert all(serial_done), "episodes did not terminate within the round budget"
    np.testing.assert_array_equal(vec_env.done, np.array(serial_done))


class TestGridWorldVecIdentity:
    @pytest.mark.parametrize("lane_count", [1, 3, 5])
    def test_step_identity_random_actions(self, lane_count):
        envs = _gridworld_envs(lane_count)
        vec_env = GridWorldVecEnv(_gridworld_envs(lane_count))
        rng = np.random.default_rng(42)
        streams = [iter(lambda: int(rng.integers(0, 4)), None) for _ in range(lane_count)]
        _assert_lockstep_identical(vec_env, envs, streams)

    def test_timeout_lanes_match_serial(self):
        # Action 0 repeated forever forces crash-or-timeout terminations.
        envs = _gridworld_envs(3, max_steps=6)
        vec_env = GridWorldVecEnv(_gridworld_envs(3, max_steps=6))
        streams = [iter(lambda: 0, None) for _ in range(3)]
        _assert_lockstep_identical(vec_env, envs, streams)

    def test_partial_reset_revives_only_named_lanes(self):
        vec_env = GridWorldVecEnv(_gridworld_envs(3, max_steps=1))
        vec_env.reset_batch()
        vec_env.step_batch(np.zeros(3, dtype=np.int64))  # every lane terminates
        assert vec_env.done.all()
        vec_env.reset_batch(lanes=np.array([1]))
        done = vec_env.done
        assert not done[1] and done[0] and done[2]

    def test_heterogeneous_lanes_rejected(self):
        small = GridWorldEnv(generate_layout(seed=1))
        with pytest.raises(ValueError, match="max_steps"):
            GridWorldVecEnv([small, GridWorldEnv(generate_layout(seed=2), max_steps=7)])
        with pytest.raises(TypeError):
            GridWorldVecEnv([small, object()])


class TestDroneNavVecIdentity:
    @pytest.mark.parametrize("lane_count", [1, 4])
    def test_step_identity_random_actions(self, lane_count):
        envs = _drone_envs(lane_count)
        vec_env = DroneNavVecEnv(_drone_envs(lane_count))
        rng = np.random.default_rng(7)
        streams = [iter(lambda: int(rng.integers(0, 25)), None) for _ in range(lane_count)]
        _assert_lockstep_identical(vec_env, envs, streams)
        np.testing.assert_array_equal(
            vec_env.flight_distances,
            np.array([env.flight_distance for env in envs]),
        )

    def test_lanes_may_share_one_world(self):
        config = DroneNavConfig(image_width=8, image_height=8, max_steps=20)
        world = generate_world(seed=5, length=120.0)
        envs = [DroneNavEnv(world, config) for _ in range(3)]
        vec_env = DroneNavVecEnv([DroneNavEnv(world, config) for _ in range(3)])
        rng = np.random.default_rng(9)
        streams = [iter(lambda: int(rng.integers(0, 25)), None) for _ in range(3)]
        _assert_lockstep_identical(vec_env, envs, streams)

    def test_mismatched_configs_rejected(self):
        world = generate_world(seed=5, length=120.0)
        a = DroneNavEnv(world, DroneNavConfig(image_width=8, image_height=8))
        b = DroneNavEnv(world, DroneNavConfig(image_width=10, image_height=8))
        with pytest.raises(ValueError, match="DroneNavConfig"):
            DroneNavVecEnv([a, b])


class TestMaskedTermination:
    def test_all_lanes_done_raises(self):
        vec_env = GridWorldVecEnv(_gridworld_envs(2, max_steps=1))
        vec_env.reset_batch()
        vec_env.step_batch(np.zeros(2, dtype=np.int64))
        assert vec_env.done.all()
        with pytest.raises(RuntimeError, match="reset_batch"):
            vec_env.step_batch(np.zeros(2, dtype=np.int64))

    def test_lane_done_on_first_step_stays_frozen(self):
        # max_steps=1: every lane terminates at t=0; step lane 1 alone after
        # a partial reset and check lane 0's state never moves again.
        vec_env = GridWorldVecEnv(_gridworld_envs(2, max_steps=1))
        vec_env.reset_batch()
        first = vec_env.step_batch(np.zeros(2, dtype=np.int64))
        assert first.done.all()
        frozen = vec_env.observations[0].copy()
        vec_env.reset_batch(lanes=np.array([1]))
        result = vec_env.step_batch(np.array([3, 1], dtype=np.int64))
        assert not result.stepped[0] and result.stepped[1]
        assert vec_env.observations[0].tobytes() == frozen.tobytes()
        assert result.rewards[0] == 0.0 and result.outcomes[0] is None

    def test_drone_all_done_raises(self):
        config = DroneNavConfig(image_width=8, image_height=8, max_steps=1)
        vec_env = DroneNavVecEnv(_drone_envs(2, config=config))
        vec_env.reset_batch()
        vec_env.step_batch(np.zeros(2, dtype=np.int64))
        assert vec_env.done.all()
        with pytest.raises(RuntimeError, match="reset_batch"):
            vec_env.step_batch(np.zeros(2, dtype=np.int64))
