"""Tests for workload builders and the policy cache."""

import numpy as np
import pytest

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache
from repro.core.workloads import (
    build_drone_frl_system,
    build_drone_single_system,
    build_gridworld_frl_system,
    build_gridworld_single_system,
    drone_environments,
    gridworld_environments,
)


class TestGridworldWorkloads:
    def test_frl_system_size(self, tiny_gridworld_scale):
        system = build_gridworld_frl_system(tiny_gridworld_scale)
        assert system.agent_count == tiny_gridworld_scale.agent_count

    def test_reproducible_construction(self, tiny_gridworld_scale):
        a = build_gridworld_frl_system(tiny_gridworld_scale).agents[0].upload_state()
        b = build_gridworld_frl_system(tiny_gridworld_scale).agents[0].upload_state()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_seed_offset_changes_init(self, tiny_gridworld_scale):
        a = build_gridworld_frl_system(tiny_gridworld_scale, seed_offset=0).agents[0].upload_state()
        b = build_gridworld_frl_system(tiny_gridworld_scale, seed_offset=1).agents[0].upload_state()
        assert any(not np.array_equal(a[name], b[name]) for name in a)

    def test_single_system(self, tiny_gridworld_scale):
        system = build_gridworld_single_system(tiny_gridworld_scale)
        assert system.agent_count == 1

    def test_environments_respect_observation_mode(self):
        scale = GridWorldScale.tiny()
        envs = gridworld_environments(scale)
        assert envs[0].observation_shape == (6,)

    def test_local_mode_network_size(self):
        scale = GridWorldScale(agent_count=2, episodes=10, observation_mode="local",
                               evaluation_attempts=2)
        system = build_gridworld_frl_system(scale)
        first_weight = system.agents[0].upload_state()["0.weight"]
        assert first_weight.shape[0] == 4


class TestDroneWorkloads:
    def test_frl_system_size(self, tiny_drone_scale):
        system = build_drone_frl_system(tiny_drone_scale)
        assert system.agent_count == tiny_drone_scale.drone_count

    def test_initial_state_seeds_all_drones(self, tiny_drone_scale, tiny_drone_policy):
        system = build_drone_frl_system(tiny_drone_scale, initial_state=tiny_drone_policy["policy"])
        for agent in system.agents:
            state = agent.upload_state()
            for name in state:
                np.testing.assert_array_equal(state[name], tiny_drone_policy["policy"][name])

    def test_single_system(self, tiny_drone_scale):
        system = build_drone_single_system(tiny_drone_scale)
        assert system.agent_count == 1

    def test_environment_count(self, tiny_drone_scale):
        assert len(drone_environments(tiny_drone_scale)) == tiny_drone_scale.drone_count


class TestPolicyCache:
    def test_gridworld_cache_hit(self, policy_cache, tiny_gridworld_scale, tiny_gridworld_policies):
        # Second call must come from disk and return identical parameters.
        again = policy_cache.gridworld_policies(tiny_gridworld_scale)
        for name in tiny_gridworld_policies["consensus"]:
            np.testing.assert_allclose(
                again["consensus"][name], tiny_gridworld_policies["consensus"][name]
            )
        assert len(again["agents"]) == tiny_gridworld_scale.agent_count

    def test_drone_cache_hit(self, policy_cache, tiny_drone_scale, tiny_drone_policy):
        again = policy_cache.drone_policy(tiny_drone_scale)
        assert again["accuracy"] == pytest.approx(tiny_drone_policy["accuracy"])

    def test_cache_key_depends_on_scale(self, policy_cache, tiny_gridworld_scale):
        from repro.core.pretrained import _scale_key

        other = tiny_gridworld_scale.with_seed(99)
        assert _scale_key("gridworld", tiny_gridworld_scale) != _scale_key("gridworld", other)

    def test_clear(self, tmp_path):
        cache = PolicyCache(tmp_path)
        cache.store("x", {"v": 1})
        assert cache.clear() == 1
        assert cache.load("x") is None

    def test_success_rate_recorded(self, tiny_gridworld_policies):
        assert 0.0 <= tiny_gridworld_policies["success_rate"] <= 1.0
