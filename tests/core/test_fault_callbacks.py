"""Tests for the training fault-injection callback."""

import numpy as np

from repro.core.fault_callbacks import TrainingFaultCallback, make_training_fault
from repro.core.workloads import build_gridworld_frl_system
from repro.core.config import GridWorldScale
from repro.faults import FaultSpec


def tiny_frl():
    return build_gridworld_frl_system(GridWorldScale.tiny())


class TestTrainingFaultCallback:
    def test_disabled_spec_never_injects(self):
        system = tiny_frl()
        callback = TrainingFaultCallback(FaultSpec(bit_error_rate=0.0), rng=0)
        system.train(3, callbacks=[callback])
        assert callback.injection_count == 0

    def test_injects_only_at_selected_episode(self):
        system = tiny_frl()
        callback = make_training_fault("agent", 0.05, injection_episode=2, datatype="Q(1,2,5)", rng=0)
        system.train(5, callbacks=[callback])
        assert callback.injection_count == 1
        assert callback.injections[0]["episode"] == 2
        assert callback.injections[0]["where"] == "agent_weights"

    def test_injects_every_episode_when_unpinned(self):
        system = tiny_frl()
        callback = make_training_fault("agent", 0.01, injection_episode=None, rng=0)
        system.train(4, callbacks=[callback])
        assert callback.injection_count == 4

    def test_agent_fault_touches_single_agent(self):
        system = tiny_frl()
        before = [agent.upload_state() for agent in system.agents]
        callback = make_training_fault("agent", 0.2, injection_episode=0, agent_index=1,
                                       datatype="Q(1,2,5)", rng=0)
        # Disable learning updates by training zero episodes and invoking the hook directly.
        callback.on_round_end(system, 0, communicated=False)
        after = [agent.upload_state() for agent in system.agents]
        unchanged = all(np.array_equal(before[0][n], after[0][n]) for n in before[0])
        changed = any(not np.array_equal(before[1][n], after[1][n]) for n in before[1])
        assert unchanged and changed

    def test_server_fault_touches_all_agents(self):
        system = tiny_frl()
        before = [agent.upload_state() for agent in system.agents]
        callback = make_training_fault("server", 0.2, injection_episode=0,
                                       datatype="Q(1,2,5)", rng=0)
        callback.on_round_end(system, 0, communicated=False)
        after = [agent.upload_state() for agent in system.agents]
        for index in range(len(before)):
            assert any(not np.array_equal(before[index][n], after[index][n]) for n in before[index])
        assert callback.injections[0]["where"] == "server_weights"

    def test_server_fault_updates_server_consensus(self):
        system = tiny_frl()
        system.train(2)  # the tiny scale communicates every second episode
        consensus_before = {k: v.copy() for k, v in system.server.consensus.items()}
        callback = make_training_fault("server", 0.2, injection_episode=5, datatype="Q(1,2,5)", rng=0)
        callback.on_round_end(system, 5, communicated=False)
        changed = any(
            not np.array_equal(system.server.consensus[name], consensus_before[name])
            for name in consensus_before
        )
        assert changed

    def test_activation_fault_attaches_and_detaches_hooks(self):
        from repro.faults.hooks import ActivationFaultHook

        system = tiny_frl()
        callback = make_training_fault("agent", 0.05, injection_episode=0, target="activations",
                                       agent_index=0, rng=0)
        callback.on_episode_start(system, 0)
        assert any(
            isinstance(module, ActivationFaultHook)
            for module in system.agents[0].agent.network.modules
        )
        callback.on_round_end(system, 0, communicated=False)
        assert not any(
            isinstance(module, ActivationFaultHook)
            for module in system.agents[0].agent.network.modules
        )
        assert callback.injections[0]["where"] == "agent_activations"

    def test_training_with_fault_still_completes(self):
        system = tiny_frl()
        callback = make_training_fault("server", 0.05, injection_episode=1, rng=0)
        log = system.train(3, callbacks=[callback])
        assert log.episodes == 3
