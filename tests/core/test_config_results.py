"""Tests for experiment scales and result containers."""

import numpy as np
import pytest

from repro.core import DroneScale, GridWorldScale, HeatmapResult, SweepResult, TableResult
from repro.core.results import summarize_improvement


class TestScales:
    def test_presets_exist(self):
        for scale_cls in (GridWorldScale, DroneScale):
            assert scale_cls.tiny() != scale_cls.paper()
            assert scale_cls.fast() == scale_cls()

    def test_paper_scale_matches_paper_numbers(self):
        paper = GridWorldScale.paper()
        assert paper.agent_count == 12
        assert paper.episodes == 1000
        drone = DroneScale.paper()
        assert drone.drone_count == 4
        assert drone.image_width == 320 and drone.image_height == 180

    def test_with_agents_and_seed(self):
        scale = GridWorldScale.tiny().with_agents(6).with_seed(3)
        assert scale.agent_count == 6 and scale.seed == 3

    def test_drone_input_shape(self):
        assert DroneScale(image_height=8, image_width=16).input_shape == (3, 8, 16)

    def test_invalid_scales(self):
        with pytest.raises(ValueError):
            GridWorldScale(agent_count=0)
        with pytest.raises(ValueError):
            DroneScale(drone_count=0)
        with pytest.raises(ValueError):
            GridWorldScale(repeats=0)

    def test_scales_are_frozen(self):
        with pytest.raises(Exception):
            GridWorldScale.tiny().agent_count = 5


class TestHeatmapResult:
    def make(self):
        return HeatmapResult(
            title="demo", metric="SR", row_axis="BER", column_axis="episode",
            row_labels=["0%", "1%"], column_labels=[10, 20],
            values=np.array([[90.0, 95.0], [60.0, 50.0]]),
        )

    def test_cell_and_row_lookup(self):
        result = self.make()
        assert result.cell("1%", 20) == 50.0
        np.testing.assert_allclose(result.row("0%"), [90.0, 95.0])

    def test_render_contains_labels(self):
        text = self.make().render()
        assert "demo" in text and "1%" in text and "20" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            HeatmapResult("t", "m", "r", "c", ["a"], [1, 2], np.zeros((2, 2)))

    def test_as_dict_roundtrippable(self):
        payload = self.make().as_dict()
        assert payload["values"] == [[90.0, 95.0], [60.0, 50.0]]


class TestSweepResult:
    def make(self):
        return SweepResult(
            title="sweep", metric="m", x_axis="BER", x_values=[0.0, 0.01],
            series={"a": [1.0, 2.0], "b": [3.0, 6.0]},
        )

    def test_value_lookup(self):
        assert self.make().value("b", 0.01) == 6.0

    def test_series_length_validation(self):
        with pytest.raises(ValueError):
            SweepResult("t", "m", "x", [1], {"a": [1.0, 2.0]})

    def test_render(self):
        assert "sweep" in self.make().render()

    def test_summarize_improvement(self):
        assert summarize_improvement(self.make(), "a", "b") == pytest.approx(3.0)

    def test_summarize_improvement_missing_series(self):
        assert summarize_improvement(self.make(), "a", "zzz") is None


class TestTableResult:
    def test_column_access_and_render(self):
        table = TableResult(title="T", headers=["k", "v"], rows=[["x", 1.0], ["y", 2.0]])
        assert table.column("v") == [1.0, 2.0]
        assert "T" in table.render()
        assert table.as_dict()["headers"] == ["k", "v"]
