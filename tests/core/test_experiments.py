"""Tests for the per-figure experiment functions (tiny scales)."""

import pytest

from repro.core import experiments
from repro.core.config import DroneScale, GridWorldScale


@pytest.fixture(scope="module")
def gw_scale():
    return GridWorldScale.tiny()


@pytest.fixture(scope="module")
def drone_scale():
    return DroneScale.tiny()


class TestGridworldTraining:
    def test_training_heatmap_shape_and_baseline(self, gw_scale):
        result = experiments.gridworld_training_heatmap(
            "server", scale=gw_scale, ber_values=(0.0, 0.02), episode_fractions=(0.8,)
        )
        assert result.values.shape == (2, 1)
        assert 0.0 <= result.values.min() and result.values.max() <= 100.0
        assert result.metadata["location"] == "server"

    def test_training_heatmap_invalid_location(self, gw_scale):
        with pytest.raises(ValueError):
            experiments.gridworld_training_heatmap("antenna", scale=gw_scale)

    def test_policy_std_table(self, gw_scale):
        result = experiments.policy_std_table(scale=gw_scale, agent_counts=(1, 2))
        assert len(result.rows) == 2
        stds = result.column("policy std")
        assert all(0.0 <= value <= 0.5 for value in stds)

    def test_policy_std_rejects_bad_count(self, gw_scale):
        with pytest.raises(ValueError):
            experiments.policy_std_table(scale=gw_scale, agent_counts=(0,))

    def test_weight_distribution(self, gw_scale, tiny_gridworld_policies):
        result = experiments.weight_distribution(
            scale=gw_scale, consensus=tiny_gridworld_policies["consensus"]
        )
        as_map = {row[0]: row[1] for row in result.rows}
        assert as_map["0 bits (%)"] + as_map["1 bits (%)"] == pytest.approx(100.0)
        assert as_map["min weight"] < as_map["max weight"]

    def test_convergence_after_fault(self, gw_scale):
        result = experiments.convergence_after_fault(
            scale=gw_scale, ber_values=(0.01,), evaluation_interval=10,
            max_extra_episodes=20, recovery_success_rate=0.5,
        )
        assert set(result.series) == {"agent", "server"}
        assert all(value >= gw_scale.episodes for value in result.series["agent"])


class TestGridworldInference:
    def test_inference_sweep_series(self, gw_scale, policy_cache):
        result = experiments.gridworld_inference_sweep(
            scale=gw_scale, ber_values=(0.0, 0.02), cache=policy_cache, repeats=1,
            variants=("Multi-Trans-M", "Multi-Trans-1"),
        )
        assert set(result.series) == {"Multi-Trans-M", "Multi-Trans-1"}
        assert all(len(v) == 2 for v in result.series.values())

    def test_inference_sweep_unknown_variant(self, gw_scale, policy_cache):
        with pytest.raises(ValueError):
            experiments.gridworld_inference_sweep(
                scale=gw_scale, ber_values=(0.0,), cache=policy_cache, repeats=1,
                variants=("Quad-Trans",),
            )

    def test_evaluate_gridworld_policy(self, gw_scale, tiny_gridworld_policies):
        rate = experiments.evaluate_gridworld_policy(
            tiny_gridworld_policies["consensus"], scale=gw_scale, attempts_per_env=2
        )
        assert 0.0 <= rate <= 1.0


class TestDroneExperiments:
    def test_drone_training_heatmap(self, drone_scale, policy_cache):
        result = experiments.drone_training_heatmap(
            "server", scale=drone_scale, ber_values=(0.0, 1e-1), episode_fractions=(0.5,),
            cache=policy_cache,
        )
        assert result.values.shape == (2, 1)
        assert (result.values >= 0.0).all()

    def test_drone_count_sweep(self, drone_scale, policy_cache):
        result = experiments.drone_count_sweep(
            scale=drone_scale, drone_counts=(2,), ber_values=(0.0, 1e-1), cache=policy_cache
        )
        assert "(2,server)" in result.series and "(2,agent)" in result.series

    def test_communication_interval_study(self, drone_scale, policy_cache):
        result = experiments.communication_interval_study(
            scale=drone_scale, interval_multipliers=(1, 2), cache=policy_cache
        )
        assert set(result.series) == {"no_fault", "agent_fault", "server_fault",
                                      "communication_rounds"}
        rounds = result.series["communication_rounds"]
        assert rounds[0] >= rounds[1]

    def test_datatype_study(self, drone_scale, policy_cache):
        result = experiments.datatype_study(
            scale=drone_scale, ber_values=(0.0, 1e-2), cache=policy_cache, repeats=1
        )
        assert set(result.series) == {"Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)"}

    def test_evaluate_drone_policy(self, drone_scale, tiny_drone_policy):
        distance = experiments.evaluate_drone_policy(
            tiny_drone_policy["policy"], scale=drone_scale, attempts_per_env=1
        )
        assert distance > 0.0


class TestMitigationExperiments:
    def test_training_mitigation_heatmap_gridworld(self, gw_scale, policy_cache):
        result = experiments.training_mitigation_heatmap(
            "gridworld", "server", scale=gw_scale, ber_values=(0.0, 0.02),
            episode_fractions=(0.8,), cache=policy_cache,
        )
        assert result.values.shape == (2, 1)
        assert result.metadata["checkpoint_interval"] == 5

    def test_training_mitigation_invalid_workload(self):
        with pytest.raises(ValueError):
            experiments.training_mitigation_heatmap("cartpole", "server")

    def test_inference_mitigation_sweep_gridworld(self, gw_scale, policy_cache):
        result = experiments.inference_mitigation_sweep(
            "gridworld", scale=gw_scale, ber_values=(0.0, 0.02), cache=policy_cache, repeats=1
        )
        assert set(result.series) == {"no_mitigation", "mitigation"}
        assert result.metadata["max_improvement_factor"] is not None

    def test_inference_mitigation_sweep_drone(self, drone_scale, policy_cache):
        result = experiments.inference_mitigation_sweep(
            "drone", scale=drone_scale, ber_values=(0.0, 1e-2), cache=policy_cache, repeats=1
        )
        assert len(result.series["mitigation"]) == 2


class TestOverhead:
    def test_table_rows(self):
        result = experiments.overhead_comparison()
        assert len(result.rows) == 8  # 2 platforms x 4 schemes
        platforms = {row[0] for row in result.rows}
        assert platforms == {"AirSim drone", "DJI Spark"}

    def test_detection_cheaper_than_tmr(self):
        result = experiments.overhead_comparison()
        loss = {(row[0], row[1]): row[5] for row in result.rows}
        assert loss[("DJI Spark", "tmr")] > loss[("DJI Spark", "detection")]
        assert loss[("AirSim drone", "tmr")] > 0.0
