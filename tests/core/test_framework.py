"""Tests for the FaultCharacterizationFramework facade."""

import pytest

from repro.core import DroneScale, FaultCharacterizationFramework, GridWorldScale


@pytest.fixture()
def framework(policy_cache):
    return FaultCharacterizationFramework(
        gridworld_scale=GridWorldScale.tiny(),
        drone_scale=DroneScale.tiny(),
        cache=policy_cache,
    )


class TestFramework:
    def test_experiment_ids_cover_paper_artifacts(self, framework):
        ids = framework.experiment_ids
        for required in ("fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "table1", "fig4",
                         "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig7a", "fig7b",
                         "fig8a", "fig8b", "fig9", "datatypes"):
            assert required in ids

    def test_unknown_experiment(self, framework):
        with pytest.raises(KeyError):
            framework.run("fig99")

    def test_run_fig9_and_report(self, framework):
        result = framework.run("fig9")
        assert "fig9" in framework.results
        report = framework.report()
        assert "fig9" in report and "DJI Spark" in report
        assert hasattr(result, "rows")

    def test_run_fig3d_uses_cache(self, framework):
        result = framework.run("fig3d")
        labels = [row[0] for row in result.rows]
        assert "0 bits (%)" in labels

    def test_run_all_subset(self, framework):
        results = framework.run_all(["fig9", "fig3d"])
        assert set(results) == {"fig9", "fig3d"}
