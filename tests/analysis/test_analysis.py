"""Tests for observation checks and report rendering."""

import numpy as np

from repro.analysis import (
    check_heatmap_trend,
    check_improvement,
    check_series_order,
    experiment_report,
    render_result,
)
from repro.core.results import HeatmapResult, SweepResult, TableResult


def make_heatmap(values):
    values = np.asarray(values, dtype=np.float64)
    return HeatmapResult(
        title="h", metric="SR", row_axis="BER", column_axis="episode",
        row_labels=[f"r{i}" for i in range(values.shape[0])],
        column_labels=list(range(values.shape[1])),
        values=values,
    )


class TestHeatmapTrend:
    def test_degrading_trend_confirmed(self):
        check = check_heatmap_trend(make_heatmap([[95.0, 96.0], [50.0, 40.0]]))
        assert check.holds

    def test_improving_trend_not_confirmed(self):
        check = check_heatmap_trend(make_heatmap([[50.0, 50.0], [90.0, 95.0]]))
        assert not check.holds

    def test_tolerance_allows_noise(self):
        check = check_heatmap_trend(make_heatmap([[90.0, 90.0], [91.0, 91.0]]), tolerance=0.05)
        assert check.holds

    def test_str_mentions_status(self):
        text = str(check_heatmap_trend(make_heatmap([[1.0], [0.5]])))
        assert "CONFIRMED" in text


class TestSeriesOrder:
    def make_sweep(self):
        return SweepResult(
            title="s", metric="m", x_axis="BER", x_values=[0, 1],
            series={"multi": [90.0, 70.0], "single": [85.0, 40.0]},
        )

    def test_mean_comparison(self):
        assert check_series_order(self.make_sweep(), better="multi", worse="single").holds

    def test_last_point_comparison(self):
        assert check_series_order(self.make_sweep(), better="multi", worse="single", at="last").holds

    def test_violated_order(self):
        assert not check_series_order(self.make_sweep(), better="single", worse="multi").holds

    def test_invalid_at(self):
        import pytest

        with pytest.raises(ValueError):
            check_series_order(self.make_sweep(), better="multi", worse="single", at="median")


class TestImprovement:
    def test_uses_metadata_factor_when_present(self):
        sweep = SweepResult(title="s", metric="m", x_axis="x", x_values=[0],
                            series={"no_mitigation": [10.0], "mitigation": [20.0]},
                            metadata={"max_improvement_factor": 3.3})
        check = check_improvement(sweep, minimum_factor=3.0)
        assert check.holds and "3.30x" in check.detail

    def test_computes_factor_from_series(self):
        sweep = SweepResult(title="s", metric="m", x_axis="x", x_values=[0, 1],
                            series={"no_mitigation": [10.0, 5.0], "mitigation": [10.0, 15.0]})
        assert check_improvement(sweep, minimum_factor=2.5).holds


class TestReport:
    def test_render_result_dispatch(self):
        table = TableResult(title="T", headers=["a"], rows=[[1.0]])
        assert "T" in render_result(table)
        assert render_result("plain") == "plain"

    def test_experiment_report_sections(self):
        table = TableResult(title="T", headers=["a"], rows=[[1.0]])
        checks = [check_heatmap_trend(make_heatmap([[2.0], [1.0]]))]
        report = experiment_report({"table1": table}, observations=checks, title="Repro")
        assert "Repro" in report and "table1" in report and "Observation checks" in report
