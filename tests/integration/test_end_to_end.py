"""End-to-end integration tests across the full FRL-FI stack."""

from repro.core import experiments
from repro.core.config import GridWorldScale
from repro.core.fault_callbacks import make_training_fault
from repro.core.workloads import (
    build_drone_frl_system,
    build_gridworld_frl_system,
    gridworld_environments,
)
from repro.core.experiments.inference_utils import gridworld_agent_with_state, success_rate_over_envs
from repro.faults import FaultInjector
from repro.mitigation import RangeAnomalyDetector, ServerCheckpointCallback


class TestGridworldEndToEnd:
    def test_fault_free_training_reaches_high_success(self, tiny_gridworld_policies):
        # The session-scoped tiny policy (2 agents, 50 episodes) will not match
        # the paper's ~98 % but must clearly beat a random walk.
        assert tiny_gridworld_policies["success_rate"] >= 0.3

    def test_training_with_and_without_server_fault(self, tiny_gridworld_scale):
        clean = build_gridworld_frl_system(tiny_gridworld_scale)
        clean.train(tiny_gridworld_scale.episodes)
        clean_sr = clean.average_success_rate(attempts=5)

        faulty = build_gridworld_frl_system(tiny_gridworld_scale)
        fault = make_training_fault(
            "server", bit_error_rate=0.05,
            injection_episode=tiny_gridworld_scale.episodes - 5,
            datatype="Q(1,2,5)", rng=0,
        )
        faulty.train(tiny_gridworld_scale.episodes, callbacks=[fault])
        faulty_sr = faulty.average_success_rate(attempts=5)
        # A severe late fault cannot help; allow equality for noise.
        assert faulty_sr <= clean_sr + 0.21

    def test_inference_fault_and_anomaly_repair(self, tiny_gridworld_scale, tiny_gridworld_policies):
        policy = tiny_gridworld_policies["consensus"]
        envs = gridworld_environments(tiny_gridworld_scale)
        detector = RangeAnomalyDetector()
        detector.calibrate(policy)
        injector = FaultInjector(datatype="Q(1,2,5)", rng=7)
        corrupted = injector.corrupt_state_dict(policy, 0.02)
        repaired, _count = detector.repair(corrupted)

        def success(state, seed):
            agent = gridworld_agent_with_state(tiny_gridworld_scale, state, rng=seed)
            return success_rate_over_envs(agent, envs, attempts_per_env=4)

        clean_sr = success(policy, 0)
        repaired_sr = success(repaired, 0)
        corrupted_sr = success(corrupted, 0)
        assert 0.0 <= corrupted_sr <= 1.0
        assert repaired_sr >= corrupted_sr - 0.3
        assert clean_sr >= corrupted_sr - 0.1

    def test_checkpoint_protected_training_completes(self, tiny_gridworld_scale):
        system = build_gridworld_frl_system(tiny_gridworld_scale)
        fault = make_training_fault("server", 0.02,
                                    injection_episode=tiny_gridworld_scale.episodes // 2,
                                    datatype="Q(1,2,5)", rng=1)
        protection = ServerCheckpointCallback(agent_count=system.agent_count,
                                              consecutive_episodes=3, checkpoint_interval=2)
        log = system.train(tiny_gridworld_scale.episodes, callbacks=[fault, protection])
        assert log.episodes == tiny_gridworld_scale.episodes
        assert protection.store.has_checkpoint


class TestDroneEndToEnd:
    def test_pretrained_policy_flies(self, tiny_drone_policy):
        assert tiny_drone_policy["flight_distance"] > 0.0
        assert tiny_drone_policy["accuracy"] > 0.2

    def test_fine_tuning_with_agent_fault(self, tiny_drone_scale, tiny_drone_policy):
        system = build_drone_frl_system(tiny_drone_scale, initial_state=tiny_drone_policy["policy"])
        fault = make_training_fault("agent", 1e-2, injection_episode=0,
                                    datatype=tiny_drone_scale.datatype, rng=0)
        log = system.train(tiny_drone_scale.fine_tune_episodes, callbacks=[fault])
        assert log.episodes == tiny_drone_scale.fine_tune_episodes
        assert system.average_flight_distance(attempts=1) >= 0.0


class TestObservationChecks:
    def test_fig9_observations_hold(self):
        result = experiments.overhead_comparison()
        loss = {(row[0], row[1]): row[5] for row in result.rows}
        # The proposed detection scheme is the cheapest protection everywhere,
        # and redundancy hurts the micro-UAV far more than the mini-UAV.
        for platform in ("AirSim drone", "DJI Spark"):
            assert loss[(platform, "dmr")] > loss[(platform, "detection")]
            assert loss[(platform, "tmr")] > loss[(platform, "dmr")]
        assert loss[("DJI Spark", "tmr")] > loss[("AirSim drone", "tmr")]
