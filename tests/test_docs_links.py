"""Internal-link integrity for the repo's markdown docs.

CI's ``docs`` job runs this file on its own; it also rides along in tier-1.
Every relative markdown link in README.md and docs/ must point at a file (or
directory) that exists, and every intra-document anchor must match a heading
— a renamed module or section breaks the build, not the reader.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCUMENTS = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

#: ``[text](target)`` — good enough for the plain markdown used here.
_LINK_PATTERN = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _slugify(heading: str) -> str:
    """GitHub's anchor scheme: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _heading_slugs(markdown: str) -> set:
    return {
        _slugify(match.group(1))
        for match in re.finditer(r"^#+\s+(.*)$", markdown, flags=re.MULTILINE)
    }


def test_docs_exist():
    """The architecture and results docs are acceptance criteria; fail loudly."""
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO_ROOT / "docs" / "RESULTS.md").exists()
    assert len(DOCUMENTS) >= 3


@pytest.mark.parametrize(
    "document", DOCUMENTS, ids=[str(path.relative_to(REPO_ROOT)) for path in DOCUMENTS]
)
def test_internal_links_resolve(document):
    markdown = document.read_text(encoding="utf8")
    broken = []
    for match in _LINK_PATTERN.finditer(markdown):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (document.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{target} (no such file: {resolved})")
                continue
            if anchor:
                if resolved.suffix == ".md" and anchor not in _heading_slugs(
                    resolved.read_text(encoding="utf8")
                ):
                    broken.append(f"{target} (no heading for anchor #{anchor})")
        elif anchor and anchor not in _heading_slugs(markdown):
            broken.append(f"{target} (no heading for anchor #{anchor})")
    assert not broken, (
        f"{document.relative_to(REPO_ROOT)} has broken internal links: {broken}"
    )
