"""Tests for the data-type registry."""

import numpy as np
import pytest

from repro.quant import DATATYPE_REGISTRY, Q1_4_11, resolve_datatype
from repro.quant.fixedpoint import FixedPointFormat


class TestResolveDatatype:
    def test_resolve_by_name(self):
        assert resolve_datatype("int8").bit_width == 8
        assert resolve_datatype("Q(1,4,11)").bit_width == 16

    def test_resolve_aliases(self):
        assert resolve_datatype("q1_7_8").name == "Q(1,7,8)"
        assert resolve_datatype("Q(1, 7, 8)").name == "Q(1,7,8)"

    def test_resolve_format_object(self):
        datatype = resolve_datatype(Q1_4_11)
        assert datatype.bit_width == 16

    def test_resolve_custom_format(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=6)
        assert resolve_datatype(fmt).bit_width == 8

    def test_resolve_datatype_passthrough(self):
        datatype = resolve_datatype("int8")
        assert resolve_datatype(datatype) is datatype

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_datatype("float64")

    def test_registry_contains_paper_formats(self):
        for name in ("Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)", "int8"):
            assert name in DATATYPE_REGISTRY


class TestDataTypeRoundtrip:
    @pytest.mark.parametrize("name", ["int8", "Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)", "Q(1,2,5)"])
    def test_roundtrip_close(self, name):
        datatype = resolve_datatype(name)
        values = np.random.default_rng(0).uniform(-1, 1, size=200)
        restored = datatype.roundtrip(values)
        assert np.abs(restored - values).max() < 0.1

    def test_encode_returns_integer_codes(self):
        datatype = resolve_datatype("Q(1,4,11)")
        codes, _ = datatype.encode(np.array([0.25]))
        assert np.issubdtype(codes.dtype, np.integer)

    def test_int8_context_is_scale(self):
        datatype = resolve_datatype("int8")
        codes, scale = datatype.encode(np.array([1.0, -0.5]))
        restored = datatype.decode(codes, scale)
        assert restored[0] == pytest.approx(1.0, abs=scale)
