"""Tests for fixed-point Q(sign, integer, fraction) codecs."""

import numpy as np
import pytest

from repro.quant import Q1_2_5, Q1_4_11, Q1_7_8, Q1_10_5, FixedPointFormat


class TestFormatProperties:
    def test_total_bits(self):
        assert Q1_4_11.total_bits == 16
        assert Q1_7_8.total_bits == 16
        assert Q1_10_5.total_bits == 16
        assert Q1_2_5.total_bits == 8

    def test_names(self):
        assert Q1_4_11.name == "Q(1,4,11)"
        assert str(Q1_2_5) == "Q(1,2,5)"

    def test_ranges_ordered_by_integer_bits(self):
        assert Q1_4_11.max_value < Q1_7_8.max_value < Q1_10_5.max_value

    def test_scale(self):
        assert Q1_4_11.scale == pytest.approx(2**-11)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=40, fraction_bits=40)
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=-1, fraction_bits=2)


class TestEncodeDecode:
    def test_roundtrip_small_error(self):
        values = np.linspace(-3.0, 3.0, 101)
        error = np.abs(Q1_4_11.roundtrip(values) - values).max()
        assert error <= Q1_4_11.scale / 2 + 1e-12

    def test_zero_exact(self):
        assert Q1_7_8.roundtrip(np.array([0.0]))[0] == 0.0

    def test_saturation_at_extremes(self):
        out = Q1_2_5.roundtrip(np.array([100.0, -100.0]))
        assert out[0] == pytest.approx(Q1_2_5.max_value)
        assert out[1] == pytest.approx(Q1_2_5.min_value)

    def test_encode_dtype(self):
        codes = Q1_4_11.encode(np.array([0.5]))
        assert codes.dtype == np.int16
        assert Q1_2_5.encode(np.array([0.5])).dtype == np.int8

    def test_decode_two_complement_wraparound(self):
        # Raw code 0xFF in an 8-bit format is -1 LSB.
        decoded = Q1_2_5.decode(np.array([0xFF], dtype=np.uint8))
        assert decoded[0] == pytest.approx(-Q1_2_5.scale)

    def test_quantization_error_monotone_in_fraction_bits(self):
        values = np.random.default_rng(0).uniform(-3, 3, size=1000)
        assert Q1_4_11.quantization_error(values) < Q1_10_5.quantization_error(values)

    def test_wide_format_bigger_outliers_under_bit_flip(self):
        # Flipping the top magnitude bit produces a larger value deviation in
        # the wide-range format — the mechanism behind the data-type study.
        value = np.array([0.5])
        for fmt_small, fmt_large in [(Q1_4_11, Q1_10_5)]:
            code_small = fmt_small.encode(value)
            code_large = fmt_large.encode(value)
            flipped_small = fmt_small.decode(code_small ^ (1 << (fmt_small.total_bits - 2)))
            flipped_large = fmt_large.decode(code_large ^ (1 << (fmt_large.total_bits - 2)))
            assert abs(flipped_large[0] - 0.5) > abs(flipped_small[0] - 0.5)

    def test_storage_dtype(self):
        assert Q1_4_11.storage_dtype() == np.dtype(np.uint16)
