"""Tests for the int8 affine codec."""

import numpy as np
import pytest

from repro.quant import Int8AffineCodec, QuantizedTensor


class TestInt8AffineCodec:
    def test_roundtrip_error_bounded_by_half_scale(self):
        codec = Int8AffineCodec()
        values = np.random.default_rng(0).normal(0, 1, size=500)
        quantized = codec.quantize(values)
        error = np.abs(quantized.dequantize() - values).max()
        assert error <= quantized.scale / 2 + 1e-12

    def test_codes_are_int8(self):
        quantized = Int8AffineCodec().quantize(np.array([0.1, -0.7]))
        assert quantized.codes.dtype == np.int8

    def test_scale_maps_max_to_127(self):
        codec = Int8AffineCodec()
        quantized = codec.quantize(np.array([-2.0, 1.0]))
        assert quantized.codes.min() == -127 or quantized.codes.max() == 127

    def test_zero_tensor(self):
        quantized = Int8AffineCodec().quantize(np.zeros(5))
        assert quantized.scale == 1.0
        assert np.all(quantized.codes == 0)

    def test_explicit_scale(self):
        quantized = Int8AffineCodec().quantize(np.array([1.0]), scale=0.5)
        assert quantized.codes[0] == 2

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Int8AffineCodec().quantize(np.array([1.0]), scale=0.0)

    def test_clip_percentile(self):
        codec = Int8AffineCodec(clip_percentile=90.0)
        values = np.concatenate([np.random.default_rng(0).normal(0, 0.1, 99), [100.0]])
        assert codec.compute_scale(values) < 100.0 / 127.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            Int8AffineCodec(clip_percentile=0.0)

    def test_quantization_error_method(self):
        codec = Int8AffineCodec()
        values = np.random.default_rng(1).normal(size=100)
        assert codec.quantization_error(values) > 0.0

    def test_quantized_tensor_properties(self):
        tensor = QuantizedTensor(codes=np.zeros((2, 3), dtype=np.int8), scale=0.1)
        assert tensor.shape == (2, 3)
        assert tensor.bit_width == 8
