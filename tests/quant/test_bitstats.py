"""Tests for bit-level policy statistics (Fig. 3d machinery)."""

import numpy as np
import pytest

from repro.quant import bit_breakdown, weight_range


class TestWeightRange:
    def test_range_over_layers(self):
        state = {"a": np.array([-0.5, 0.2]), "b": np.array([[1.5, -0.1]])}
        assert weight_range(state) == (-0.5, 1.5)

    def test_empty_state_rejected(self):
        with pytest.raises(ValueError):
            weight_range({})


class TestBitBreakdown:
    def test_fractions_sum_to_one(self):
        state = {"w": np.random.default_rng(0).normal(0, 0.3, size=(20, 20))}
        breakdown = bit_breakdown(state, datatype="int8")
        assert breakdown.zero_bit_fraction + breakdown.one_bit_fraction == pytest.approx(1.0)

    def test_zero_weights_are_all_zero_bits(self):
        breakdown = bit_breakdown({"w": np.zeros(100)}, datatype="Q(1,2,5)")
        assert breakdown.one_bit_fraction == 0.0
        assert breakdown.zero_bit_fraction == 1.0

    def test_positive_narrow_policy_mostly_zero_bits(self):
        # The paper's Fig. 3d observation: a narrow-range policy stored in a
        # format with range headroom contains far more 0 bits than 1 bits.
        # With two's-complement storage the effect is strongest for the
        # positive part of the distribution (negative values sign-extend).
        state = {"w": np.random.default_rng(0).uniform(0.0, 0.3, size=1000)}
        breakdown = bit_breakdown(state, datatype="Q(1,4,11)")
        assert breakdown.zero_bit_fraction > 0.65

    def test_zero_centered_policy_more_zero_than_one_magnitude_bits(self):
        # Zero-centered weights still keep the high-order *magnitude* bits
        # clear; overall the zero-bit fraction stays at or above one half.
        state = {"w": np.random.default_rng(0).uniform(-0.3, 0.3, size=1000)}
        breakdown = bit_breakdown(state, datatype="Q(1,4,11)")
        assert breakdown.zero_bit_fraction >= 0.45

    def test_total_bits(self):
        breakdown = bit_breakdown({"w": np.zeros(10)}, datatype="int8")
        assert breakdown.total_bits == 80

    def test_min_max_recorded(self):
        breakdown = bit_breakdown({"w": np.array([-1.0, 2.0])}, datatype="Q(1,4,11)")
        assert breakdown.min_value == -1.0
        assert breakdown.max_value == 2.0

    def test_as_dict_keys(self):
        breakdown = bit_breakdown({"w": np.zeros(4)}, datatype="int8")
        assert set(breakdown.as_dict()) == {
            "zero_bit_fraction", "one_bit_fraction", "min_value", "max_value", "total_bits"
        }

    def test_empty_state_rejected(self):
        with pytest.raises(ValueError):
            bit_breakdown({}, datatype="int8")
