"""Tests for bit-level fault models."""

import numpy as np
import pytest

from repro.faults import StuckAt0, StuckAt1, TransientBitFlip, resolve_fault_model


class TestTransientBitFlip:
    def test_flips_selected_bit(self):
        model = TransientBitFlip()
        out = model.apply(np.array([0], dtype=np.int8), np.array([0]), np.array([1]), 8)
        assert out[0] == 2

    def test_flip_is_involution(self):
        model = TransientBitFlip()
        codes = np.array([37, -12], dtype=np.int8)
        once = model.apply(codes, np.array([1]), np.array([6]), 8)
        twice = model.apply(once, np.array([1]), np.array([6]), 8)
        np.testing.assert_array_equal(twice, codes)


class TestStuckAt:
    def test_stuck_at_0_clears(self):
        out = StuckAt0().apply(np.array([0b1111], dtype=np.int8), np.array([0]), np.array([0]), 8)
        assert out[0] == 0b1110

    def test_stuck_at_1_sets(self):
        out = StuckAt1().apply(np.array([0], dtype=np.int8), np.array([0]), np.array([4]), 8)
        assert out[0] == 16

    def test_stuck_models_idempotent(self):
        for model in (StuckAt0(), StuckAt1()):
            codes = np.array([99], dtype=np.int8)
            once = model.apply(codes, np.array([0]), np.array([3]), 8)
            twice = model.apply(once, np.array([0]), np.array([3]), 8)
            np.testing.assert_array_equal(once, twice)


class TestResolveFaultModel:
    @pytest.mark.parametrize("name,expected", [
        ("transient", TransientBitFlip),
        ("bitflip", TransientBitFlip),
        ("stuck-at-0", StuckAt0),
        ("sa1", StuckAt1),
        ("STUCK_AT_1", StuckAt1),
    ])
    def test_known_names(self, name, expected):
        assert isinstance(resolve_fault_model(name), expected)

    def test_instance_passthrough(self):
        model = StuckAt0()
        assert resolve_fault_model(model) is model

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_fault_model("gamma-ray")

    def test_equality_by_type(self):
        assert TransientBitFlip() == TransientBitFlip()
        assert TransientBitFlip() != StuckAt0()
        assert len({TransientBitFlip(), TransientBitFlip(), StuckAt1()}) == 2
