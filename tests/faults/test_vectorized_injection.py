"""Regression tests: batched bit operations flip exactly the same bits as a
naive per-event Python loop, and the vectorized ``corrupt_array`` pipeline is
bit-for-bit equivalent to a scalar reimplementation under a fixed RNG."""

import numpy as np
import pytest

from repro.faults import FaultInjector
from repro.faults.ber import BitErrorRate
from repro.quant.datatypes import resolve_datatype
from repro.utils.bitops import (
    count_ones,
    flip_bits,
    random_bit_positions,
    set_bits,
    unsigned_dtype_for,
)


def loop_flip_bits(codes, elements, positions, bit_width):
    """The pre-vectorization reference: one read-modify-write per event."""
    unsigned = unsigned_dtype_for(bit_width)
    flat = np.ascontiguousarray(codes).reshape(-1).astype(unsigned, copy=True)
    for element, position in zip(elements, positions):
        flat[element] = flat[element] ^ unsigned.type(1 << int(position))
    return flat.reshape(np.asarray(codes).shape).astype(codes.dtype, copy=False)


def loop_set_bits(codes, elements, positions, bit_width, value):
    unsigned = unsigned_dtype_for(bit_width)
    flat = np.ascontiguousarray(codes).reshape(-1).astype(unsigned, copy=True)
    for element, position in zip(elements, positions):
        mask = unsigned.type(1 << int(position))
        if value == 1:
            flat[element] = flat[element] | mask
        else:
            flat[element] = flat[element] & unsigned.type(~mask)
    return flat.reshape(np.asarray(codes).shape).astype(codes.dtype, copy=False)


@pytest.mark.parametrize("bit_width", [8, 16])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_flip_bits_matches_loop(bit_width, seed):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 400))
    codes = rng.integers(0, 2**bit_width, size=size).astype(unsigned_dtype_for(bit_width))
    # Deliberately oversample so many elements receive multiple (cancelling)
    # events — the hard case for batched accumulation.
    events = int(rng.integers(0, 4 * size))
    elements = rng.integers(0, size, size=events)
    positions = random_bit_positions(rng, events, bit_width)
    np.testing.assert_array_equal(
        flip_bits(codes, elements, positions, bit_width),
        loop_flip_bits(codes, elements, positions, bit_width),
    )


@pytest.mark.parametrize("value", [0, 1])
def test_set_bits_matches_loop(value):
    rng = np.random.default_rng(7)
    codes = rng.integers(-128, 128, size=300).astype(np.int8)
    events = 900
    elements = rng.integers(0, codes.size, size=events)
    positions = random_bit_positions(rng, events, 8)
    np.testing.assert_array_equal(
        set_bits(codes, elements, positions, 8, value=value),
        loop_set_bits(codes, elements, positions, 8, value=value),
    )


def loop_corrupt_array(values, bit_error_rate, datatype_name, rng):
    """Scalar reimplementation of the injector's transient-fault pipeline.

    Draws from ``rng`` in exactly the same order as
    :meth:`FaultInjector.corrupt_array` so both see identical fault sets.
    """
    datatype = resolve_datatype(datatype_name)
    values = np.asarray(values, dtype=np.float64)
    ber = BitErrorRate(float(bit_error_rate))
    codes, context = datatype.encode(values)
    total_bits = values.size * datatype.bit_width
    fault_count = ber.fault_count(total_bits, rng)
    if fault_count == 0:
        return values.copy()
    elements = rng.integers(0, values.size, size=fault_count)
    positions = random_bit_positions(rng, fault_count, datatype.bit_width)
    corrupted_codes = loop_flip_bits(codes, elements, positions, datatype.bit_width)
    return datatype.decode(corrupted_codes, context).reshape(values.shape)


@pytest.mark.parametrize("datatype", ["int8", "Q(1,2,5)", "Q(1,7,8)"])
@pytest.mark.parametrize("ber", [0.0, 0.01, 0.1])
def test_corrupt_array_matches_scalar_pipeline(datatype, ber):
    rng = np.random.default_rng(1234)
    values = rng.normal(scale=0.8, size=257)

    injector = FaultInjector(datatype=datatype, model="transient",
                             rng=np.random.default_rng(42))
    vectorized = injector.corrupt_array(values, ber)
    reference = loop_corrupt_array(values, ber, datatype, np.random.default_rng(42))
    np.testing.assert_array_equal(vectorized, reference)


def test_corrupt_array_flip_count_consistent():
    """The recorded flip count matches the observed storage-bit difference."""
    rng = np.random.default_rng(5)
    values = rng.normal(size=400)
    injector = FaultInjector(datatype="Q(1,7,8)", model="transient",
                             rng=np.random.default_rng(11))
    datatype = injector.datatype
    clean_codes, _ = datatype.encode(np.asarray(values, dtype=np.float64))
    corrupted = injector.corrupt_array(values, 0.02)
    corrupted_codes, _ = datatype.encode(corrupted)
    record = injector.history[-1]
    xor = np.bitwise_xor(
        clean_codes.astype(np.int64) & 0xFFFF, corrupted_codes.astype(np.int64) & 0xFFFF
    )
    observed = count_ones(xor, datatype.bit_width)
    # Parity cancellation can only make the observed count smaller, and both
    # counts share parity elementwise; re-encoding is exact for fixed point.
    assert observed <= record.flipped_bits
    assert (record.flipped_bits - observed) % 2 == 0
