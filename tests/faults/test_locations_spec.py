"""Tests for fault locations, targets and declarative fault specs."""

import pytest

from repro.faults import (
    BitErrorRate,
    FaultLocation,
    FaultSpec,
    FaultTarget,
    InjectionMode,
    TransientScope,
    effective_class,
)
from repro.faults.spec import baseline_spec


class TestFaultLocation:
    def test_parse_aliases(self):
        assert FaultLocation.parse("uplink") == FaultLocation.AGENT_TO_SERVER
        assert FaultLocation.parse("server-to-agent") == FaultLocation.SERVER_TO_AGENT
        assert FaultLocation.parse(FaultLocation.AGENT) == FaultLocation.AGENT

    def test_parse_unknown(self):
        with pytest.raises(KeyError):
            FaultLocation.parse("moon")

    def test_effective_class_grouping(self):
        assert effective_class(FaultLocation.AGENT) == "agent"
        assert effective_class(FaultLocation.AGENT_TO_SERVER) == "agent"
        assert effective_class(FaultLocation.SERVER) == "server"
        assert effective_class(FaultLocation.SERVER_TO_AGENT) == "server"


class TestFaultTarget:
    def test_parse_aliases(self):
        assert FaultTarget.parse("feature_maps") == FaultTarget.ACTIVATIONS
        assert FaultTarget.parse("weight") == FaultTarget.WEIGHTS
        assert FaultTarget.parse("communication") == FaultTarget.COMMUNICATED_PARAMETERS

    def test_parse_unknown(self):
        with pytest.raises(KeyError):
            FaultTarget.parse("gradients")


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec()
        assert spec.location == FaultLocation.SERVER
        assert spec.target == FaultTarget.WEIGHTS
        assert spec.model.name == "transient"
        assert not spec.is_enabled

    def test_string_coercion(self):
        spec = FaultSpec(location="agent", target="activations", bit_error_rate=0.01,
                         model="stuck-at-1", mode="static", scope="single_step")
        assert spec.location == FaultLocation.AGENT
        assert spec.target == FaultTarget.ACTIVATIONS
        assert isinstance(spec.bit_error_rate, BitErrorRate)
        assert spec.mode == InjectionMode.STATIC
        assert spec.scope == TransientScope.SINGLE_STEP
        assert spec.is_enabled

    def test_analysis_class(self):
        assert FaultSpec(location="uplink").analysis_class == "agent"
        assert FaultSpec(location="downlink").analysis_class == "server"

    def test_with_ber_copies(self):
        spec = FaultSpec(location="agent", injection_episode=10)
        updated = spec.with_ber(0.05)
        assert updated.bit_error_rate.rate == 0.05
        assert updated.injection_episode == 10
        assert spec.bit_error_rate.rate == 0.0

    def test_with_episode_copies(self):
        spec = FaultSpec(bit_error_rate=0.01)
        assert spec.with_episode(7).injection_episode == 7
        assert spec.with_episode(None).injection_episode is None

    def test_negative_episode_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(injection_episode=-1)

    def test_describe_mentions_location_and_rate(self):
        text = FaultSpec(location="server", bit_error_rate=0.01, injection_episode=3).describe()
        assert "server" in text and "0.01" in text and "episode 3" in text

    def test_baseline_spec_disabled(self):
        assert not baseline_spec().is_enabled
