"""Tests for activation fault hooks."""

import numpy as np
import pytest

from repro.faults import ActivationFaultHook, FaultInjector, attach_activation_faults
from repro.faults.hooks import detach_activation_faults
from repro.nn import Linear, ReLU, Sequential


def small_network():
    return Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))


class TestActivationFaultHook:
    def test_disabled_hook_is_transparent(self):
        network = small_network()
        x = np.random.default_rng(0).normal(size=(3, 4))
        clean = network.forward(x)
        hook = ActivationFaultHook(network.modules[0], FaultInjector(rng=0), 0.05, enabled=False)
        network.modules[0] = hook
        np.testing.assert_array_equal(network.forward(x), clean)
        assert hook.injection_count == 0

    def test_zero_ber_is_transparent(self):
        network = small_network()
        x = np.random.default_rng(0).normal(size=(3, 4))
        clean = network.forward(x)
        attach_activation_faults(network, FaultInjector(rng=0), 0.0)
        np.testing.assert_array_equal(network.forward(x), clean)

    def test_faulty_hook_corrupts_output(self):
        network = small_network()
        x = np.random.default_rng(0).normal(size=(8, 4))
        clean = network.forward(x)
        hooks = attach_activation_faults(network, FaultInjector(datatype="Q(1,7,8)", rng=0), 0.05)
        corrupted = network.forward(x)
        assert not np.allclose(corrupted, clean)
        assert sum(h.injection_count for h in hooks) > 0

    def test_hook_preserves_parameters_and_backward(self):
        network = small_network()
        parameter_count_before = len(network.parameters())
        attach_activation_faults(network, FaultInjector(rng=0), 0.01)
        assert len(network.parameters()) == parameter_count_before
        x = np.random.default_rng(1).normal(size=(2, 4))
        out = network.forward(x)
        grad = network.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_selected_layers_only(self):
        network = small_network()
        hooks = attach_activation_faults(network, FaultInjector(rng=0), 0.01, layer_indices=[2])
        assert len(hooks) == 1
        assert isinstance(network.modules[2], ActivationFaultHook)
        assert not isinstance(network.modules[0], ActivationFaultHook)

    def test_invalid_layer_index(self):
        with pytest.raises(IndexError):
            attach_activation_faults(small_network(), FaultInjector(rng=0), 0.01, layer_indices=[9])

    def test_detach_restores_original_modules(self):
        network = small_network()
        x = np.random.default_rng(0).normal(size=(3, 4))
        clean = network.forward(x)
        attach_activation_faults(network, FaultInjector(rng=0), 0.1)
        removed = detach_activation_faults(network)
        assert removed == 3
        np.testing.assert_array_equal(network.forward(x), clean)

    def test_named_parameters_preserved(self):
        network = small_network()
        names_before = [name for name, _ in network.named_parameters()]
        attach_activation_faults(network, FaultInjector(rng=0), 0.01)
        names_after = [name for name, _ in network.named_parameters()]
        assert names_before == names_after
