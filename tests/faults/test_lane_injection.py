"""``corrupt_lanes``: one stacked bit pass, bitwise equal to N serial calls.

The lane-batched entry point must reproduce, for every lane, exactly what
``injectors[i].corrupt_array(values[i], ...)`` would have produced — same RNG
draws on each injector's own stream, same history records, same bytes — while
applying all lanes' flips through a single ``FaultModel.apply`` call.
"""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, corrupt_lanes


def _paired_injectors(count, datatype="int8", model=None, seed=1234):
    """Two injector lists with identical per-lane streams (serial vs batched)."""
    streams = np.random.SeedSequence(seed).spawn(count)
    make = lambda s: FaultInjector(  # noqa: E731
        datatype, model=model, rng=np.random.default_rng(s)
    )
    return [make(s) for s in streams], [make(s) for s in streams]


class TestLaneIdentity:
    @pytest.mark.parametrize("datatype", ["int8", "q1_7_8"])
    @pytest.mark.parametrize("ber", [0.0, 1e-4, 1e-2, 0.3])
    @pytest.mark.parametrize("lanes", [1, 3, 7])
    def test_bitwise_identity_with_serial_loop(self, datatype, ber, lanes):
        serial_inj, batch_inj = _paired_injectors(lanes, datatype)
        values = np.random.default_rng(5).normal(size=(lanes, 4, 9))
        serial = np.stack(
            [inj.corrupt_array(values[i], ber) for i, inj in enumerate(serial_inj)]
        )
        batched = corrupt_lanes(batch_inj, values, ber)
        assert serial.tobytes() == batched.tobytes()

    def test_histories_and_streams_advance_identically(self):
        serial_inj, batch_inj = _paired_injectors(4)
        values = np.random.default_rng(8).normal(size=(4, 6, 6))
        for i, inj in enumerate(serial_inj):
            inj.corrupt_array(values[i], 5e-3)
        corrupt_lanes(batch_inj, values, 5e-3)
        for a, b in zip(serial_inj, batch_inj):
            assert [r.__dict__ for r in a.history] == [r.__dict__ for r in b.history]
            # The generators are in the same state: future draws coincide.
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_stuck_at_models_stack_too(self):
        serial_inj, batch_inj = _paired_injectors(3, model="sa1", seed=9)
        values = np.random.default_rng(9).normal(size=(3, 6))
        serial = np.stack(
            [inj.corrupt_array(values[i], 0.1) for i, inj in enumerate(serial_inj)]
        )
        assert corrupt_lanes(batch_inj, values, 0.1).tobytes() == serial.tobytes()

    def test_heterogeneous_datatypes_fall_back_serially(self):
        streams = np.random.SeedSequence(77).spawn(2)
        si = [
            FaultInjector("int8", rng=np.random.default_rng(streams[0])),
            FaultInjector("q1_7_8", rng=np.random.default_rng(streams[1])),
        ]
        bi = [
            FaultInjector("int8", rng=np.random.default_rng(streams[0])),
            FaultInjector("q1_7_8", rng=np.random.default_rng(streams[1])),
        ]
        values = np.random.default_rng(7).normal(size=(2, 5, 5))
        serial = np.stack(
            [inj.corrupt_array(values[i], 0.05) for i, inj in enumerate(si)]
        )
        assert corrupt_lanes(bi, values, 0.05).tobytes() == serial.tobytes()

    def test_zero_fault_lanes_are_plain_copies(self):
        _, injectors = _paired_injectors(2)
        values = np.random.default_rng(3).normal(size=(2, 4))
        out = corrupt_lanes(injectors, values, 0.0)
        assert out.tobytes() == values.tobytes()
        assert out is not values
        assert all(record.flipped_bits == 0 for inj in injectors for record in inj.history)

    def test_lane_count_mismatch_rejected(self):
        _, injectors = _paired_injectors(3)
        with pytest.raises(ValueError, match="lane"):
            corrupt_lanes(injectors, np.zeros((2, 4)), 0.1)
