"""Tests for the fault injector."""

import numpy as np

from repro.faults import BitErrorRate, FaultInjector
from repro.nn import build_gridworld_q_network


class TestCorruptArray:
    def test_zero_ber_is_identity(self):
        injector = FaultInjector(rng=0)
        values = np.random.default_rng(0).normal(size=100)
        np.testing.assert_array_equal(injector.corrupt_array(values, 0.0), values)

    def test_does_not_mutate_input(self):
        injector = FaultInjector(rng=0)
        values = np.ones(50)
        injector.corrupt_array(values, 0.5)
        np.testing.assert_array_equal(values, np.ones(50))

    def test_corruption_changes_values(self):
        injector = FaultInjector(rng=0)
        values = np.random.default_rng(1).uniform(-1, 1, size=200)
        corrupted = injector.corrupt_array(values, 0.05)
        assert not np.allclose(corrupted, values)

    def test_higher_ber_more_corruption(self):
        values = np.random.default_rng(2).uniform(-1, 1, size=500)
        low = FaultInjector(rng=0).corrupt_array(values, 0.001)
        high = FaultInjector(rng=0).corrupt_array(values, 0.1)
        assert (high != values).sum() > (low != values).sum()

    def test_history_recorded(self):
        injector = FaultInjector(rng=0)
        injector.corrupt_array(np.ones(10), 0.05)
        assert len(injector.history) == 1
        record = injector.history[0]
        assert record.total_bits == 10 * 8
        assert record.datatype == "int8"

    def test_history_counts_flips(self):
        injector = FaultInjector(rng=0)
        injector.corrupt_array(np.ones(1000), BitErrorRate(0.01))
        assert injector.total_injected_bits() == round(1000 * 8 * 0.01)

    def test_empty_array(self):
        injector = FaultInjector(rng=0)
        out = injector.corrupt_array(np.zeros(0), 0.5)
        assert out.size == 0

    def test_fixed_point_datatype_outliers(self):
        # High-order bit flips in a wide fixed-point format create outliers
        # well beyond the original value range.
        injector = FaultInjector(datatype="Q(1,10,5)", rng=3)
        values = np.random.default_rng(3).uniform(-1, 1, size=500)
        corrupted = injector.corrupt_array(values, 0.02)
        assert np.abs(corrupted).max() > 10.0

    def test_stuck_at_0_only_clears_bits(self):
        injector = FaultInjector(datatype="Q(1,2,5)", model="stuck-at-0", rng=0)
        values = np.full(100, 3.0)  # near the top of the Q(1,2,5) range
        corrupted = injector.corrupt_array(values, 0.2)
        assert (corrupted <= values + 1e-12).all()

    def test_model_override_per_call(self):
        injector = FaultInjector(model="transient", rng=0)
        out = injector.corrupt_array(np.zeros(100), 0.1, model="stuck-at-0")
        np.testing.assert_array_equal(out, np.zeros(100))


class TestCorruptStateDict:
    def test_preserves_shapes_and_keys(self):
        injector = FaultInjector(rng=0)
        network = build_gridworld_q_network(rng=0)
        state = network.state_dict()
        corrupted = injector.corrupt_state_dict(state, 0.01)
        assert set(corrupted) == set(state)
        for name in state:
            assert corrupted[name].shape == state[name].shape

    def test_zero_ber_identity(self):
        injector = FaultInjector(rng=0)
        state = {"w": np.random.default_rng(0).normal(size=(5, 5))}
        corrupted = injector.corrupt_state_dict(state, 0.0)
        np.testing.assert_array_equal(corrupted["w"], state["w"])

    def test_empty_state(self):
        assert FaultInjector(rng=0).corrupt_state_dict({}, 0.5) == {}

    def test_treats_parameters_as_one_memory(self):
        injector = FaultInjector(rng=0)
        state = {"a": np.zeros(10), "b": np.zeros(10)}
        injector.corrupt_state_dict(state, 0.05)
        assert injector.history[-1].total_bits == 20 * 8


class TestSingleBit:
    def test_exactly_one_element_changes(self):
        from repro.quant import resolve_datatype

        injector = FaultInjector(datatype="Q(1,2,5)", rng=1)
        values = np.random.default_rng(1).uniform(-1, 1, size=64)
        corrupted = injector.corrupt_single_bit(values)
        # Compare against the clean quantized representation: apart from the
        # flipped element the output is exactly the quantized storage values.
        clean_storage = resolve_datatype("Q(1,2,5)").roundtrip(values)
        changed = (np.abs(corrupted - clean_storage) > 1e-12).sum()
        assert changed == 1

    def test_history_records_one_bit(self):
        injector = FaultInjector(rng=0)
        injector.corrupt_single_bit(np.ones(16))
        assert injector.history[-1].flipped_bits == 1

    def test_clear_history(self):
        injector = FaultInjector(rng=0)
        injector.corrupt_array(np.ones(4), 0.1)
        injector.clear_history()
        assert injector.history == []
