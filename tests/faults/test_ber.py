"""Tests for bit-error-rate handling."""

import pytest

from repro.faults import BitErrorRate
from repro.faults.ber import sweep_from_percent


class TestBitErrorRate:
    def test_from_percent(self):
        assert BitErrorRate.from_percent(2.0).rate == pytest.approx(0.02)

    def test_percent_property(self):
        assert BitErrorRate(0.001).percent == pytest.approx(0.1)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            BitErrorRate(-0.1)
        with pytest.raises(ValueError):
            BitErrorRate(1.5)

    def test_expected_faults(self):
        assert BitErrorRate(0.01).expected_faults(10_000) == pytest.approx(100)

    def test_fault_count_zero_rate(self, rng):
        assert BitErrorRate(0.0).fault_count(1_000_000, rng) == 0

    def test_fault_count_large_rate_deterministic(self, rng):
        assert BitErrorRate(0.02).fault_count(2600 * 8, rng) == round(2600 * 8 * 0.02)

    def test_label_matches_paper_style(self):
        # GridWorld heatmap row labels look like "52 (2.0%)".
        label = BitErrorRate(0.02).label(2600)
        assert label == "52 (2.0%)"

    def test_str(self):
        assert str(BitErrorRate(0.001)) == "0.001"

    def test_sweep_from_percent(self):
        sweep = sweep_from_percent([0.1, 1.0])
        assert [b.rate for b in sweep] == pytest.approx([0.001, 0.01])
