"""Tests for the GridWorld Q-learning agent."""

import numpy as np
import pytest

from repro.envs import GridWorldEnv
from repro.envs.gridworld import generate_layout
from repro.rl import ConstantEpsilon, QLearningAgent, QLearningConfig
from repro.rl.rollout import evaluate_success_rate


def make_agent(**overrides):
    config = QLearningConfig(hidden_sizes=(16, 16), epsilon_decay_episodes=30, **overrides)
    return QLearningAgent(config, rng=0)


class TestConfig:
    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            QLearningConfig(discount=1.5)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            QLearningConfig(batch_size=0)


class TestActionSelection:
    def test_greedy_matches_argmax(self):
        agent = make_agent()
        observation = np.zeros(6)
        action = agent.select_action(observation, explore=False)
        assert action == int(np.argmax(agent.q_values(observation)))

    def test_exploration_rate_follows_schedule(self):
        agent = make_agent()
        agent.begin_episode(0)
        early = agent.exploration_rate
        agent.begin_episode(29)
        late = agent.exploration_rate
        assert early > late

    def test_full_exploration_random(self):
        agent = QLearningAgent(QLearningConfig(hidden_sizes=(8,)), epsilon_schedule=ConstantEpsilon(1.0), rng=0)
        agent.begin_episode(0)
        actions = {agent.select_action(np.zeros(6), explore=True) for _ in range(100)}
        assert len(actions) == 4

    def test_state_dict_roundtrip(self):
        agent = make_agent()
        other = QLearningAgent(QLearningConfig(hidden_sizes=(16, 16)), rng=9)
        other.load_state_dict(agent.state_dict())
        observation = np.array([0.0, -1.0, 1.0, 0.0, 1.0, -1.0])
        np.testing.assert_allclose(other.q_values(observation), agent.q_values(observation))


class TestLearning:
    def test_run_episode_returns_stats(self):
        env = GridWorldEnv(generate_layout(seed=11), max_steps=40)
        agent = make_agent()
        agent.begin_episode(0)
        stats = agent.run_episode(env, train=True)
        assert stats.steps > 0
        assert isinstance(stats.total_reward, float)

    def test_training_improves_success_rate(self):
        env = GridWorldEnv(generate_layout(seed=12), max_steps=60)
        agent = make_agent()
        before = evaluate_success_rate(agent, env, attempts=10, epsilon=0.0, rng=0)
        for episode in range(120):
            agent.begin_episode(episode)
            agent.run_episode(env, train=True)
        after = evaluate_success_rate(agent, env, attempts=10, epsilon=0.0, rng=0)
        assert after >= before
        assert after >= 0.8

    def test_no_update_before_warmup(self):
        agent = make_agent(warmup_transitions=10_000)
        env = GridWorldEnv(generate_layout(seed=13), max_steps=10)
        state_before = {k: v.copy() for k, v in agent.state_dict().items()}
        agent.begin_episode(0)
        agent.run_episode(env, train=True)
        for name, value in agent.state_dict().items():
            np.testing.assert_array_equal(value, state_before[name])

    def test_eval_episode_does_not_learn(self):
        agent = make_agent()
        env = GridWorldEnv(generate_layout(seed=14), max_steps=10)
        agent.begin_episode(0)
        agent.run_episode(env, train=False)
        assert len(agent.replay) == 0
