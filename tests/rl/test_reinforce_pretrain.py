"""Tests for the REINFORCE agent and the offline pre-training pipeline."""

import numpy as np
import pytest

from repro.envs import DroneNavConfig, make_dronenav_suite
from repro.rl import ReinforceAgent, ReinforceConfig
from repro.rl.pretrain import (
    DroneExpertPilot,
    PretrainConfig,
    behaviour_clone,
    collect_expert_dataset,
    pretrain_drone_agent,
)
from repro.rl.reinforce import discounted_returns


def tiny_drone_envs(count=1):
    config = DroneNavConfig(image_width=16, image_height=8, max_steps=60)
    return make_dronenav_suite(drone_count=count, config=config, length=250.0)


def tiny_agent(rng=0, **overrides):
    config = ReinforceConfig(input_shape=(3, 8, 16), conv_channels=(2, 4, 4), fc_hidden=16,
                             **overrides)
    return ReinforceAgent(config, rng=rng)


class TestDiscountedReturns:
    def test_no_discount_is_suffix_sum(self):
        returns = discounted_returns([1.0, 2.0, 3.0], discount=1.0)
        np.testing.assert_allclose(returns, [6.0, 5.0, 3.0])

    def test_discounting(self):
        returns = discounted_returns([0.0, 0.0, 1.0], discount=0.5)
        np.testing.assert_allclose(returns, [0.25, 0.5, 1.0])

    def test_empty(self):
        assert discounted_returns([], 0.9).size == 0


class TestReinforceAgent:
    def test_action_probabilities_valid(self):
        agent = tiny_agent()
        probabilities = agent.action_probabilities(np.zeros((3, 8, 16)))
        assert probabilities.shape == (25,)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_sampled_actions_in_range(self):
        agent = tiny_agent()
        actions = {agent.select_action(np.zeros((3, 8, 16)), explore=True) for _ in range(50)}
        assert all(0 <= a < 25 for a in actions)

    def test_greedy_action_is_argmax(self):
        agent = tiny_agent(greedy_epsilon=0.0)
        observation = np.random.default_rng(0).random((3, 8, 16))
        action = agent.select_action(observation, explore=False)
        assert action == int(np.argmax(agent.action_probabilities(observation)))

    def test_run_episode_updates_policy(self):
        agent = tiny_agent()
        env = tiny_drone_envs()[0]
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        agent.run_episode(env, train=True)
        changed = any(not np.array_equal(agent.state_dict()[k], before[k]) for k in before)
        assert changed

    def test_eval_episode_does_not_update(self):
        agent = tiny_agent()
        env = tiny_drone_envs()[0]
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        agent.run_episode(env, train=False)
        for name in before:
            np.testing.assert_array_equal(agent.state_dict()[name], before[name])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ReinforceConfig(discount=0.0)
        with pytest.raises(ValueError):
            ReinforceConfig(exploration_temperature=0.0)


class TestExpertPilot:
    def test_action_in_range(self):
        env = tiny_drone_envs()[0]
        expert = DroneExpertPilot()
        observation = env.reset()
        assert 0 <= expert.select_action(observation) < 25

    def test_expert_survives_longer_than_random(self):
        env = tiny_drone_envs()[0]
        expert = DroneExpertPilot()
        rng = np.random.default_rng(0)

        def rollout(policy):
            observation = env.reset()
            done = False
            while not done:
                result = env.step(policy(observation))
                observation = result.observation
                done = result.done
            return env.flight_distance

        expert_distance = rollout(expert.select_action)
        random_distance = np.mean([rollout(lambda _o: int(rng.integers(0, 25))) for _ in range(3)])
        assert expert_distance >= random_distance

    def test_depth_profile_shape_validation(self):
        with pytest.raises(ValueError):
            DroneExpertPilot().depth_profile(np.zeros((8, 16)))

    def test_invalid_caution(self):
        with pytest.raises(ValueError):
            DroneExpertPilot(caution=0.0)


class TestBehaviourCloning:
    def test_collect_expert_dataset_shapes(self):
        envs = tiny_drone_envs()
        config = PretrainConfig(collection_episodes=1, max_samples=50, epochs=1,
                                dagger_iterations=0)
        observations, actions = collect_expert_dataset(envs, config, rng=0)
        assert observations.shape[0] == actions.shape[0] <= 50
        assert observations.shape[1:] == (3, 8, 16)

    def test_behaviour_clone_improves_accuracy(self):
        envs = tiny_drone_envs()
        agent = tiny_agent(learning_rate=5e-3)
        config = PretrainConfig(collection_episodes=2, max_samples=200, epochs=10,
                                batch_size=32, dagger_iterations=0)
        accuracy = behaviour_clone(agent, envs, config, rng=0)
        assert accuracy > 1.0 / 25.0  # clearly better than chance

    def test_pretrain_with_dagger_and_reinforce(self):
        envs = tiny_drone_envs()
        agent = tiny_agent()
        config = PretrainConfig(collection_episodes=1, max_samples=100, epochs=2,
                                batch_size=32, dagger_iterations=1, dagger_episodes=1)
        accuracy = pretrain_drone_agent(agent, envs, config, reinforce_episodes=1, rng=0)
        assert 0.0 <= accuracy <= 1.0

    def test_invalid_pretrain_config(self):
        with pytest.raises(ValueError):
            PretrainConfig(epochs=0)
        with pytest.raises(ValueError):
            PretrainConfig(exploration_noise=1.0)
