"""Tests for rollout evaluation helpers and policy statistics."""

import numpy as np
import pytest

from repro.envs import GridWorldEnv
from repro.envs.gridworld import generate_layout
from repro.nn import build_gridworld_q_network
from repro.rl import QLearningAgent, QLearningConfig
from repro.rl.policy import consensus_policy_std, mlp_from_state_dict, policy_action_distribution
from repro.rl.rollout import evaluate_flight_distance, evaluate_success_rate, greedy_episode


def make_env(seed=21):
    return GridWorldEnv(generate_layout(seed=seed), max_steps=30)


def make_agent():
    return QLearningAgent(QLearningConfig(hidden_sizes=(8, 8)), rng=0)


class TestRollout:
    def test_greedy_episode_stats(self):
        stats = greedy_episode(make_agent(), make_env())
        assert stats.steps > 0
        assert stats.success in (True, False)

    def test_greedy_episode_max_steps_cap(self):
        stats = greedy_episode(make_agent(), make_env(), max_steps=3)
        assert stats.steps <= make_env().max_steps

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            greedy_episode(make_agent(), make_env(), epsilon=1.5)

    def test_success_rate_bounds(self):
        rate = evaluate_success_rate(make_agent(), make_env(), attempts=5, rng=0)
        assert 0.0 <= rate <= 1.0

    def test_success_rate_attempts_validation(self):
        with pytest.raises(ValueError):
            evaluate_success_rate(make_agent(), make_env(), attempts=0)

    def test_success_rate_deterministic_with_zero_epsilon(self):
        agent = make_agent()
        env = make_env()
        a = evaluate_success_rate(agent, env, attempts=4, epsilon=0.0, rng=0)
        b = evaluate_success_rate(agent, env, attempts=4, epsilon=0.0, rng=1)
        assert a == b

    def test_flight_distance_zero_for_gridworld(self):
        # GridWorld episodes carry no flight distance; the helper returns 0.
        assert evaluate_flight_distance(make_agent(), make_env(), attempts=2) == 0.0


class TestPolicyStatistics:
    def test_mlp_from_state_dict_reproduces_outputs(self):
        network = build_gridworld_q_network(observation_size=6, hidden_sizes=(8, 8), rng=0)
        rebuilt = mlp_from_state_dict(network.state_dict())
        x = np.random.default_rng(0).choice([-1.0, 0.0, 1.0], size=(10, 6))
        np.testing.assert_allclose(rebuilt.forward(x), network.forward(x))

    def test_mlp_from_state_dict_rejects_garbage(self):
        with pytest.raises(KeyError):
            mlp_from_state_dict({"weights": np.zeros((2, 2))})
        with pytest.raises(ValueError):
            mlp_from_state_dict({})

    def test_policy_action_distribution_shape(self):
        network = build_gridworld_q_network(observation_size=4, hidden_sizes=(8,), rng=0)
        distribution = policy_action_distribution(network)
        assert distribution.shape == (81, 4)
        np.testing.assert_allclose(distribution.sum(axis=1), np.ones(81))

    def test_consensus_policy_std_range(self):
        network = build_gridworld_q_network(observation_size=6, hidden_sizes=(8, 8), rng=0)
        std = consensus_policy_std(network.state_dict())
        assert 0.0 <= std <= 0.5

    def test_sharper_policy_has_larger_std(self):
        network = build_gridworld_q_network(observation_size=6, hidden_sizes=(8, 8), rng=0)
        state = network.state_dict()
        sharper = {name: value * 10.0 for name, value in state.items()}
        assert consensus_policy_std(sharper) > consensus_policy_std(state)
