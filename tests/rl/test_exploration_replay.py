"""Tests for exploration schedules and the replay buffer."""

import numpy as np
import pytest

from repro.rl import ConstantEpsilon, LinearEpsilonDecay, ReplayBuffer, Transition


class TestSchedules:
    def test_constant(self):
        schedule = ConstantEpsilon(0.3)
        assert schedule(0) == schedule(1000) == 0.3

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            ConstantEpsilon(1.5)

    def test_linear_decay_endpoints(self):
        schedule = LinearEpsilonDecay(start=1.0, end=0.1, decay_episodes=100)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(500) == pytest.approx(0.1)

    def test_linear_decay_midpoint(self):
        schedule = LinearEpsilonDecay(start=1.0, end=0.0, decay_episodes=10)
        assert schedule(5) == pytest.approx(0.5)

    def test_linear_decay_monotone(self):
        schedule = LinearEpsilonDecay(start=0.9, end=0.05, decay_episodes=50)
        values = [schedule(e) for e in range(60)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_linear_invalid(self):
        with pytest.raises(ValueError):
            LinearEpsilonDecay(start=0.1, end=0.5)
        with pytest.raises(ValueError):
            LinearEpsilonDecay(decay_episodes=0)
        with pytest.raises(ValueError):
            LinearEpsilonDecay()(-1)


class TestReplayBuffer:
    def make_buffer(self, capacity=50):
        return ReplayBuffer(capacity=capacity, rng=0)

    def test_push_and_len(self):
        buffer = self.make_buffer()
        buffer.add(np.zeros(4), 1, 0.5, np.ones(4), False)
        assert len(buffer) == 1

    def test_capacity_eviction(self):
        buffer = self.make_buffer(capacity=5)
        for index in range(10):
            buffer.add(np.full(2, index), 0, 0.0, np.zeros(2), False)
        assert len(buffer) == 5
        observations, *_ = buffer.sample_arrays(5)
        assert observations.min() >= 5  # the oldest transitions were evicted

    def test_sample_size_validation(self):
        buffer = self.make_buffer()
        buffer.add(np.zeros(2), 0, 0.0, np.zeros(2), False)
        with pytest.raises(ValueError):
            buffer.sample(2)
        with pytest.raises(ValueError):
            buffer.sample(0)

    def test_sample_arrays_shapes(self):
        buffer = self.make_buffer()
        for index in range(20):
            buffer.add(np.full(3, index), index % 4, float(index), np.full(3, index + 1), index % 2 == 0)
        observations, actions, rewards, next_observations, dones = buffer.sample_arrays(8)
        assert observations.shape == (8, 3)
        assert actions.dtype == np.int64
        assert rewards.shape == (8,)
        assert next_observations.shape == (8, 3)
        assert dones.dtype == bool

    def test_clear(self):
        buffer = self.make_buffer()
        buffer.add(np.zeros(2), 0, 0.0, np.zeros(2), True)
        buffer.clear()
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)

    def test_transition_immutable_dataclass(self):
        transition = Transition(np.zeros(2), 1, 0.0, np.zeros(2), False)
        with pytest.raises(AttributeError):
            transition.action = 3
