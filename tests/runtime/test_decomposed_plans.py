"""Serial/parallel byte-identity for the newly decomposed artifacts.

PR 1 decomposed the heatmap and sweep artifacts; this suite covers the
remaining grid-shaped artifacts — fig3d (per parameter tensor), fig6a (per
drone count × fault location × BER), fig6b (per interval multiplier ×
scenario) and the data-type study (per BER × datatype × repeat) — and pins
the framework routing: ``framework.run(id)`` and a parallel campaign runner
must produce byte-identical payloads.
"""

import json

import pytest

from repro.runtime.plans import CampaignContext, build_plan
from repro.runtime.runner import CampaignRunner

NEWLY_DECOMPOSED = ("fig3d", "fig6a", "fig6b", "datatypes")


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def context(tiny_gridworld_scale, tiny_drone_scale, policy_cache) -> CampaignContext:
    return CampaignContext.create(tiny_gridworld_scale, tiny_drone_scale, policy_cache)


class TestPlanShapes:
    @pytest.mark.parametrize("experiment_id", NEWLY_DECOMPOSED)
    def test_true_multi_cell_plan(self, context, experiment_id):
        plan = build_plan(experiment_id, context)
        assert plan.cell_count > 1
        assert all(cell.experiment_id == experiment_id for cell in plan.cells)

    def test_fig3e_stays_single_cell(self, context):
        # The convergence loop trains until recovery: each round depends on
        # the previous evaluation, so it cannot decompose into cells.
        assert build_plan("fig3e", context).cell_count == 1

    def test_fig6a_keys_cover_counts_and_locations(self, context):
        plan = build_plan("fig6a", context)
        keys = {cell.key[:4] for cell in plan.cells}
        assert ("drones", 2, "location", "server") in keys
        assert ("drones", 4, "location", "agent") in keys

    def test_fig3d_per_parameter_cells(self, context, tiny_gridworld_policies):
        plan = build_plan("fig3d", context)
        assert plan.cell_count == len(tiny_gridworld_policies["consensus"])

    def test_fig3d_int8_falls_back_to_single_cell(self, tiny_gridworld_scale, policy_cache):
        from repro.core.experiments.gridworld_training import weight_distribution_plan

        # int8's affine scale is computed from the whole tensor; slicing
        # would change the encoding, so int8 keeps one whole-policy cell.
        plan = weight_distribution_plan(
            scale=tiny_gridworld_scale, datatype="int8", cache=policy_cache
        )
        assert plan.cell_count == 1


class TestSerialParallelByteIdentity:
    @pytest.mark.parametrize("experiment_id", NEWLY_DECOMPOSED)
    def test_parallel_matches_serial(self, context, experiment_id):
        plan = build_plan(experiment_id, context)
        serial = plan.run_serial()
        parallel = CampaignRunner(
            gridworld_scale=context.gridworld_scale,
            drone_scale=context.drone_scale,
            cache=context.cache,
            workers=2,
        ).run_plan(build_plan(experiment_id, context))
        assert _payload(serial) == _payload(parallel)


class TestFrameworkParity:
    def test_fig3d_matches_legacy_weight_distribution(self, context, tiny_gridworld_policies):
        from repro.core.experiments.gridworld_training import weight_distribution

        legacy = weight_distribution(
            scale=context.gridworld_scale,
            consensus=tiny_gridworld_policies["consensus"],
        )
        assert _payload(build_plan("fig3d", context).run_serial()) == _payload(legacy)

    def test_framework_routes_through_plans(self, context):
        from repro.core import FaultCharacterizationFramework

        framework = FaultCharacterizationFramework(
            gridworld_scale=context.gridworld_scale,
            drone_scale=context.drone_scale,
            cache=context.cache,
        )
        assert _payload(framework.run("fig3d")) == _payload(
            build_plan("fig3d", context).run_serial()
        )
