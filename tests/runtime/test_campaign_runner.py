"""Tests for the parallel campaign runner.

The central guarantee under test: executing a campaign plan on a process pool
produces *byte-identical* merged results to the serial in-process run, because
every cell derives its randomness from seeds keyed by its campaign
coordinates.  Worker crashes must surface as typed errors naming the cell.
"""

import json

import numpy as np
import pytest

from repro.core.config import GridWorldScale
from repro.core.experiments.gridworld_inference import gridworld_inference_plan
from repro.core.experiments.gridworld_training import gridworld_training_plan
from repro.runtime.cells import CampaignPlan, CellTask, derive_cell_seeds
from repro.runtime.plans import build_plan, decomposed_experiment_ids, plannable_experiment_ids
from repro.runtime.runner import CampaignRunner, CellExecutionError


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def tiny_scale() -> GridWorldScale:
    return GridWorldScale.tiny()


class TestSerialParallelDeterminism:
    def test_fig3a_parallel_matches_serial(self, tiny_scale, policy_cache):
        serial = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=1)
        parallel = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=2)
        assert _payload(serial.run("fig3a")) == _payload(parallel.run("fig3a"))

    def test_fig4_parallel_matches_serial(self, tiny_scale, policy_cache):
        serial = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=1)
        parallel = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=2)
        assert _payload(serial.run("fig4")) == _payload(parallel.run("fig4"))

    def test_experiment_function_matches_plan(self, tiny_scale):
        """The public experiment function IS the serial plan execution."""
        from repro.core.experiments.gridworld_training import gridworld_training_heatmap

        direct = gridworld_training_heatmap(
            "agent", scale=tiny_scale, ber_values=(0.0, 0.02), episode_fractions=(0.5,)
        )
        plan = gridworld_training_plan(
            "agent", scale=tiny_scale, ber_values=(0.0, 0.02), episode_fractions=(0.5,)
        )
        assert _payload(direct) == _payload(plan.run_serial())

    def test_framework_workers_kwarg(self, tiny_scale, policy_cache):
        from repro.core import FaultCharacterizationFramework

        framework = FaultCharacterizationFramework(
            gridworld_scale=tiny_scale, cache=policy_cache
        )
        serial = framework.run("fig3a")
        parallel = framework.run("fig3a", workers=2)
        assert "fig3a" in framework.results
        assert _payload(serial) == _payload(parallel)


class TestPlans:
    def test_every_registered_artifact_is_plannable(self, tiny_scale, policy_cache):
        from repro.core import FaultCharacterizationFramework

        framework = FaultCharacterizationFramework(
            gridworld_scale=tiny_scale, cache=policy_cache
        )
        missing = set(framework.experiment_ids) - set(plannable_experiment_ids())
        # fig7a/fig8a-style ids must all resolve to a plan.
        assert not missing

    def test_heatmap_plan_shape(self, tiny_scale):
        plan = gridworld_training_plan(
            "agent", scale=tiny_scale, ber_values=(0.0, 0.01, 0.02), episode_fractions=(0.5, 0.9)
        )
        assert plan.cell_count == tiny_scale.repeats * 3 * 2
        assert all(cell.experiment_id == "fig3a" for cell in plan.cells)

    def test_inference_plan_uses_cached_baselines(self, tiny_scale, policy_cache):
        plan = gridworld_inference_plan(scale=tiny_scale, cache=policy_cache, repeats=2)
        # Policies are shipped to the cells by value: no cell retrains.
        for cell in plan.cells:
            assert isinstance(cell.kwargs["multi_policy"], dict)
            assert isinstance(cell.kwargs["single_policy"], dict)

    def test_decomposed_ids_are_plannable(self):
        assert set(decomposed_experiment_ids()) <= set(plannable_experiment_ids())

    def test_unknown_experiment_rejected(self, tiny_scale, policy_cache):
        runner = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache)
        with pytest.raises(KeyError):
            runner.run("fig99")


def _explode(message: str) -> float:
    raise RuntimeError(message)


def _identity(value: float) -> float:
    return value


def _crash_plan(fail_index: int) -> CampaignPlan:
    cells = [
        CellTask(
            experiment_id="boom",
            key=("cell", index),
            fn=_explode if index == fail_index else _identity,
            kwargs={"message": "injected failure"} if index == fail_index else {"value": 1.0},
        )
        for index in range(4)
    ]
    return CampaignPlan(experiment_id="boom", cells=cells, merge=sum)


class TestWorkerCrashSurfacing:
    def test_cell_exception_surfaces_with_cell_identity(self):
        runner = CampaignRunner(workers=2)
        with pytest.raises(CellExecutionError) as excinfo:
            runner.run_plan(_crash_plan(fail_index=2))
        assert "boom" in str(excinfo.value)
        assert "injected failure" in str(excinfo.value)
        assert excinfo.value.cell.key == ("cell", 2)

    def test_serial_path_raises_original_error(self):
        runner = CampaignRunner(workers=1)
        with pytest.raises(RuntimeError, match="injected failure"):
            runner.run_plan(_crash_plan(fail_index=0))


class TestSeedDerivation:
    def test_derive_cell_seeds_deterministic(self):
        assert derive_cell_seeds(7, 5) == derive_cell_seeds(7, 5)

    def test_derive_cell_seeds_prefix_stable(self):
        # Adding replicates must never perturb existing ones.
        assert derive_cell_seeds(7, 8)[:5] == derive_cell_seeds(7, 5)

    def test_derive_cell_seeds_distinct(self):
        seeds = derive_cell_seeds(0, 16)
        assert len(set(seeds)) == len(seeds)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_cell_seeds(0, -1)


class TestFallbackPlans:
    def test_fig9_single_cell(self, tiny_scale, tiny_drone_scale, policy_cache):
        from repro.runtime.plans import CampaignContext

        context = CampaignContext.create(tiny_scale, tiny_drone_scale, policy_cache)
        plan = build_plan("fig9", context)
        assert plan.cell_count == 1
        result = plan.run_serial()
        assert hasattr(result, "rows")

    def test_fig9_runs_in_worker(self, tiny_scale, tiny_drone_scale, policy_cache):
        runner = CampaignRunner(
            gridworld_scale=tiny_scale,
            drone_scale=tiny_drone_scale,
            cache=policy_cache,
            workers=2,
        )
        result = runner.run("fig9")
        assert hasattr(result, "rows")
        assert "fig9" in runner.results
        assert "fig9" in runner.report()


class TestMergeAccumulation:
    def test_accumulate_matches_nested_loops(self):
        from repro.runtime.cells import accumulate_heatmap, grid_merge_order

        rng = np.random.default_rng(3)
        repeats, rows, columns = 3, 4, 2
        outputs = rng.random(repeats * rows * columns).tolist()
        merged = accumulate_heatmap(outputs, repeats, rows, columns)
        expected = np.zeros((rows, columns))
        cursor = 0
        for _repeat in range(repeats):
            for row in range(rows):
                for column in range(columns):
                    expected[row, column] += outputs[cursor]
                    cursor += 1
        np.testing.assert_array_equal(merged, expected)
        assert len(grid_merge_order(repeats, rows, columns)) == len(outputs)

    def test_accumulate_rejects_wrong_cardinality(self):
        from repro.runtime.cells import accumulate_heatmap

        with pytest.raises(ValueError):
            accumulate_heatmap([1.0, 2.0], repeats=1, rows=2, columns=2)
