"""Tests for the parallel campaign runner.

The central guarantee under test: executing a campaign plan on a process pool
produces *byte-identical* merged results to the serial in-process run, because
every cell derives its randomness from seeds keyed by its campaign
coordinates.  Worker crashes must surface as typed errors naming the cell.
"""

import json

import numpy as np
import pytest

from repro.core.config import GridWorldScale
from repro.core.experiments.gridworld_inference import gridworld_inference_plan
from repro.core.experiments.gridworld_training import gridworld_training_plan
from repro.runtime.cells import CampaignPlan, CellTask, derive_cell_seeds
from repro.runtime.plans import build_plan, decomposed_experiment_ids, plannable_experiment_ids
from repro.runtime.runner import CampaignRunner, CellExecutionError


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def tiny_scale() -> GridWorldScale:
    return GridWorldScale.tiny()


class TestSerialParallelDeterminism:
    def test_fig3a_parallel_matches_serial(self, tiny_scale, policy_cache):
        serial = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=1)
        parallel = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=2)
        assert _payload(serial.run("fig3a")) == _payload(parallel.run("fig3a"))

    def test_fig4_parallel_matches_serial(self, tiny_scale, policy_cache):
        serial = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=1)
        parallel = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=2)
        assert _payload(serial.run("fig4")) == _payload(parallel.run("fig4"))

    def test_experiment_function_matches_plan(self, tiny_scale):
        """The public experiment function IS the serial plan execution."""
        from repro.core.experiments.gridworld_training import gridworld_training_heatmap

        direct = gridworld_training_heatmap(
            "agent", scale=tiny_scale, ber_values=(0.0, 0.02), episode_fractions=(0.5,)
        )
        plan = gridworld_training_plan(
            "agent", scale=tiny_scale, ber_values=(0.0, 0.02), episode_fractions=(0.5,)
        )
        assert _payload(direct) == _payload(plan.run_serial())

    def test_framework_workers_kwarg(self, tiny_scale, policy_cache):
        from repro.core import FaultCharacterizationFramework

        framework = FaultCharacterizationFramework(
            gridworld_scale=tiny_scale, cache=policy_cache
        )
        serial = framework.run("fig3a")
        parallel = framework.run("fig3a", workers=2)
        assert "fig3a" in framework.results
        assert _payload(serial) == _payload(parallel)


class TestPlans:
    def test_every_registered_artifact_is_plannable(self, tiny_scale, policy_cache):
        from repro.core import FaultCharacterizationFramework

        framework = FaultCharacterizationFramework(
            gridworld_scale=tiny_scale, cache=policy_cache
        )
        missing = set(framework.experiment_ids) - set(plannable_experiment_ids())
        # fig7a/fig8a-style ids must all resolve to a plan.
        assert not missing

    def test_heatmap_plan_shape(self, tiny_scale):
        plan = gridworld_training_plan(
            "agent", scale=tiny_scale, ber_values=(0.0, 0.01, 0.02), episode_fractions=(0.5, 0.9)
        )
        assert plan.cell_count == tiny_scale.repeats * 3 * 2
        assert all(cell.experiment_id == "fig3a" for cell in plan.cells)

    def test_inference_plan_uses_policy_refs(self, tiny_scale, policy_cache):
        from repro.runtime.residency import PolicyRef

        plan = gridworld_inference_plan(scale=tiny_scale, cache=policy_cache, repeats=2)
        # Policies are referenced by (cache_dir, key): cells never carry the
        # state dict itself, and no cell retrains a baseline.
        for cell in plan.cells:
            assert isinstance(cell.kwargs["multi_policy"], PolicyRef)
            assert isinstance(cell.kwargs["single_policy"], PolicyRef)
            assert cell.kwargs["multi_policy"].cache_dir == str(policy_cache.cache_dir)

    def test_decomposed_ids_are_plannable(self):
        assert set(decomposed_experiment_ids()) <= set(plannable_experiment_ids())

    def test_unknown_experiment_rejected(self, tiny_scale, policy_cache):
        runner = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache)
        with pytest.raises(KeyError):
            runner.run("fig99")


def _explode(message: str) -> float:
    raise RuntimeError(message)


def _identity(value: float) -> float:
    return value


def _die(value: float) -> float:
    import os

    os._exit(1)  # simulate a segfault / OOM kill: no exception, no cleanup


def _value_plan(count: int, merge=sum) -> CampaignPlan:
    cells = [
        CellTask(
            experiment_id="values",
            key=("cell", index),
            fn=_identity,
            kwargs={"value": float(index)},
        )
        for index in range(count)
    ]
    return CampaignPlan(experiment_id="values", cells=cells, merge=merge)


def _crash_plan(fail_index: int) -> CampaignPlan:
    cells = [
        CellTask(
            experiment_id="boom",
            key=("cell", index),
            fn=_explode if index == fail_index else _identity,
            kwargs={"message": "injected failure"} if index == fail_index else {"value": 1.0},
        )
        for index in range(4)
    ]
    return CampaignPlan(experiment_id="boom", cells=cells, merge=sum)


class TestWorkerCrashSurfacing:
    def test_cell_exception_surfaces_with_cell_identity(self):
        runner = CampaignRunner(workers=2)
        with pytest.raises(CellExecutionError) as excinfo:
            runner.run_plan(_crash_plan(fail_index=2))
        assert "boom" in str(excinfo.value)
        assert "injected failure" in str(excinfo.value)
        assert excinfo.value.cell.key == ("cell", 2)

    def test_cell_exception_surfaces_from_batched_submission(self):
        runner = CampaignRunner(workers=2, batch_size=3)
        with pytest.raises(CellExecutionError) as excinfo:
            runner.run_plan(_crash_plan(fail_index=2))
        assert excinfo.value.cell.key == ("cell", 2)

    def test_serial_path_raises_original_error(self):
        runner = CampaignRunner(workers=1)
        with pytest.raises(RuntimeError, match="injected failure"):
            runner.run_plan(_crash_plan(fail_index=0))

    def test_killed_worker_surfaces_cell_identity(self):
        cells = [
            CellTask(
                experiment_id="killed",
                key=("cell", index),
                fn=_die if index == 1 else _identity,
                kwargs={"value": float(index)},
            )
            for index in range(3)
        ]
        plan = CampaignPlan(experiment_id="killed", cells=cells, merge=sum)
        runner = CampaignRunner(workers=2)
        with pytest.raises(CellExecutionError, match="worker process died"):
            runner.run_plan(plan)

    def test_cell_execution_error_survives_pickling(self):
        import pickle

        error = CellExecutionError(_value_plan(1).cells[0], "RuntimeError: nope")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, CellExecutionError)
        assert clone.cell.key == ("cell", 0)
        assert "nope" in str(clone)


class TestCellBatching:
    def test_batched_matches_serial(self):
        plan_outputs = _value_plan(7, merge=list).run_serial()
        runner = CampaignRunner(workers=2, batch_size=3)
        assert runner.run_plan(_value_plan(7, merge=list)) == plan_outputs

    def test_batch_size_larger_than_plan(self):
        runner = CampaignRunner(workers=2, batch_size=100)
        assert runner.run_plan(_value_plan(4)) == 6.0

    def test_fig3a_batched_parallel_matches_serial(self, tiny_scale, policy_cache):
        serial = CampaignRunner(gridworld_scale=tiny_scale, cache=policy_cache, workers=1)
        batched = CampaignRunner(
            gridworld_scale=tiny_scale, cache=policy_cache, workers=2, batch_size=4
        )
        assert _payload(serial.run("fig3a")) == _payload(batched.run("fig3a"))

    def test_batch_size_floor(self):
        assert CampaignRunner(batch_size=0).batch_size == 1


class TestDefaultWorkerCount:
    def test_prefers_process_cpu_count(self, monkeypatch):
        from repro.runtime import runner as runner_module

        monkeypatch.setattr(runner_module.os, "process_cpu_count", lambda: 3, raising=False)
        assert runner_module.default_worker_count() == 3

    def test_falls_back_to_affinity_mask(self, monkeypatch):
        from repro.runtime import runner as runner_module

        # Simulate a cgroup-limited container: 2 schedulable CPUs on a
        # 64-CPU machine.  os.cpu_count() must not win.
        monkeypatch.delattr(runner_module.os, "process_cpu_count", raising=False)
        monkeypatch.setattr(runner_module.os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 64)
        assert runner_module.default_worker_count() == 2

    def test_last_resort_cpu_count_capped(self, monkeypatch):
        from repro.runtime import runner as runner_module

        monkeypatch.delattr(runner_module.os, "process_cpu_count", raising=False)
        monkeypatch.delattr(runner_module.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 64)
        assert runner_module.default_worker_count() == 8

    def test_never_below_one(self, monkeypatch):
        from repro.runtime import runner as runner_module

        monkeypatch.delattr(runner_module.os, "process_cpu_count", raising=False)
        monkeypatch.delattr(runner_module.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: None)
        assert runner_module.default_worker_count() == 1


class TestSeedDerivation:
    def test_derive_cell_seeds_deterministic(self):
        assert derive_cell_seeds(7, 5) == derive_cell_seeds(7, 5)

    def test_derive_cell_seeds_prefix_stable(self):
        # Adding replicates must never perturb existing ones.
        assert derive_cell_seeds(7, 8)[:5] == derive_cell_seeds(7, 5)

    def test_derive_cell_seeds_distinct(self):
        seeds = derive_cell_seeds(0, 16)
        assert len(set(seeds)) == len(seeds)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_cell_seeds(0, -1)


class TestFallbackPlans:
    def test_fig9_single_cell(self, tiny_scale, tiny_drone_scale, policy_cache):
        from repro.runtime.plans import CampaignContext

        context = CampaignContext.create(tiny_scale, tiny_drone_scale, policy_cache)
        plan = build_plan("fig9", context)
        assert plan.cell_count == 1
        result = plan.run_serial()
        assert hasattr(result, "rows")

    def test_fig9_runs_in_worker(self, tiny_scale, tiny_drone_scale, policy_cache):
        runner = CampaignRunner(
            gridworld_scale=tiny_scale,
            drone_scale=tiny_drone_scale,
            cache=policy_cache,
            workers=2,
        )
        result = runner.run("fig9")
        assert hasattr(result, "rows")
        assert "fig9" in runner.results
        assert "fig9" in runner.report()


class TestMergeAccumulation:
    def test_accumulate_matches_nested_loops(self):
        from repro.runtime.cells import accumulate_heatmap, grid_merge_order

        rng = np.random.default_rng(3)
        repeats, rows, columns = 3, 4, 2
        outputs = rng.random(repeats * rows * columns).tolist()
        merged = accumulate_heatmap(outputs, repeats, rows, columns)
        expected = np.zeros((rows, columns))
        cursor = 0
        for _repeat in range(repeats):
            for row in range(rows):
                for column in range(columns):
                    expected[row, column] += outputs[cursor]
                    cursor += 1
        np.testing.assert_array_equal(merged, expected)
        assert len(grid_merge_order(repeats, rows, columns)) == len(outputs)

    def test_accumulate_rejects_wrong_cardinality(self):
        from repro.runtime.cells import accumulate_heatmap

        with pytest.raises(ValueError):
            accumulate_heatmap([1.0, 2.0], repeats=1, rows=2, columns=2)
