"""The vectorize registry and the runner's group routing.

Covers the three mode contracts (``auto`` groups registered functions and
falls back serially, ``on`` demands a registered group runner, ``off`` never
groups) and the payload byte-identity between vectorized and serial campaign
runs that the CI ``vectorize-identity`` job pins end to end.
"""

import json

import pytest

from repro.runtime.plans import CampaignContext, build_plan
from repro.runtime.runner import CampaignError, CampaignRunner, _run_cell_batch
from repro.runtime.vectorize import (
    GROUP_CELL_CAP,
    VECTORIZE_MODES,
    group_runner_for,
    has_group_runner,
    register_group_runner,
    registered_functions,
    validate_vectorize_mode,
)


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def context(tiny_gridworld_scale, tiny_drone_scale, policy_cache) -> CampaignContext:
    return CampaignContext.create(tiny_gridworld_scale, tiny_drone_scale, policy_cache)


class TestRegistry:
    def test_validate_modes(self):
        for mode in VECTORIZE_MODES:
            assert validate_vectorize_mode(mode) == mode
        with pytest.raises(ValueError, match="vectorize"):
            validate_vectorize_mode("sometimes")

    def test_register_and_lookup_by_function_object(self):
        def cell_fn(**kwargs):
            return kwargs

        def group_fn(kwargs_list):
            return [cell_fn(**kwargs) for kwargs in kwargs_list]

        assert not has_group_runner(cell_fn)
        register_group_runner(cell_fn, group_fn)
        try:
            assert has_group_runner(cell_fn)
            assert group_runner_for(cell_fn) is group_fn
            assert cell_fn in registered_functions()
        finally:
            register_group_runner(cell_fn, None)
        assert not has_group_runner(cell_fn)

    def test_drone_training_cells_are_registered(self):
        # Importing the experiment module registers its group runners — the
        # same import path workers take when they unpickle a cell's fn.
        from repro.core.experiments import drone_training

        assert has_group_runner(drone_training.drone_training_cell)


class TestModeRouting:
    def test_on_requires_a_registered_runner(self, context):
        plan = build_plan("fig3d", context)  # gridworld cells: no group runner
        with pytest.raises(CampaignError, match="vectorize"):
            _run_cell_batch(list(plan.cells), vectorize="on")

    def test_auto_falls_back_serially_for_unregistered(self, context):
        plan = build_plan("fig3d", context)
        cells = list(plan.cells)
        assert _run_cell_batch(cells, vectorize="auto") == _run_cell_batch(
            cells, vectorize="off"
        )

    def test_group_runner_output_count_is_checked(self, context):
        plan = build_plan("fig6a", context)
        cells = list(plan.cells)[:2]
        fn = cells[0].fn
        original = group_runner_for(fn)
        register_group_runner(fn, lambda kwargs_list: [])
        try:
            with pytest.raises(CampaignError, match="outputs"):
                _run_cell_batch(cells, vectorize="on")
        finally:
            register_group_runner(fn, original)

    def test_serial_groups_fuse_up_to_the_cap(self, context):
        runner = CampaignRunner(
            gridworld_scale=context.gridworld_scale,
            drone_scale=context.drone_scale,
            cache=context.cache,
            vectorize="auto",
        )
        plan = build_plan("fig6a", context)
        cells = list(plan.cells)
        groups = runner._serial_groups(cells, list(range(len(cells))))
        assert [index for group in groups for index in group] == list(range(len(cells)))
        assert all(len(group) <= GROUP_CELL_CAP for group in groups)
        assert any(len(group) > 1 for group in groups)

    def test_off_never_groups(self, context):
        runner = CampaignRunner(
            gridworld_scale=context.gridworld_scale,
            drone_scale=context.drone_scale,
            cache=context.cache,
            vectorize="off",
        )
        plan = build_plan("fig6a", context)
        cells = list(plan.cells)
        groups = runner._serial_groups(cells, list(range(len(cells))))
        assert all(len(group) == 1 for group in groups)


class TestPayloadIdentity:
    @pytest.mark.parametrize("experiment_id", ["fig6a", "fig6b"])
    def test_vectorized_matches_serial_bitwise(self, context, experiment_id):
        def run(vectorize, workers=1):
            return CampaignRunner(
                gridworld_scale=context.gridworld_scale,
                drone_scale=context.drone_scale,
                cache=context.cache,
                workers=workers,
                vectorize=vectorize,
            ).run_plan(build_plan(experiment_id, context))

        serial = _payload(run("off"))
        assert _payload(run("on")) == serial
        assert _payload(run("auto", workers=2)) == serial
