"""Docstring coverage for the runtime package's public API.

CI enforces ruff's D1 (pydocstyle undocumented-*) rules for
``src/repro/runtime/`` (see ``[tool.ruff.lint]`` in pyproject.toml); this
test mirrors that contract with a plain ``ast`` walk so the guarantee also
holds in environments where ruff is not installed — docstring coverage of
the scaling API cannot regress in either place.
"""

import ast
from pathlib import Path

import pytest

RUNTIME_DIR = Path(__file__).resolve().parents[2] / "src" / "repro" / "runtime"
RUNTIME_MODULES = sorted(RUNTIME_DIR.glob("*.py"))


def _is_public(name: str) -> bool:
    # Dunders mirror the ruff config's D105/D107 ignores.
    return not name.startswith("_")


def _missing_docstrings(tree: ast.Module) -> list:
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("module")

    def visit(node, prefix: str, in_private_scope: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                public = _is_public(child.name) and not in_private_scope
                if public and ast.get_docstring(child) is None:
                    missing.append(f"{prefix}{child.name} (line {child.lineno})")
                visit(child, f"{prefix}{child.name}.", in_private_scope or not public)

    visit(tree, "", False)
    return missing


@pytest.mark.parametrize(
    "module_path", RUNTIME_MODULES, ids=[path.name for path in RUNTIME_MODULES]
)
def test_every_public_runtime_symbol_has_a_docstring(module_path):
    tree = ast.parse(module_path.read_text(encoding="utf8"))
    missing = _missing_docstrings(tree)
    assert not missing, (
        f"{module_path.relative_to(RUNTIME_DIR.parents[2])} has undocumented "
        f"public symbols: {missing} — the runtime package is the public "
        "scaling API; document them (ruff's D1 rules enforce the same in CI)"
    )


def test_runtime_package_is_nonempty():
    """Guard the glob: an empty parametrization would silently pass."""
    assert len(RUNTIME_MODULES) >= 8
