"""Docstring coverage for the public API of the gated packages.

CI enforces ruff's D1 (pydocstyle undocumented-*) rules for
``src/repro/runtime/``, ``src/repro/envs/``, ``src/repro/rl/``,
``src/repro/faults/`` and ``src/repro/federated/`` (see
``[tool.ruff.lint]`` in pyproject.toml); this test mirrors that contract
with a plain ``ast`` walk so the guarantee also holds in environments where
ruff is not installed — docstring coverage of the scaling API, the
vectorized hot path, and the paper's fault-injection/federated domain
layers cannot regress in either place.
"""

import ast
from pathlib import Path

import pytest

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"
GATED_PACKAGES = ("runtime", "envs", "rl", "faults", "federated")
GATED_MODULES = sorted(
    path for package in GATED_PACKAGES for path in (SRC_ROOT / package).glob("*.py")
)


def _is_public(name: str) -> bool:
    # Dunders mirror the ruff config's D105/D107 ignores.
    return not name.startswith("_")


def _missing_docstrings(tree: ast.Module) -> list:
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("module")

    def visit(node, prefix: str, in_private_scope: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                public = _is_public(child.name) and not in_private_scope
                if public and ast.get_docstring(child) is None:
                    missing.append(f"{prefix}{child.name} (line {child.lineno})")
                visit(child, f"{prefix}{child.name}.", in_private_scope or not public)

    visit(tree, "", False)
    return missing


@pytest.mark.parametrize(
    "module_path",
    GATED_MODULES,
    ids=[f"{path.parent.name}/{path.name}" for path in GATED_MODULES],
)
def test_every_public_gated_symbol_has_a_docstring(module_path):
    tree = ast.parse(module_path.read_text(encoding="utf8"))
    missing = _missing_docstrings(tree)
    assert not missing, (
        f"{module_path.relative_to(SRC_ROOT.parents[1])} has undocumented "
        f"public symbols: {missing} — the gated packages (runtime, envs, rl, "
        "faults, federated) are the public scaling API, the vectorized hot "
        "path, and the paper's domain layers; document them (ruff's D1 rules "
        "enforce the same in CI)"
    )


def test_gated_packages_are_nonempty():
    """Guard the glob: an empty parametrization would silently pass."""
    assert len(GATED_MODULES) >= 12
    assert {path.parent.name for path in GATED_MODULES} == set(GATED_PACKAGES)
