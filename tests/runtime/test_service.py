"""End-to-end and chaos tests for the resident campaign service.

The service's whole reason to exist is the combination of three promises:

* a served campaign's merged payload is **byte-identical** to a one-shot
  ``orchestrate`` run of the same plan — under concurrent competing
  campaigns, under a killed shard, and across a daemon kill + restart;
* many campaigns share one roster under a **deterministic** priority/quota
  admission order (the dispatch log *is* the grant order);
* the client/server seam is **fault-isolated**: a client that disconnects
  mid-stream never takes the daemon (or a campaign, or a file descriptor)
  with it.

Every scenario here drives the real stack — service → dispatcher →
orchestrator → shard subprocesses → journals — through the same synthetic
8-cell plan the orchestrator tests use (the plan fingerprint digests cell
keys and kwargs, not function objects, so the parent's plan and the worker
script's plan journal-match by construction).  Worker behaviour knobs travel
through environment variables, which also exercises the orchestrator's env
passthrough into backends (including the fake-slurm shim).
"""

import asyncio
import json
import os
import socket
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.runtime.backends import build_backends
from repro.runtime.cells import CampaignPlan, CellTask
from repro.runtime.cli import main
from repro.runtime.orchestrator import ShardOrchestrator
from repro.runtime.runner import CampaignRunner
from repro.runtime.service import (
    SERVICE_JOURNAL_NAME,
    CampaignService,
    CampaignSpec,
    ServiceError,
)
from repro.runtime.service_api import ServiceAPI, ServiceClient, ServiceClientError

FAKE_SLURM = Path(__file__).resolve().parents[2] / "tools" / "fake_slurm"

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Worker script emulating one shard "machine" of a served campaign.  Knobs:
#:   SVC_TEST_SLEEP — seconds to sleep per cell (creates real contention);
#:   SVC_TEST_EXEC_LOG — append one JSON line per *executed* cell, proving
#:     which cells ran in which daemon generation;
#:   SVC_TEST_STALL_MARKER — hang *inside the third cell* (2 cells already
#:     journaled) until this file exists: freezes a campaign genuinely
#:     mid-flight for the daemon-kill/restart drill.
#: Shard kills are injected by the daemon itself (``inject_kill_shard``),
#: so the worker needs no crash knob of its own.
_WORKER_SCRIPT = textwrap.dedent(
    """
    import json
    import os
    import sys
    import time

    sys.path.insert(0, {src!r})

    from repro.runtime.cells import CampaignPlan, CellTask
    from repro.runtime.runner import CampaignRunner

    shard, journal_dir = sys.argv[1], sys.argv[2]
    resume = "--resume" in sys.argv[3:]
    shard_index = shard.split("/")[0]
    label = os.path.basename(journal_dir.rstrip("/"))

    sleep = float(os.environ.get("SVC_TEST_SLEEP", "0") or 0)
    exec_log = os.environ.get("SVC_TEST_EXEC_LOG", "")
    stall_marker = os.environ.get("SVC_TEST_STALL_MARKER", "")
    state = {{"executed": 0}}

    def cell(value):
        state["executed"] += 1
        if sleep:
            time.sleep(sleep)
        if exec_log:
            with open(exec_log, "a") as handle:
                handle.write(json.dumps([label, shard, value]) + "\\n")
        if stall_marker and state["executed"] > 2:
            while not os.path.exists(stall_marker):
                time.sleep(0.05)
        return value * 2.0

    cells = [
        CellTask("orch", ("cell", index), cell, {{"value": float(index)}})
        for index in range(8)
    ]
    plan = CampaignPlan("orch", cells, merge=list)
    runner = CampaignRunner(journal_dir=journal_dir, shard=shard, resume=resume)
    runner.run_plan(plan, journal=runner.journal_for(plan))
    """
)


def _double(value: float) -> float:
    return value * 2.0


def _plan(count: int = 8) -> CampaignPlan:
    cells = [
        CellTask("orch", ("cell", index), _double, {"value": float(index)})
        for index in range(count)
    ]
    return CampaignPlan("orch", cells, merge=list)


EXPECTED_RESULT = [float(index) * 2.0 for index in range(8)]
EXPECTED_PAYLOAD = (str(EXPECTED_RESULT) + "\n").encode("utf8")


@pytest.fixture()
def worker_script(tmp_path) -> Path:
    script = tmp_path / "shard_worker.py"
    script.write_text(_WORKER_SCRIPT.format(src=_SRC), encoding="utf8")
    return script


def _command_factory(worker_script):
    """``command_factory`` hook: each campaign's shards journal into its dir."""

    def factory(campaign):
        def command(spec, attempt_number, resume):
            argv = [sys.executable, str(worker_script), spec.describe(), str(campaign.dir)]
            if resume:
                argv.append("--resume")
            return argv

        return command

    return factory


def _service(journal_dir, worker_script, **kwargs) -> CampaignService:
    kwargs.setdefault("poll_interval", 0.05)
    kwargs.setdefault("plan_factory", lambda spec: _plan())
    kwargs.setdefault("command_factory", _command_factory(worker_script))
    return CampaignService(journal_dir, **kwargs)


async def _wait(campaign, timeout: float = 120.0) -> None:
    """Await a campaign's terminal state (exceptions stay on the campaign)."""
    await asyncio.wait_for(
        asyncio.gather(campaign.task, return_exceptions=True), timeout
    )


async def _poll_until(predicate, timeout: float = 60.0, interval: float = 0.02):
    """Spin the event loop until ``predicate()`` is truthy."""
    async def spin():
        while not predicate():
            await asyncio.sleep(interval)

    await asyncio.wait_for(spin(), timeout)


def _journaled_indices(campaign_dir: Path) -> set:
    """Plan cell indices journaled as completed across a campaign's shards."""
    indices = set()
    for path in sorted(campaign_dir.glob("*.shard-*.jsonl")):
        for line in path.read_bytes().split(b"\n")[:-1]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if isinstance(record, dict) and record.get("kind") == "cell":
                indices.add(record["index"])
    return indices


def _executed_values(exec_log: Path) -> list:
    """The ``value`` kwargs of every cell the workers actually executed."""
    if not exec_log.exists():
        return []
    return [
        json.loads(line)[2]
        for line in exec_log.read_text(encoding="utf8").splitlines()
        if line.strip()
    ]


def _one_shot_result(tmp_path, worker_script, shards: int = 2):
    """A one-shot ``ShardOrchestrator`` run of the same plan (the baseline)."""
    journal_dir = tmp_path / "one-shot"

    def factory(spec, attempt_number, resume):
        argv = [sys.executable, str(worker_script), spec.describe(), str(journal_dir)]
        if resume:
            argv.append("--resume")
        return argv

    orchestrator = ShardOrchestrator(
        "orch",
        shards,
        CampaignRunner(journal_dir=journal_dir),
        plan=_plan(),
        command_factory=factory,
        poll_interval=0.05,
    )
    return orchestrator.run().result


def _service_journal_records(journal_dir: Path) -> list:
    return [
        json.loads(line)
        for line in (journal_dir / SERVICE_JOURNAL_NAME).read_text("utf8").splitlines()
        if line.strip()
    ]


class TestServedCampaignLifecycle:
    def test_two_priorities_share_mixed_roster_and_merge_byte_identically(
        self, tmp_path, worker_script, monkeypatch
    ):
        """The daemon-lifecycle criterion: a mixed local + fake-slurm roster,
        a low-priority 4-shard campaign saturating it, then a high-priority
        campaign arriving late — the high-priority shards must take the freed
        slots first (dispatch log order), and both merged payloads must be
        byte-identical to a one-shot orchestrate run of the same plan."""
        monkeypatch.setenv("FAKE_SLURM_STATE", str(tmp_path / "slurm-state"))
        monkeypatch.setenv("SVC_TEST_SLEEP", "0.2")
        journal_dir = tmp_path / "journals"
        backends = build_backends(["local:1", f"slurm:1,bin_dir={FAKE_SLURM},poll=0.05"])
        service = _service(journal_dir, worker_script, backends=backends)

        async def scenario():
            await service.start()
            try:
                low = await service.submit(
                    CampaignSpec("orch", label="batch", tenant="batch", priority=0, shards=4)
                )
                log = service.dispatcher.dispatch_log
                await _poll_until(lambda: len(log) >= 2)
                high = await service.submit(
                    CampaignSpec("orch", label="urgent", tenant="vip", priority=5, shards=2)
                )
                await _wait(low)
                await _wait(high)
                return low, high
            finally:
                await service.close()

        low, high = asyncio.run(scenario())

        assert low.state == "merged" and high.state == "merged"
        assert low.report.result == EXPECTED_RESULT
        assert high.report.result == EXPECTED_RESULT

        # Deterministic admission: the first two grants went to the early
        # low-priority campaign (it had the roster to itself); once its
        # shards started freeing slots, *every* waiting high-priority shard
        # dispatched before the low-priority campaign's remaining shards.
        labels = [entry["label"] for entry in service.dispatcher.dispatch_log]
        assert labels == ["batch", "batch", "urgent", "urgent", "batch", "batch"]
        # Both backends of the mixed roster actually ran shard attempts.
        assert {entry["backend"] for entry in service.dispatcher.dispatch_log} == {
            "local",
            "slurm",
        }

        # Byte-identity against a one-shot orchestrate run of the same plan.
        monkeypatch.delenv("SVC_TEST_SLEEP")
        baseline = _one_shot_result(tmp_path, worker_script)
        assert low.report.result == baseline
        expected_payload = (str(baseline) + "\n").encode("utf8")
        assert (low.dir / "orch.txt").read_bytes() == expected_payload
        assert (high.dir / "orch.txt").read_bytes() == expected_payload

        # Each campaign journaled in its own subdirectory, no collisions.
        assert _journaled_indices(low.dir) == set(range(8))
        assert _journaled_indices(high.dir) == set(range(8))

    def test_duplicate_inflight_label_refused_naming_fingerprint(
        self, tmp_path, worker_script, monkeypatch
    ):
        monkeypatch.setenv("SVC_TEST_SLEEP", "0.2")
        service = _service(tmp_path / "journals", worker_script)

        async def scenario():
            await service.start()
            try:
                campaign = await service.submit(CampaignSpec("orch", label="busy"))
                await _poll_until(lambda: campaign.fingerprint is not None)
                with pytest.raises(ServiceError) as excinfo:
                    await service.submit(CampaignSpec("orch", label="busy"))
                message = str(excinfo.value)
                assert "already in flight" in message
                assert campaign.id in message
                assert campaign.fingerprint in message
                await service.cancel(campaign.id)
            finally:
                await service.close()

        asyncio.run(scenario())

    def test_submit_before_start_refused(self, tmp_path, worker_script):
        service = _service(tmp_path / "journals", worker_script)

        async def scenario():
            with pytest.raises(ServiceError, match="not started"):
                await service.submit(CampaignSpec("orch"))

        asyncio.run(scenario())


class TestSpecValidation:
    def test_label_defaults_to_experiment_id(self):
        assert CampaignSpec("fig6a").label == "fig6a"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"label": "../escape"},
            {"label": ".hidden"},
            {"tenant": ""},
            {"shards": 0},
            {"workers_per_shard": 0},
            {"batch_cells": 0},
            {"scale": "galactic"},
            {"vectorize": "maybe"},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            CampaignSpec("orch", **kwargs).validate()

    def test_from_dict_round_trips_and_ignores_extras(self):
        spec = CampaignSpec("orch", label="x", tenant="t", priority=3, shards=4)
        payload = dict(spec.as_dict(), unknown_future_field=True)
        assert CampaignSpec.from_dict(payload) == spec

    def test_from_dict_requires_experiment_id(self):
        with pytest.raises(ServiceError):
            CampaignSpec.from_dict({"label": "nameless"})


class TestChaosShardKill:
    def test_shard_killed_through_daemon_resumes_and_merges_byte_identically(
        self, tmp_path, worker_script, monkeypatch
    ):
        """Chaos drill 1: the daemon's ``--inject-kill-shard`` hook kills a
        shard's first attempt mid-run; the retry resumes from the journal and
        the payload still byte-matches the one-shot run."""
        monkeypatch.setenv("SVC_TEST_SLEEP", "0.1")
        service = _service(
            tmp_path / "journals", worker_script, inject_kill_shard=1, max_retries=2
        )

        async def scenario():
            await service.start()
            try:
                campaign = await service.submit(CampaignSpec("orch", label="chaos", shards=2))
                await _wait(campaign)
                return campaign
            finally:
                await service.close()

        campaign = asyncio.run(scenario())

        assert campaign.state == "merged"
        assert campaign.report.result == EXPECTED_RESULT
        shard1 = campaign.report.outcomes[0]
        assert len(shard1.attempts) >= 2
        assert "injected kill" in shard1.attempts[0].reason
        assert all(attempt.resumed for attempt in shard1.attempts[1:])

        monkeypatch.delenv("SVC_TEST_SLEEP")
        baseline = _one_shot_result(tmp_path, worker_script)
        assert (campaign.dir / "orch.txt").read_bytes() == (str(baseline) + "\n").encode("utf8")

        # The terminal journal record survives for post-mortems.
        records = _service_journal_records(service.journal_dir)
        terminal = [r for r in records if r.get("kind") == "state"]
        assert terminal and terminal[-1]["state"] == "merged"
        assert terminal[-1]["fingerprint"] == campaign.fingerprint


class TestChaosDaemonRestart:
    def test_daemon_kill_and_restart_readopts_without_recomputing_cells(
        self, tmp_path, worker_script, monkeypatch
    ):
        """Chaos drill 2: generation 1 is shut down mid-campaign (no terminal
        record — a daemon death, not a cancellation); generation 2 starts
        with ``resume=True``, re-adopts the campaign under its original id,
        and finishes it without re-executing a single journaled cell."""
        journal_dir = tmp_path / "journals"
        stall_marker = tmp_path / "unstall.marker"
        gen1_log = tmp_path / "gen1.exec.jsonl"
        gen2_log = tmp_path / "gen2.exec.jsonl"
        monkeypatch.setenv("SVC_TEST_STALL_MARKER", str(stall_marker))
        monkeypatch.setenv("SVC_TEST_EXEC_LOG", str(gen1_log))

        gen1 = _service(journal_dir, worker_script)

        async def generation_one():
            await gen1.start()
            campaign = await gen1.submit(CampaignSpec("orch", label="durable", shards=2))
            # Each shard journals 2 cells and then freezes on the marker —
            # a campaign caught genuinely mid-flight.
            await _poll_until(
                lambda: all(cells >= 2 for cells in gen1.progress(campaign).values())
            )
            campaign_id = campaign.id
            await gen1.close()
            return campaign_id

        campaign_id = asyncio.run(generation_one())

        # Daemon death is not cancellation: the journal holds the submission
        # but no terminal record.
        records = _service_journal_records(journal_dir)
        assert [r["kind"] for r in records if r.get("id") == campaign_id] == ["campaign"]
        journaled_before_restart = _journaled_indices(journal_dir / "durable")
        assert len(journaled_before_restart) >= 4  # 2 shards x >= 2 cells

        # Generation 2: un-freeze the workers, restart with resume.
        stall_marker.write_text("go\n", encoding="utf8")
        monkeypatch.setenv("SVC_TEST_EXEC_LOG", str(gen2_log))
        gen2 = _service(journal_dir, worker_script, resume=True)

        async def generation_two():
            adopted = await gen2.start()
            try:
                assert [campaign.id for campaign in adopted] == [campaign_id]
                campaign = adopted[0]
                assert campaign.adopted
                await _wait(campaign)
                return campaign
            finally:
                await gen2.close()

        campaign = asyncio.run(generation_two())

        assert campaign.state == "merged"
        assert campaign.report.result == EXPECTED_RESULT
        # No journaled cell was recomputed: generation 2 executed exactly the
        # complement of what generation 1 had journaled.
        gen2_executed = {int(value) for value in _executed_values(gen2_log)}
        assert gen2_executed == set(range(8)) - journaled_before_restart
        # Every first attempt of the re-adopted campaign ran with --resume.
        for outcome in campaign.report.outcomes:
            assert outcome.attempts[0].resumed


class TestCancellation:
    def test_cancel_group_kills_shards_journals_and_allows_resubmit(
        self, tmp_path, worker_script, monkeypatch
    ):
        """Cancelling an in-flight campaign kills its shard processes (no
        further journal growth), writes a ``cancelled`` record with the
        surviving per-shard counts, frees the label, and a resubmission
        resumes from the kept journals instead of recomputing them."""
        journal_dir = tmp_path / "journals"
        exec_log = tmp_path / "resubmit.exec.jsonl"
        monkeypatch.setenv("SVC_TEST_SLEEP", "0.2")
        service = _service(journal_dir, worker_script)

        async def scenario():
            await service.start()
            try:
                campaign = await service.submit(CampaignSpec("orch", label="doomed", shards=2))
                await _poll_until(
                    lambda: sum(service.progress(campaign).values()) >= 2
                )
                cancelled = await service.cancel("doomed")  # by label
                assert cancelled is campaign
                assert campaign.state == "cancelled"
                assert campaign.task.done()

                # The shard processes are dead: journals stop growing even
                # though a live shard would journal a cell every ~0.2s.
                frozen = _journaled_indices(campaign.dir)
                await asyncio.sleep(0.6)
                assert _journaled_indices(campaign.dir) == frozen

                with pytest.raises(ServiceError, match="already cancelled"):
                    await service.cancel(campaign.id)

                # The label is free again; the resubmission resumes from the
                # journals the cancellation deliberately kept.
                monkeypatch.setenv("SVC_TEST_EXEC_LOG", str(exec_log))
                monkeypatch.setenv("SVC_TEST_SLEEP", "0")
                retry = await service.submit(CampaignSpec("orch", label="doomed", shards=2))
                await _wait(retry)
                return campaign, frozen, retry
            finally:
                await service.close()

        campaign, frozen, retry = asyncio.run(scenario())

        assert retry.state == "merged"
        assert retry.report.result == EXPECTED_RESULT
        executed = {int(value) for value in _executed_values(exec_log)}
        # Not one cell journaled before the cancel was recomputed.  (The cell
        # each shard was killed *inside* never reached its journal, so it
        # legitimately re-executes.)
        assert executed.isdisjoint(frozen)

        records = _service_journal_records(journal_dir)
        cancelled_records = [
            r for r in records if r.get("kind") == "state" and r.get("state") == "cancelled"
        ]
        assert len(cancelled_records) == 1
        record = cancelled_records[0]
        assert record["id"] == campaign.id
        assert record["error"] == "cancelled by request"
        assert sum(record["cells_completed"].values()) == len(frozen)


class TestServiceAPISeam:
    def test_client_drives_full_campaign_lifecycle_over_unix_socket(
        self, tmp_path, worker_script
    ):
        """The client/server seam: submit, status, tail-to-completion and
        duplicate-refusal all through the Unix-socket HTTP API, with the
        synchronous client running in worker threads against the in-process
        daemon."""
        journal_dir = tmp_path / "journals"
        socket_path = tmp_path / "service.sock"
        service = _service(journal_dir, worker_script)
        api = ServiceAPI(service, socket_path)
        client = ServiceClient(socket_path, timeout=60)

        async def scenario():
            await service.start()
            await api.start()
            try:
                health = await asyncio.to_thread(client.health)
                assert health["status"] == "ok"
                assert health["total_slots"] is None  # default unbounded local

                created = await asyncio.to_thread(
                    client.submit, {"experiment_id": "orch", "label": "api", "shards": 2}
                )
                assert created["id"] == "c0001"
                assert created["state"] in ("queued", "planning", "running")

                events = await asyncio.to_thread(lambda: list(client.tail("api")))
                assert events[0]["event"] == "snapshot"
                assert events[-1] == {
                    "event": "state",
                    "id": "c0001",
                    "label": "api",
                    "state": "merged",
                    "fingerprint": service.campaigns["c0001"].fingerprint,
                    "error": None,
                }
                progress = [e for e in events if e["event"] == "progress"]
                assert progress and progress[-1]["cells"] >= 1

                status = await asyncio.to_thread(client.status, "api")
                assert status["state"] == "merged"
                assert status["shards"] == {"1/2": 4, "2/2": 4}

                listing = await asyncio.to_thread(client.campaigns)
                assert [c["id"] for c in listing] == ["c0001"]

                # Tail of an already-finished campaign: snapshot then state.
                replay = await asyncio.to_thread(lambda: list(client.tail("c0001")))
                assert replay[0]["event"] == "snapshot"
                assert replay[-1]["event"] == "state"

                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(client.status, "nonexistent")
                assert excinfo.value.status == 404

                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(
                        client.submit, {"experiment_id": "orch", "shards": 0}
                    )
                assert excinfo.value.status == 400
            finally:
                await api.close()
                await service.close()

        asyncio.run(scenario())

    def test_duplicate_submit_and_cancel_through_api(
        self, tmp_path, worker_script, monkeypatch
    ):
        monkeypatch.setenv("SVC_TEST_SLEEP", "0.2")
        socket_path = tmp_path / "service.sock"
        service = _service(tmp_path / "journals", worker_script)
        api = ServiceAPI(service, socket_path)
        client = ServiceClient(socket_path, timeout=60)

        async def scenario():
            await service.start()
            await api.start()
            try:
                created = await asyncio.to_thread(
                    client.submit, {"experiment_id": "orch", "label": "busy"}
                )
                await _poll_until(
                    lambda: service.campaigns[created["id"]].fingerprint is not None
                )
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(
                        client.submit, {"experiment_id": "orch", "label": "busy"}
                    )
                assert excinfo.value.status == 409
                message = str(excinfo.value)
                assert "already in flight" in message
                assert service.campaigns[created["id"]].fingerprint in message

                cancelled = await asyncio.to_thread(client.cancel, "busy")
                assert cancelled["state"] == "cancelled"
                # Cancelling a finished campaign is a 409 through the API.
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(client.cancel, created["id"])
                assert excinfo.value.status == 409
            finally:
                await api.close()
                await service.close()

        asyncio.run(scenario())


class _DaemonThread:
    """Run a service + API on their own event loop in a background thread.

    This is how the synchronous client *CLI commands* get a live daemon to
    talk to from the test's main thread — the same process topology as a real
    deployment (daemon event loop on one side of the socket, blocking client
    on the other), minus the fork.
    """

    def __init__(self, service: CampaignService, api: ServiceAPI) -> None:
        self.service = service
        self.api = api
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.ready = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self._start())
        self.ready.set()
        self.loop.run_forever()
        self.loop.run_until_complete(self._stop())
        self.loop.close()

    async def _start(self) -> None:
        await self.service.start()
        await self.api.start()

    async def _stop(self) -> None:
        await self.api.close()
        await self.service.close()

    def __enter__(self) -> "_DaemonThread":
        self.thread.start()
        assert self.ready.wait(30), "daemon thread never came up"
        return self

    def __exit__(self, *exc_info) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(60)


class TestClientCommandLine:
    def test_submit_tail_status_cancel_commands_against_live_daemon(
        self, tmp_path, worker_script, capsys, monkeypatch
    ):
        """The thin client CLI against a live daemon: ``submit`` prints the
        id, ``tail`` streams to the merged state and exits 0, ``status``
        renders both the listing and the per-campaign JSON, and ``cancel``
        reports the journaled cells it kept."""
        journal_dir = tmp_path / "journals"
        socket_path = tmp_path / "service.sock"
        service = _service(journal_dir, worker_script)
        api = ServiceAPI(service, socket_path)
        sock = ["--socket", str(socket_path)]

        with _DaemonThread(service, api):
            assert main(["submit", "orch", "--label", "first", "--shards", "2"] + sock) == 0
            out = capsys.readouterr().out
            assert "[submit] c0001 first:" in out

            assert main(["tail", "first"] + sock) == 0  # exit 0 iff merged
            tail_lines = [
                json.loads(line) for line in capsys.readouterr().out.splitlines() if line
            ]
            assert tail_lines[0]["event"] == "snapshot"
            assert tail_lines[-1]["event"] == "state"
            assert tail_lines[-1]["state"] == "merged"

            assert main(["status"] + sock) == 0
            listing = capsys.readouterr().out
            assert "c0001" in listing and "merged" in listing and "cells=8" in listing

            assert main(["status", "c0001"] + sock) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["label"] == "first"
            assert status["state"] == "merged"

            # A slow second campaign, cancelled through the CLI.
            monkeypatch.setenv("SVC_TEST_SLEEP", "0.2")
            assert main(["submit", "orch", "--label", "second"] + sock) == 0
            capsys.readouterr()
            assert main(["cancel", "second"] + sock) == 0
            out = capsys.readouterr().out
            assert "[cancel] c0002 second: cancelled" in out
            assert "kept for a future resume" in out

            # Tailing a cancelled campaign ends on its terminal state: exit 1.
            assert main(["tail", "second"] + sock) == 1
            capsys.readouterr()

        # The daemon journaled both campaigns' fates for the next generation.
        kinds = [
            (record.get("kind"), record.get("state"))
            for record in _service_journal_records(journal_dir)
        ]
        assert ("state", "merged") in kinds
        assert ("state", "cancelled") in kinds

        assert (journal_dir / "first" / "orch.txt").read_bytes() == EXPECTED_PAYLOAD


class TestChaosTailDisconnect:
    def test_rude_tail_disconnects_leave_daemon_serving_without_fd_leak(
        self, tmp_path, worker_script, monkeypatch
    ):
        """Chaos drill 3: clients that connect to the tail stream, read a
        little and slam the connection shut must not leak file descriptors
        in the daemon or disturb the campaign — afterwards the daemon still
        answers /health and the campaign still merges byte-identically."""
        monkeypatch.setenv("SVC_TEST_SLEEP", "0.25")
        socket_path = tmp_path / "service.sock"
        service = _service(tmp_path / "journals", worker_script)
        api = ServiceAPI(service, socket_path)
        client = ServiceClient(socket_path, timeout=60)

        def rude_tail():
            connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            connection.settimeout(10)
            try:
                connection.connect(str(socket_path))
                connection.sendall(
                    b"GET /campaigns/leaky/tail HTTP/1.1\r\n"
                    b"Host: localhost\r\n\r\n"
                )
                connection.recv(512)  # read the head + a little, then vanish
            finally:
                connection.close()

        def open_fds() -> int:
            return len(os.listdir("/proc/self/fd"))

        async def scenario():
            await service.start()
            await api.start()
            try:
                campaign = await service.submit(
                    CampaignSpec("orch", label="leaky", shards=2)
                )
                await _poll_until(lambda: campaign.state == "running")
                baseline = open_fds()
                for _ in range(5):
                    await asyncio.to_thread(rude_tail)
                # Every rude connection's fd must be reclaimed.  (Shard
                # subprocesses finishing can only *lower* the count below
                # the baseline, never mask a leak.)
                await _poll_until(lambda: open_fds() <= baseline, timeout=30)

                health = await asyncio.to_thread(client.health)
                assert health["status"] == "ok"
                await _wait(campaign)
                return campaign
            finally:
                await api.close()
                await service.close()

        campaign = asyncio.run(scenario())
        assert campaign.state == "merged"
        assert campaign.report.result == EXPECTED_RESULT
        assert (campaign.dir / "orch.txt").read_bytes() == EXPECTED_PAYLOAD
