"""Tests for the queryable result store (sqlite compaction of journals).

The guarantees under test mirror docs/RESULTS.md: ingest is idempotent and
incremental (re-ingesting an unchanged directory inserts zero rows; a grown
shard journal replaces exactly its own rows), truncated journal tails are
tolerated exactly as ``runtime/journal.py`` tolerates them, mixed plan
fingerprints are refused naming the offending files, and a ``cells`` query
round-trips the journal payload byte-for-byte.
"""

import json

import pytest

from repro.runtime.cells import CampaignPlan, CellTask
from repro.runtime.journal import FINGERPRINT_VERSION, CampaignJournal
from repro.runtime.sharding import parse_shard_journal_name
from repro.runtime.store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreError,
    format_rows,
    read_journal_records,
)


def _double(value: float) -> float:
    return value * 2.0


def _plan(count: int = 6) -> CampaignPlan:
    cells = [
        CellTask(
            experiment_id="journaled",
            key=("ber", index % 2, "cell", index),
            fn=_double,
            kwargs={"value": float(index)},
        )
        for index in range(count)
    ]
    return CampaignPlan(experiment_id="journaled", cells=cells, merge=list)


def _write_journal(path, plan, indices=None, shard=None):
    """Run the given cells of ``plan`` straight into a journal file."""
    journal = CampaignJournal(path, plan, shard=shard)
    journal.start({})
    for index in indices if indices is not None else range(plan.cell_count):
        journal.record(index, plan.cells[index].run())
    journal.close()
    return journal


def _header_line(path) -> dict:
    return json.loads(path.read_text(encoding="utf8").splitlines()[0])


REPORT = {
    "experiment_id": "journaled",
    "shard_count": 2,
    "cell_count": 6,
    "max_retries": 2,
    "backends": ["local[slots=1]", "slurm[slots=1]"],
    "merged": True,
    "duration_seconds": 3.25,
    "shards": [
        {
            "shard": "1/2",
            "assigned_cells": 3,
            "succeeded": True,
            "attempts": [
                {
                    "number": 1,
                    "duration_seconds": 0.5,
                    "returncode": -9,
                    "cells_completed": 1,
                    "resumed": False,
                    "reason": "killed by stall timeout",
                    "backend": "local",
                },
                {
                    "number": 2,
                    "duration_seconds": 1.0,
                    "returncode": 0,
                    "cells_completed": 3,
                    "resumed": True,
                    "reason": None,
                    "backend": "slurm",
                },
            ],
        },
        {
            "shard": "2/2",
            "assigned_cells": 3,
            "succeeded": True,
            "attempts": [
                {
                    "number": 1,
                    "duration_seconds": 1.5,
                    "returncode": 0,
                    "cells_completed": 3,
                    "resumed": False,
                    "reason": None,
                    "backend": "local",
                }
            ],
        },
    ],
}


class TestIngestRoundTrip:
    def test_cells_query_matches_journal_payload_byte_for_byte(self, tmp_path):
        plan = _plan()
        path = tmp_path / "journaled.jsonl"
        _write_journal(path, plan)
        expected = CampaignJournal(path, plan).load()
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.ingest(tmp_path)
            _, rows = store.query_cells("journaled")
        assert [row[0] for row in rows] == sorted(expected)
        # The acceptance bar: reassembling the queried outputs in plan order
        # reproduces the journal's payload byte-for-byte.
        queried = json.dumps([row[2] for row in rows], sort_keys=True)
        journaled = json.dumps(
            [expected[index] for index in sorted(expected)], sort_keys=True
        )
        assert queried == journaled

    def test_shard_journals_and_merged_journal_dedupe(self, tmp_path):
        """Byte-identity makes every copy of a cell equal; the store returns
        each cell exactly once even with merged + shard journals present."""
        plan = _plan()
        _write_journal(tmp_path / "journaled.jsonl", plan)
        for index in (1, 2):
            spec_indices = [i for i in range(plan.cell_count) if i % 2 == index - 1]
            _write_journal(
                tmp_path / f"journaled.shard-{index}-of-2.jsonl",
                plan,
                indices=spec_indices,
                shard=(index, 2),
            )
        with ResultStore(tmp_path / "store.sqlite") as store:
            report = store.ingest(tmp_path)
            assert len(report.ingested) == 3
            _, rows = store.query_cells("journaled")
        assert [row[0] for row in rows] == list(range(plan.cell_count))
        assert [row[2] for row in rows] == [float(i) * 2.0 for i in range(plan.cell_count)]

    def test_campaign_row_carries_fingerprint_provenance(self, tmp_path):
        plan = _plan()
        path = tmp_path / "journaled.jsonl"
        _write_journal(path, plan)
        header = _header_line(path)
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.ingest(tmp_path)
            columns, rows = store.query_campaigns()
        record = dict(zip(columns, rows[0]))
        assert record["fingerprint"] == header["fingerprint"]
        assert record["fingerprint_version"] == FINGERPRINT_VERSION
        assert record["cells_ingested"] == plan.cell_count

    def test_slice_groups_by_key_coordinate(self, tmp_path):
        plan = _plan()
        _write_journal(tmp_path / "journaled.jsonl", plan)
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.ingest(tmp_path)
            columns, rows = store.query_slice("journaled", coordinate="ber")
        by_ber = {row[0]: dict(zip(columns, row)) for row in rows}
        # cells 0,2,4 have ber=0 (outputs 0,4,8); cells 1,3,5 ber=1 (2,6,10)
        assert by_ber[0]["cells"] == 3
        assert by_ber[0]["mean"] == pytest.approx(4.0)
        assert by_ber[1]["min"] == 2.0
        assert by_ber[1]["max"] == 10.0


class TestIngestIdempotence:
    def test_reingest_is_a_no_op(self, tmp_path):
        _write_journal(tmp_path / "journaled.jsonl", _plan())
        (tmp_path / "journaled.orchestrator.json").write_text(json.dumps(REPORT))
        with ResultStore(tmp_path / "store.sqlite") as store:
            first = store.ingest(tmp_path)
            assert first.rows_added > 0
            _, before = store.sql("SELECT COUNT(*) FROM cells")
            again = store.ingest(tmp_path)
            _, after = store.sql("SELECT COUNT(*) FROM cells")
        assert again.rows_added == 0
        assert again.ingested == []
        assert again.skipped == first.scanned
        assert before == after

    def test_grown_journal_reingests_only_itself(self, tmp_path):
        """Incremental: a resumed shard journal that grew replaces exactly its
        own rows; untouched files are skipped."""
        plan = _plan()
        path = tmp_path / "journaled.jsonl"
        journal = CampaignJournal(path, plan)
        journal.start({})
        for index in range(3):
            journal.record(index, plan.cells[index].run())
        other = tmp_path / "other.jsonl"
        _write_journal(other, _plan(2))
        store = ResultStore(tmp_path / "store.sqlite")
        store.ingest(tmp_path)
        for index in range(3, plan.cell_count):
            journal.record(index, plan.cells[index].run())
        journal.close()
        report = store.ingest(tmp_path)
        assert report.ingested == [str(path)]
        assert report.skipped >= 1
        _, rows = store.query_cells("journaled")
        assert len(rows) == plan.cell_count
        store.close()

    def test_second_store_instance_sees_the_same_rows(self, tmp_path):
        _write_journal(tmp_path / "journaled.jsonl", _plan())
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.ingest(tmp_path)
        with ResultStore(tmp_path / "store.sqlite") as store:
            assert store.ingest(tmp_path).rows_added == 0
            _, rows = store.query_cells("journaled")
            assert len(rows) == 6


class TestCorruptionTolerance:
    def test_truncated_tail_is_discarded_like_journal_load(self, tmp_path):
        """A mid-write kill leaves an unterminated last line; the store keeps
        everything before it, exactly as CampaignJournal.load does."""
        plan = _plan()
        path = tmp_path / "journaled.jsonl"
        _write_journal(path, plan, indices=range(4))
        with open(path, "a", encoding="utf8") as handle:
            handle.write('{"kind": "cell", "index": 4, "ou')  # no newline
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.ingest(tmp_path)
            _, rows = store.query_cells("journaled")
        assert [row[0] for row in rows] == [0, 1, 2, 3]

    def test_terminated_garbage_line_ends_the_scan(self, tmp_path):
        plan = _plan()
        path = tmp_path / "journaled.jsonl"
        _write_journal(path, plan, indices=range(2))
        with open(path, "a", encoding="utf8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"kind": "cell", "index": 5, "output": 1.0}) + "\n")
        header, cells = read_journal_records(path)
        assert header is not None
        assert [record["index"] for record in cells] == [0, 1]

    def test_headerless_file_skipped_with_warning(self, tmp_path):
        (tmp_path / "partial.jsonl").write_text('{"kind": "head', encoding="utf8")
        _write_journal(tmp_path / "journaled.jsonl", _plan(2))
        with ResultStore(tmp_path / "store.sqlite") as store:
            report = store.ingest(tmp_path)
        assert report.cells_added == 2
        assert any("partial.jsonl" in warning for warning in report.warnings)

    def test_version1_journal_skipped_with_warning(self, tmp_path):
        stale = tmp_path / "old.jsonl"
        stale.write_text(
            json.dumps(
                {"kind": "header", "experiment_id": "old", "cell_count": 1, "fingerprint": "x"}
            )
            + "\n"
            + json.dumps({"kind": "cell", "index": 0, "key": ["a", 1], "output": 1.0})
            + "\n",
            encoding="utf8",
        )
        with ResultStore(tmp_path / "store.sqlite") as store:
            report = store.ingest(tmp_path)
        assert report.cells_added == 0
        assert any("version-1" in warning for warning in report.warnings)

    def test_mixed_fingerprints_rejected_naming_the_files(self, tmp_path):
        """A merged journal beside a stale shard journal from a different plan
        must abort the ingest, not blend the two plans' cells."""
        plan = _plan()
        _write_journal(tmp_path / "journaled.jsonl", plan)
        stale = tmp_path / "journaled.shard-1-of-2.jsonl"
        header = _header_line(tmp_path / "journaled.jsonl")
        stale_header = dict(header, fingerprint="f" * 64, shard=[1, 2])
        stale.write_text(
            json.dumps(stale_header)
            + "\n"
            + json.dumps({"kind": "cell", "index": 0, "key": ["ber", 0], "output": 99.0})
            + "\n",
            encoding="utf8",
        )
        with ResultStore(tmp_path / "store.sqlite") as store:
            with pytest.raises(StoreError, match="mixed plan fingerprints") as excinfo:
                store.ingest(tmp_path)
        assert "journaled.shard-1-of-2.jsonl" in str(excinfo.value)
        assert "journaled.jsonl" in str(excinfo.value)

    def test_unreadable_report_skipped_with_warning(self, tmp_path):
        (tmp_path / "broken.orchestrator.json").write_text("{not json", encoding="utf8")
        with ResultStore(tmp_path / "store.sqlite") as store:
            report = store.ingest(tmp_path)
        assert report.attempts_added == 0
        assert any("broken.orchestrator.json" in warning for warning in report.warnings)


class TestReportsAndTimings:
    def test_attempts_and_timings_queries(self, tmp_path):
        (tmp_path / "journaled.orchestrator.json").write_text(json.dumps(REPORT))
        with ResultStore(tmp_path / "store.sqlite") as store:
            ingest = store.ingest(tmp_path)
            assert ingest.attempts_added == 3
            columns, attempts = store.query_attempts("journaled")
            _, timings = store.query_timings()
        first = dict(zip(columns, attempts[0]))
        assert first["shard"] == "1/2"
        assert first["backend"] == "local"
        assert first["succeeded"] == 0
        assert first["reason"] == "killed by stall timeout"
        by_backend = {row[0]: row for row in timings}
        assert by_backend["local"][1] == 2  # two local attempts
        assert by_backend["slurm"][2] == 1  # the slurm one succeeded

    def test_rewritten_report_replaces_its_rows(self, tmp_path):
        path = tmp_path / "journaled.orchestrator.json"
        path.write_text(json.dumps(REPORT))
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.ingest(tmp_path)
            trimmed = dict(REPORT, shards=REPORT["shards"][:1])
            path.write_text(json.dumps(trimmed) + "   ")  # size change
            store.ingest(tmp_path)
            _, rows = store.sql("SELECT COUNT(*) FROM attempts")
        assert rows == [(2,)]


class TestGuards:
    def test_missing_directory_raises(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite") as store:
            with pytest.raises(StoreError, match="does not exist"):
                store.ingest(tmp_path / "nope")

    def test_unknown_label_names_the_known_ones(self, tmp_path):
        _write_journal(tmp_path / "journaled.jsonl", _plan(2))
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.ingest(tmp_path)
            with pytest.raises(StoreError, match="journaled"):
                store.query_cells("fig6a")

    def test_schema_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "store.sqlite"
        ResultStore(path).close()
        import sqlite3

        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        with pytest.raises(StoreError, match="schema version"):
            ResultStore(path)

    def test_bad_sql_is_a_store_error(self, tmp_path):
        with ResultStore(tmp_path / "store.sqlite") as store:
            with pytest.raises(StoreError, match="SQL query failed"):
                store.sql("SELECT * FROM no_such_table")


class TestFormatting:
    COLUMNS = ["cell_index", "output"]
    ROWS = [(0, 1.5), (1, None)]

    def test_table(self):
        text = format_rows(self.COLUMNS, self.ROWS, "table")
        assert "cell_index" in text
        assert "(2 row(s))" in text
        assert "-" in text.splitlines()[-2]  # None renders as a dash

    def test_json_and_ndjson(self):
        decoded = json.loads(format_rows(self.COLUMNS, self.ROWS, "json"))
        assert decoded[0] == {"cell_index": 0, "output": 1.5}
        lines = format_rows(self.COLUMNS, self.ROWS, "ndjson").splitlines()
        assert [json.loads(line)["cell_index"] for line in lines] == [0, 1]

    def test_unknown_format_rejected(self):
        with pytest.raises(StoreError, match="unknown output format"):
            format_rows(self.COLUMNS, self.ROWS, "yaml")


class TestShardNameParsing:
    def test_shard_names_round_trip(self):
        label, spec = parse_shard_journal_name("fig6a.shard-2-of-4.jsonl")
        assert label == "fig6a"
        assert (spec.index, spec.count) == (2, 4)
        assert spec.journal_name("fig6a") == "fig6a.shard-2-of-4.jsonl"

    @pytest.mark.parametrize(
        "name",
        ["fig6a.jsonl", "fig6a.shard-0-of-4.jsonl", "fig6a.shard-5-of-4.jsonl", "x.txt"],
    )
    def test_non_shard_names_return_none(self, name):
        assert parse_shard_journal_name(name) is None
