"""Tests for streaming result journals and campaign resume.

The central guarantee: a campaign killed partway through can be rerun with
``resume=True`` and the merged payload is byte-identical to an uninterrupted
run — whether the interruption was a raising cell, a killed worker, or a
truncated journal line from a mid-write kill.
"""

import json
import logging
import os

import pytest

from repro.core.config import GridWorldScale
from repro.runtime.cells import CampaignPlan, CellTask
from repro.runtime.journal import (
    FINGERPRINT_VERSION,
    CampaignJournal,
    JournalProgress,
    count_completed_cells,
    plan_fingerprint,
)
from repro.runtime.residency import PolicyRef
from repro.runtime.runner import CampaignRunner, CellExecutionError


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def _double(value: float) -> float:
    return value * 2.0


def _flaky(value: float, sentinel: str) -> float:
    if os.path.exists(sentinel):
        raise RuntimeError("injected interruption")
    return value * 2.0


def _die_if(value: float, sentinel: str) -> float:
    if os.path.exists(sentinel):
        os._exit(1)
    return value * 2.0


def _plan(count: int = 6, fn=_double, extra=None) -> CampaignPlan:
    cells = [
        CellTask(
            experiment_id="journaled",
            key=("cell", index),
            fn=fn,
            kwargs={"value": float(index), **(extra or {})},
        )
        for index in range(count)
    ]
    return CampaignPlan(experiment_id="journaled", cells=cells, merge=list)


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        plan = _plan(3)
        journal = CampaignJournal(tmp_path / "j.jsonl", plan)
        journal.start({})
        for index in range(3):
            journal.record(index, plan.cells[index].run())
        journal.close()
        loaded = CampaignJournal(tmp_path / "j.jsonl", plan).load()
        assert loaded == {0: 0.0, 1: 2.0, 2: 4.0}

    def test_decoded_output_returned_by_record(self, tmp_path):
        import numpy as np

        journal = CampaignJournal(tmp_path / "j.jsonl", _plan(1))
        journal.start({})
        decoded = journal.record(0, (np.float64(1.5), np.int64(3)))
        journal.close()
        # numpy scalars and tuples normalize to JSON-native values.
        assert decoded == [1.5, 3]
        assert type(decoded[0]) is float and type(decoded[1]) is int

    def test_missing_file_loads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl", _plan()).load() == {}

    def test_fingerprint_mismatch_invalidates(self, tmp_path):
        plan = _plan(3)
        journal = CampaignJournal(tmp_path / "j.jsonl", plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.close()
        other = _plan(3, extra={"sentinel": "different-grid"}, fn=_flaky)
        assert plan_fingerprint(other) != plan_fingerprint(plan)
        assert CampaignJournal(tmp_path / "j.jsonl", other).load() == {}

    def test_fingerprint_mismatch_is_reported_not_silent(self, tmp_path, caplog):
        """An existing-but-rejected journal must name the file and the reason."""
        plan = _plan(3)
        journal = CampaignJournal(tmp_path / "j.jsonl", plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.close()
        other = _plan(3, extra={"sentinel": "different-grid"}, fn=_flaky)
        reader = CampaignJournal(tmp_path / "j.jsonl", other)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.journal"):
            assert reader.load() == {}
        assert reader.invalid_reason is not None
        assert "fingerprint mismatch" in reader.invalid_reason
        assert str(tmp_path / "j.jsonl") in caplog.text
        assert "recomputed" in caplog.text

    def test_missing_file_sets_no_invalid_reason(self, tmp_path):
        journal = CampaignJournal(tmp_path / "absent.jsonl", _plan())
        assert journal.load() == {}
        assert journal.invalid_reason is None

    def test_accepted_journal_sets_no_invalid_reason(self, tmp_path):
        plan = _plan(2)
        journal = CampaignJournal(tmp_path / "j.jsonl", plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.close()
        reader = CampaignJournal(tmp_path / "j.jsonl", _plan(2))
        assert reader.load() == {0: 0.0}
        assert reader.invalid_reason is None

    def test_unversioned_v1_journal_reported_as_stale(self, tmp_path, caplog):
        """A PR 2 journal (no fingerprint_version field) must be detected and
        reported as written under the old, machine-dependent scheme."""
        plan = _plan(2)
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["fingerprint_version"]
        path.write_text("\n".join([json.dumps(header), *lines[1:]]) + "\n")

        reader = CampaignJournal(path, plan)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.journal"):
            assert reader.load() == {}
        assert "version-1" in reader.invalid_reason
        assert str(FINGERPRINT_VERSION) in reader.invalid_reason

    def test_future_fingerprint_version_reported(self, tmp_path):
        plan = _plan(2)
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, plan)
        journal.start({})
        journal.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint_version"] = FINGERPRINT_VERSION + 1
        path.write_text(json.dumps(header) + "\n")
        reader = CampaignJournal(path, plan)
        assert reader.load() == {}
        assert f"fingerprint version {FINGERPRINT_VERSION + 1}" in reader.invalid_reason

    def test_shard_journal_rejected_by_whole_plan_reader(self, tmp_path):
        plan = _plan(4)
        path = tmp_path / "j.jsonl"
        shard_journal = CampaignJournal(path, plan, shard=(1, 2))
        shard_journal.start({})
        shard_journal.record(0, 0.0)
        shard_journal.close()
        whole = CampaignJournal(path, _plan(4))
        assert whole.load() == {}
        assert "shard 1/2" in whole.invalid_reason
        # ... and the shard-coordinate reader accepts it.
        again = CampaignJournal(path, _plan(4), shard=(1, 2))
        assert again.load() == {0: 0.0}


class TestPortableFingerprints:
    """Journals must survive a policy-cache move or a machine change: the
    fingerprint digests PolicyRef as (key, field), never its cache_dir."""

    @staticmethod
    def _ref_plan(cache_dir: str, ref_key: str = "drone-tiny") -> CampaignPlan:
        cells = [
            CellTask(
                experiment_id="portable",
                key=("cell", index),
                fn=_double,
                kwargs={
                    "value": float(index),
                    "pretrained": PolicyRef(cache_dir=cache_dir, key=ref_key, field="policy"),
                },
            )
            for index in range(3)
        ]
        return CampaignPlan(experiment_id="portable", cells=cells, merge=list)

    def test_cache_dir_excluded_from_fingerprint(self):
        plan_a = self._ref_plan("/machine-a/cache")
        plan_b = self._ref_plan("/machine-b/elsewhere")
        assert plan_fingerprint(plan_a) == plan_fingerprint(plan_b)

    def test_ref_key_still_fingerprint_relevant(self):
        # Only the machine-local location is excluded; the cache *entry*
        # (which encodes scale/seed/datatype) still invalidates.
        assert plan_fingerprint(self._ref_plan("/cache", "drone-tiny")) != plan_fingerprint(
            self._ref_plan("/cache", "drone-paper")
        )

    def test_journal_written_under_other_cache_dir_is_accepted(self, tmp_path):
        """The PR 3 bug: a journal written on machine A was silently
        invalidated on machine B because the absolute cache path leaked into
        the digest via repr()."""
        writer_plan = self._ref_plan(str(tmp_path / "cache-a"))
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, writer_plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.record(1, 2.0)
        journal.close()

        reader_plan = self._ref_plan(str(tmp_path / "cache-b"))
        reader = CampaignJournal(path, reader_plan)
        assert reader.load() == {0: 0.0, 1: 2.0}
        assert reader.invalid_reason is None


class TestKeyNormalization:
    def test_nested_tuple_key_survives_round_trip(self, tmp_path):
        """Regression: load() used to compare against list(cell.key), which
        converts only the outer tuple — a nested tuple inside a key could
        never match its JSON round-tripped form, so those cells were silently
        recomputed on every resume."""
        cells = [
            CellTask(
                experiment_id="nested",
                key=("cell", index, ("coords", index, index + 1)),
                fn=_double,
                kwargs={"value": float(index)},
            )
            for index in range(3)
        ]
        plan = CampaignPlan(experiment_id="nested", cells=cells, merge=list)
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, plan)
        journal.start({})
        for index in range(3):
            journal.record(index, plan.cells[index].run())
        journal.close()
        assert CampaignJournal(path, plan).load() == {0: 0.0, 1: 2.0, 2: 4.0}

    def test_nested_key_resume_skips_journaled_cells(self, tmp_path):
        cells = [
            CellTask("nested", ("cell", (index,)), _double, {"value": float(index)})
            for index in range(4)
        ]

        def plan():
            return CampaignPlan("nested", list(cells), merge=list)

        journal = CampaignJournal(tmp_path / "j.jsonl", plan())
        journal.start({})
        journal.record(0, 0.0)
        journal.record(1, 2.0)
        journal.close()
        runner = CampaignRunner(workers=1, resume=True)
        result = runner.run_plan(plan(), journal=CampaignJournal(tmp_path / "j.jsonl", plan()))
        assert result == [0.0, 2.0, 4.0, 6.0]
        # The two journaled cells were not re-recorded.
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 1 + 4

    def test_truncated_trailing_line_discarded(self, tmp_path):
        plan = _plan(3)
        journal = CampaignJournal(tmp_path / "j.jsonl", plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.record(1, 2.0)
        journal.close()
        path = tmp_path / "j.jsonl"
        path.write_text(path.read_text() + '{"kind": "cell", "index": 2, "out')
        assert CampaignJournal(path, plan).load() == {0: 0.0, 1: 2.0}

    def test_record_requires_start(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl", _plan(1))
        with pytest.raises(RuntimeError, match="not open"):
            journal.record(0, 1.0)

    def test_resume_truncates_partial_tail(self, tmp_path):
        """A resumed run must not append onto a partial trailing write.

        Otherwise the first resumed record concatenates onto the garbage
        tail, producing one permanently unparseable line that hides a
        completed cell from every later resume.
        """
        plan = _plan(4)
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.close()
        with path.open("a", encoding="utf8") as handle:
            handle.write('{"kind": "cell", "inde')  # kill -9 mid-write

        second = CampaignJournal(path, plan)
        completed = second.load()
        assert completed == {0: 0.0}
        second.start(completed)
        second.record(1, 2.0)
        second.close()
        # Every record — pre-kill and post-resume — is loadable afterwards.
        assert CampaignJournal(path, plan).load() == {0: 0.0, 1: 2.0}

    def test_unterminated_final_line_not_trusted(self, tmp_path):
        plan = _plan(2)
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, plan)
        journal.start({})
        journal.record(0, 0.0)
        journal.close()
        # A parseable but unterminated tail is still a partial write.
        with path.open("a", encoding="utf8") as handle:
            handle.write('{"kind": "cell", "index": 1, "key": ["cell", 1], "output": 2.0}')
        assert CampaignJournal(path, plan).load() == {0: 0.0}


class TestProgressProbes:
    """The orchestrator's journal tailing: cheap, incremental, kill-tolerant."""

    @staticmethod
    def _cell_line(index: int) -> str:
        return json.dumps({"kind": "cell", "index": index, "key": ["cell", index],
                           "output": float(index)}) + "\n"

    def test_count_ignores_missing_file_and_header(self, tmp_path):
        path = tmp_path / "x.jsonl"
        assert count_completed_cells(path) == 0
        path.write_text(json.dumps({"kind": "header"}) + "\n" + self._cell_line(0))
        assert count_completed_cells(path) == 1

    def test_count_stops_at_partial_trailing_line(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(
            json.dumps({"kind": "header"}) + "\n" + self._cell_line(0)
            + '{"kind": "cell", "ind'  # unterminated mid-write tail
        )
        assert count_completed_cells(path) == 1

    def test_incremental_probe_reads_only_new_bytes(self, tmp_path):
        path = tmp_path / "x.jsonl"
        progress = JournalProgress(path)
        assert progress.poll() == 0  # file does not exist yet
        path.write_text(json.dumps({"kind": "header"}) + "\n")
        assert progress.poll() == 0
        with path.open("a") as handle:
            handle.write(self._cell_line(0))
        assert progress.poll() == 1
        # A partial trailing write is not counted until its newline lands.
        with path.open("a") as handle:
            handle.write('{"kind": "cell", "index": 1')
        assert progress.poll() == 1
        with path.open("a") as handle:
            handle.write(', "key": ["cell", 1], "output": 1.0}\n')
        assert progress.poll() == 2

    def test_incremental_probe_rescans_after_truncation(self, tmp_path):
        """A retry's resume truncates the partial tail (or rewrites the file
        entirely); the prober must rescan instead of keeping a stale count."""
        path = tmp_path / "x.jsonl"
        progress = JournalProgress(path)
        path.write_text(
            json.dumps({"kind": "header"}) + "\n"
            + self._cell_line(0) + self._cell_line(1) + self._cell_line(2)
        )
        assert progress.poll() == 3
        path.write_text(json.dumps({"kind": "header"}) + "\n" + self._cell_line(0))
        assert progress.poll() == 1

    def test_incremental_probe_matches_one_shot_count(self, tmp_path):
        path = tmp_path / "x.jsonl"
        progress = JournalProgress(path)
        path.write_text(json.dumps({"kind": "header"}) + "\n")
        for index in range(7):
            with path.open("a") as handle:
                handle.write(self._cell_line(index))
            assert progress.poll() == count_completed_cells(path) == index + 1

    def test_probe_cost_is_linear_in_new_bytes_not_polls(self, tmp_path):
        """The regression guard for every journal-tailing loop (orchestrator
        shard driving, service progress/status/stream): polling N times over
        a growing file must read each byte once — O(new bytes) total — not
        re-read the whole file per poll (O(polls x file size))."""
        path = tmp_path / "x.jsonl"
        progress = JournalProgress(path)
        path.write_text(json.dumps({"kind": "header"}) + "\n")
        polls = 40
        for index in range(polls):
            with path.open("a") as handle:
                handle.write(self._cell_line(index))
            # Poll several times per append: idle polls see no new bytes and
            # must therefore read (essentially) nothing.
            for _ in range(3):
                progress.poll()
        total_size = path.stat().st_size
        # Every byte read exactly once.  An O(polls x size) prober would have
        # read ~60x more (3 polls x 40 appends over an ever-growing file).
        assert progress.bytes_read == total_size

    def test_probe_bytes_read_accounts_rescans_after_truncation(self, tmp_path):
        """Shrink-by-rescan is the one case a byte may be read twice — and
        only the surviving bytes, once more."""
        path = tmp_path / "x.jsonl"
        progress = JournalProgress(path)
        path.write_text(
            json.dumps({"kind": "header"}) + "\n"
            + self._cell_line(0) + self._cell_line(1) + self._cell_line(2)
        )
        assert progress.poll() == 3
        first_size = path.stat().st_size
        assert progress.bytes_read == first_size
        path.write_text(json.dumps({"kind": "header"}) + "\n" + self._cell_line(0))
        assert progress.poll() == 1
        assert progress.bytes_read == first_size + path.stat().st_size


class TestResume:
    @pytest.mark.parametrize("workers,batch_size", [(1, 1), (2, 1), (2, 3)])
    def test_resume_after_raising_cell_is_byte_consistent(self, tmp_path, workers, batch_size):
        sentinel = tmp_path / "explode"
        sentinel.touch()
        plan = lambda: _plan(6, fn=_flaky, extra={"sentinel": str(sentinel)})  # noqa: E731
        clean = _plan(6).run_serial()

        runner = CampaignRunner(
            workers=workers, batch_size=batch_size, journal_dir=tmp_path, resume=True
        )
        with pytest.raises((CellExecutionError, RuntimeError)):
            runner.run_plan(plan(), journal=runner.journal_for(plan()))
        # The journal survived the failure in a loadable state.
        journal = runner.journal_for(plan())
        completed = journal.load()
        assert all(completed[i] == float(i) * 2.0 for i in completed)

        sentinel.unlink()
        resumed = runner.run_plan(plan(), journal=runner.journal_for(plan()))
        assert resumed == clean

    def test_resume_after_killed_worker_is_byte_consistent(self, tmp_path):
        sentinel = tmp_path / "kill"
        sentinel.touch()
        plan = lambda: _plan(6, fn=_die_if, extra={"sentinel": str(sentinel)})  # noqa: E731
        runner = CampaignRunner(workers=2, journal_dir=tmp_path, resume=True)
        with pytest.raises(CellExecutionError, match="worker process died"):
            runner.run_plan(plan(), journal=runner.journal_for(plan()))
        sentinel.unlink()
        resumed = runner.run_plan(plan(), journal=runner.journal_for(plan()))
        assert resumed == _plan(6).run_serial()

    def test_resume_skips_journaled_cells(self, tmp_path):
        plan = _plan(6)
        journal = CampaignJournal(tmp_path / "j.jsonl", plan)
        journal.start({})
        for index in (0, 1, 2):
            journal.record(index, plan.cells[index].run())
        journal.close()

        runner = CampaignRunner(workers=1, resume=True)
        result = runner.run_plan(_plan(6), journal=CampaignJournal(tmp_path / "j.jsonl", _plan(6)))
        assert result == _plan(6).run_serial()
        # Only the three missing cells were appended to the journal.
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 1 + 6

    def test_without_resume_journal_is_rewritten(self, tmp_path):
        plan = _plan(4)
        runner = CampaignRunner(workers=1, journal_dir=tmp_path, resume=False)
        runner.run_plan(plan, journal=runner.journal_for(plan))
        runner.run_plan(_plan(4), journal=runner.journal_for(_plan(4)))
        lines = (tmp_path / "journaled.jsonl").read_text().splitlines()
        assert len(lines) == 1 + 4  # fresh header, not an appended duplicate


class TestArtifactResume:
    def test_fig3a_interrupted_resume_byte_identical(self, policy_cache):
        """Kill-after-N-cells on a real artifact: resume must reproduce the
        uninterrupted payload byte for byte."""
        scale = GridWorldScale.tiny()
        uninterrupted = CampaignRunner(gridworld_scale=scale, cache=policy_cache, workers=1)
        reference = _payload(uninterrupted.run("fig3a"))

        import tempfile
        from pathlib import Path

        journal_dir = Path(tempfile.mkdtemp())
        interrupted = CampaignRunner(
            gridworld_scale=scale, cache=policy_cache, workers=1, journal_dir=journal_dir
        )
        plan = interrupted.plan("fig3a")
        journal = interrupted.journal_for(plan)
        journal.start({})
        for index in range(4):  # ... then the campaign dies
            journal.record(index, plan.cells[index].run())
        journal.close()

        resumer = CampaignRunner(
            gridworld_scale=scale,
            cache=policy_cache,
            workers=2,
            batch_size=2,
            journal_dir=journal_dir,
            resume=True,
        )
        assert _payload(resumer.run("fig3a")) == reference
