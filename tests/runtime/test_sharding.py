"""Tests for multi-machine shard execution and merge-only folding.

The central guarantees: shard runs journal a disjoint strided subset of cell
indices and refuse to merge; ``merge_shards`` validates every shard journal
against the (machine-independent) plan fingerprint, reports exactly which
cells or shards are missing, and otherwise reproduces the unsharded payload
byte for byte — without executing a single cell.
"""

import json
import shutil

import pytest

from repro.runtime.cells import CampaignPlan, CellTask, shard_cell_indices
from repro.runtime.journal import CampaignJournal
from repro.runtime.runner import CampaignError, CampaignRunner
from repro.runtime.sharding import (
    ShardMergeError,
    ShardRunReport,
    ShardSpec,
    discover_shard_journals,
    load_shard_outputs,
)


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def _double(value: float) -> float:
    return value * 2.0


def _boom(value: float) -> float:
    raise AssertionError("merge-only must never execute a cell")


def _plan(count: int = 7, fn=_double) -> CampaignPlan:
    cells = [
        CellTask(
            experiment_id="sharded",
            key=("cell", index),
            fn=fn,
            kwargs={"value": float(index)},
        )
        for index in range(count)
    ]
    return CampaignPlan(experiment_id="sharded", cells=cells, merge=list)


def _run_shards(journal_dir, shard_count: int, plan_factory=_plan, **runner_kwargs):
    reports = []
    for index in range(1, shard_count + 1):
        runner = CampaignRunner(
            journal_dir=journal_dir, shard=f"{index}/{shard_count}", **runner_kwargs
        )
        plan = plan_factory()
        reports.append(runner.run_plan(plan, journal=runner.journal_for(plan)))
    return reports


class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("2/4") == ShardSpec(index=2, count=4)
        assert ShardSpec.parse(" 1/1 ") == ShardSpec(index=1, count=1)

    @pytest.mark.parametrize("text", ["", "0/2", "3/2", "a/b", "1/0", "1-2", "1/2/3", "-1/2"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_journal_name(self):
        assert ShardSpec(2, 4).journal_name("fig6a@r1") == "fig6a@r1.shard-2-of-4.jsonl"

    def test_strided_partition_spreads_heavy_rows(self):
        # Consecutive (typically similar-cost) cells land on different shards.
        assert shard_cell_indices(1, 3, 7) == [0, 3, 6]
        assert shard_cell_indices(2, 3, 7) == [1, 4]
        assert shard_cell_indices(3, 3, 7) == [2, 5]

    def test_partition_rejects_bad_indices(self):
        with pytest.raises(ValueError):
            shard_cell_indices(0, 3, 7)
        with pytest.raises(ValueError):
            shard_cell_indices(4, 3, 7)
        with pytest.raises(ValueError):
            shard_cell_indices(1, 0, 7)


class TestShardRuns:
    def test_shard_run_refuses_to_merge(self, tmp_path):
        reports = _run_shards(tmp_path, 2)
        assert all(isinstance(report, ShardRunReport) for report in reports)
        assert [report.assigned for report in reports] == [4, 3]
        assert all("merge" in report.render() for report in reports)

    def test_shard_journals_are_disjoint_and_cover_plan(self, tmp_path):
        _run_shards(tmp_path, 3)
        seen = {}
        for spec, path in discover_shard_journals(tmp_path, "sharded"):
            journal = CampaignJournal(path, _plan(), shard=(spec.index, spec.count))
            for index in journal.load():
                assert index not in seen, f"cell {index} journaled by two shards"
                seen[index] = spec.index
        assert sorted(seen) == list(range(7))

    def test_shard_without_journal_refused(self, tmp_path):
        runner = CampaignRunner(shard="1/2")
        with pytest.raises(CampaignError, match="requires a streaming journal"):
            runner.run_plan(_plan())

    def test_shard_resume_skips_journaled_cells(self, tmp_path):
        first = CampaignRunner(journal_dir=tmp_path, shard="1/2")
        plan = _plan()
        first.run_plan(plan, journal=first.journal_for(plan))
        again = CampaignRunner(journal_dir=tmp_path, shard="1/2", resume=True)
        report = again.run_plan(_plan(), journal=again.journal_for(_plan()))
        assert report.executed == 0
        assert report.resumed == 4


class TestMergeOnly:
    def test_merge_matches_serial(self, tmp_path):
        _run_shards(tmp_path, 3)
        merged = CampaignRunner(journal_dir=tmp_path).merge_shards(_plan())
        assert merged == _plan().run_serial()

    def test_merge_never_executes_cells(self, tmp_path):
        _run_shards(tmp_path, 2)
        # A plan whose cells all raise: merge must still succeed because it
        # only reads journals.
        merged = CampaignRunner(journal_dir=tmp_path).merge_shards(_plan(fn=_boom))
        assert merged == _plan().run_serial()

    def test_merge_requires_journal_dir(self):
        with pytest.raises(CampaignError, match="journal_dir"):
            CampaignRunner().merge_shards(_plan())

    def test_missing_shard_file_reported(self, tmp_path):
        _run_shards(tmp_path, 3)
        (tmp_path / "sharded.shard-2-of-3.jsonl").unlink()
        with pytest.raises(ShardMergeError, match=r"missing shard journal\(s\).*2/3"):
            CampaignRunner(journal_dir=tmp_path).merge_shards(_plan())

    def test_no_shard_journals_reported(self, tmp_path):
        with pytest.raises(ShardMergeError, match="no shard journals"):
            CampaignRunner(journal_dir=tmp_path).merge_shards(_plan())

    def test_incomplete_shard_names_missing_cells(self, tmp_path):
        _run_shards(tmp_path, 2)
        path = tmp_path / "sharded.shard-2-of-2.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop shard 2's last cell
        with pytest.raises(ShardMergeError, match=r"shard 2/2 is missing cells \[5\]"):
            CampaignRunner(journal_dir=tmp_path).merge_shards(_plan())

    def test_mixed_partitions_rejected(self, tmp_path):
        _run_shards(tmp_path, 2)
        _run_shards(tmp_path, 3)
        with pytest.raises(ShardMergeError, match="disagree on the shard count"):
            CampaignRunner(journal_dir=tmp_path).merge_shards(_plan())

    def test_wrong_plan_journal_rejected(self, tmp_path):
        _run_shards(tmp_path, 2)
        other = CampaignPlan(
            experiment_id="sharded",
            cells=[
                CellTask("sharded", ("cell", index), _double, {"value": float(index + 100)})
                for index in range(7)
            ],
            merge=list,
        )
        with pytest.raises(ShardMergeError, match="fingerprint mismatch"):
            CampaignRunner(journal_dir=tmp_path).merge_shards(other)

    def test_foreign_index_in_shard_journal_rejected(self, tmp_path):
        _run_shards(tmp_path, 2)
        # Disguise shard 1's journal (cells 0,2,4,6) as shard 2's.
        source = tmp_path / "sharded.shard-1-of-2.jsonl"
        target = tmp_path / "sharded.shard-2-of-2.jsonl"
        header = json.loads(source.read_text().splitlines()[0])
        header["shard"] = [2, 2]
        body = source.read_text().splitlines()[1:]
        target.write_text("\n".join([json.dumps(header), *body]) + "\n")
        with pytest.raises(ShardMergeError, match="belongs to shard 1/2"):
            load_shard_outputs(_plan(), tmp_path)

    def test_single_shard_partition_round_trips(self, tmp_path):
        _run_shards(tmp_path, 1)
        merged = CampaignRunner(journal_dir=tmp_path).merge_shards(_plan())
        assert merged == _plan().run_serial()


class TestArtifactShardIdentity:
    def test_fig6a_two_shard_merge_byte_identical(self, tmp_path, tiny_drone_scale, policy_cache):
        """The acceptance criterion at tiny scale: two --shard runs with
        *different* cache directories plus --merge-only reproduce the
        unsharded fig6a payload byte for byte.  The second cache dir is a
        copy, exercising the portable-fingerprint fix (a PolicyRef cache
        move must not invalidate the journal)."""
        from repro.core.experiments.drone_training import drone_count_plan
        from repro.core.pretrained import PolicyCache

        def plan(cache):
            return drone_count_plan(
                scale=tiny_drone_scale,
                drone_counts=(2,),
                ber_values=(0.0, 1e-2),
                cache=cache,
            )

        reference = _payload(plan(policy_cache).run_serial())

        # Shard 1 journals under the session cache; shard 2 under a copied
        # cache at a different absolute path (as a second machine would see).
        plan(policy_cache)  # ensure the baseline entry exists before copying
        cache_b_dir = tmp_path / "cache-b"
        shutil.copytree(policy_cache.cache_dir, cache_b_dir)
        cache_b = PolicyCache(cache_b_dir)

        journal_dir = tmp_path / "journals"
        for shard, cache in (("1/2", policy_cache), ("2/2", cache_b)):
            runner = CampaignRunner(journal_dir=journal_dir, shard=shard)
            sharded = plan(cache)
            report = runner.run_plan(sharded, journal=runner.journal_for(sharded))
            assert isinstance(report, ShardRunReport)

        merged = CampaignRunner(journal_dir=journal_dir).merge_shards(plan(policy_cache))
        assert _payload(merged) == reference
