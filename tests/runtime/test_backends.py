"""Tests for the pluggable execution-backend layer.

Three tiers, so a cluster is never needed:

* pure parsing/argv tests (``BackendSpec``, :func:`shard_argv`, the shell
  renderer the cluster templates share);
* :class:`LocalProcessBackend` / :class:`SSHBackend` against real local
  subprocesses (the ssh binary is a shim that strips the host and runs the
  command locally);
* :class:`SlurmBackend` against both a scripted command runner (pure unit:
  every sbatch/squeue/sacct/scancel call is faked in-process) and the real
  ``tools/fake_slurm`` shim, which runs jobs as detached local process
  groups — the same shim CI's ``backend-identity`` job drives through the
  CLI.
"""

import asyncio
import os
import stat
import sys
import textwrap
from pathlib import Path

import pytest

from repro.runtime.backends import (
    BackendError,
    BackendSpec,
    LocalProcessBackend,
    SSHBackend,
    SlurmBackend,
    build_backend,
    build_backends,
    render_k8s_manifest,
    render_shell_command,
    render_slurm_script,
    shard_argv,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FAKE_SLURM = REPO_ROOT / "tools" / "fake_slurm"


def _run(coro):
    return asyncio.run(coro)


class TestShardArgv:
    def test_canonical_command(self):
        argv = shard_argv(
            "fig6a", "2/4", "/shared/journals",
            shard_args=("--scale", "paper"), resume=True,
        )
        assert argv == [
            "repro-campaign", "fig6a", "--shard", "2/4",
            "--journal-dir", "/shared/journals", "--scale", "paper", "--resume",
        ]

    def test_program_override_is_how_the_orchestrator_launches(self):
        argv = shard_argv(
            "fig6a", "1/2", "/j", program=(sys.executable, "-m", "repro.runtime.cli")
        )
        assert argv[:3] == [sys.executable, "-m", "repro.runtime.cli"]
        assert "--resume" not in argv

    def test_shell_renderer_preserves_scheduler_variables(self):
        rendered = render_shell_command(
            ["repro-campaign", "--shard", "${SLURM_ARRAY_TASK_ID}/8", "two words"]
        )
        assert '--shard "${SLURM_ARRAY_TASK_ID}/8"' in rendered
        assert "'two words'" in rendered


class TestTemplatesShareTheArgvSource:
    def test_slurm_template_renders_the_canonical_shard_command(self):
        script = render_slurm_script(
            "fig6a", 16, journal_dir="/shared/journals",
            workers_per_shard=4, shard_args=("--scale", "paper"),
        )
        expected = render_shell_command(
            shard_argv(
                "fig6a", "${SLURM_ARRAY_TASK_ID}/16", "/shared/journals",
                shard_args=("--workers", "4", "--scale", "paper"), resume=True,
            )
        )
        assert expected in script

    def test_k8s_template_renders_the_canonical_shard_command(self):
        manifest = render_k8s_manifest(
            "fig6a", 8, journal_dir="/shared/journals", workers_per_shard=2
        )
        expected = render_shell_command(
            shard_argv(
                "fig6a", "$((JOB_COMPLETION_INDEX + 1))/8", "/shared/journals",
                shard_args=("--workers", "2"), resume=True,
            )
        )
        assert expected in manifest


class TestBackendSpecParsing:
    def test_bare_name(self):
        spec = BackendSpec.parse("local")
        assert (spec.kind, spec.slots, spec.options) == ("local", None, {})

    def test_slots_and_options(self):
        spec = BackendSpec.parse("slurm:8,bin_dir=/opt/slurm/bin,poll=0.5")
        assert spec.kind == "slurm"
        assert spec.slots == 8
        assert spec.options == {"bin_dir": "/opt/slurm/bin", "poll": "0.5"}

    @pytest.mark.parametrize(
        ("text", "match"),
        [
            ("teleport", "unknown backend"),
            ("local:zero", "slots must be an integer"),
            ("local:0", "slots must be >= 1"),
            ("local:2,hostnode1", "not KEY=VALUE"),
            ("ssh:2", "requires a host"),
            ("local:1,shape=round", "does not accept option"),
            ("slurm:1,poll=soon", "poll must be a number"),
        ],
    )
    def test_invalid_specs_name_the_problem(self, text, match):
        with pytest.raises(BackendError, match=match):
            build_backend(text)

    def test_build_backends_disambiguates_duplicate_names(self):
        backends = build_backends(["local:1", "local:1", "ssh:1,host=n1"])
        assert [backend.name for backend in backends] == ["local", "local#2", "ssh:n1"]

    def test_explicit_names_survive(self):
        backend = build_backend("local:4,name=big-box")
        assert backend.name == "big-box"
        assert backend.slots == 4
        assert backend.describe() == "big-box[slots=4]"

    def test_unbounded_local_describe(self):
        assert build_backend("local").describe() == "local[slots=unbounded]"


class TestLocalProcessBackend:
    def test_wait_returncode_and_stderr(self):
        async def scenario():
            backend = LocalProcessBackend()
            launch = await backend.launch(
                [sys.executable, "-c", "import sys; sys.stderr.write('boom'); sys.exit(3)"]
            )
            returncode = await launch.wait()
            stderr = await launch.stderr()
            await launch.close()
            return returncode, stderr, launch.finished

        returncode, stderr, finished = _run(scenario())
        assert returncode == 3
        assert "boom" in stderr
        assert finished

    def test_kill_terminates_the_process(self):
        async def scenario():
            backend = LocalProcessBackend()
            launch = await backend.launch(
                [sys.executable, "-c", "import time; time.sleep(60)"]
            )
            assert not launch.finished
            launch.kill()
            returncode = await launch.wait()
            await launch.close()
            return returncode

        assert _run(scenario()) != 0

    def test_kill_takes_down_the_whole_process_group(self, tmp_path):
        """Regression: a shard running a ``--workers N`` pool must lose its
        worker processes on kill too.  Fork-inherited stderr pipes otherwise
        keep the orchestrator's stderr drain from ever seeing EOF (it hung
        forever) and leak orphaned workers."""
        ready = tmp_path / "grandchild.ready"
        script = (
            "import subprocess, sys, time\n"
            "child = subprocess.Popen(['sleep', '60'], stderr=sys.stderr)\n"
            f"open({str(ready)!r}, 'w').write(str(child.pid))\n"
            "time.sleep(60)\n"
        )

        async def scenario():
            backend = LocalProcessBackend()
            launch = await backend.launch([sys.executable, "-c", script])
            for _ in range(200):
                if ready.exists():
                    break
                await asyncio.sleep(0.05)
            assert ready.exists(), "grandchild never started"
            launch.kill()
            # Both awaits hang forever if the grandchild survives holding the
            # stderr pipe open — the timeout is the assertion.
            returncode = await asyncio.wait_for(launch.wait(), timeout=10)
            await asyncio.wait_for(launch.stderr(), timeout=10)
            await launch.close()
            return returncode

        assert _run(scenario()) != 0


class TestSSHBackend:
    def test_wrap_command_quotes_for_the_remote_shell(self):
        backend = SSHBackend("node7")
        wrapped = backend.wrap_command(["repro-campaign", "fig6a", "--shard", "1/2"])
        assert wrapped[0] == "ssh"
        assert "node7" in wrapped
        assert wrapped[-1] == "repro-campaign fig6a --shard 1/2"
        assert wrapped[wrapped.index("node7") + 1] == "--"

    def test_runs_through_a_fake_ssh_binary(self, tmp_path):
        """End to end with an ssh shim that drops the host and runs locally —
        proving the wrapped argv is a valid remote command line."""
        fake_ssh = tmp_path / "fake-ssh"
        fake_ssh.write_text(
            textwrap.dedent(
                """\
                #!/usr/bin/env python3
                import subprocess, sys
                args = sys.argv[1:]
                command = " ".join(args[args.index("--") + 1:])
                sys.exit(subprocess.call(["sh", "-c", command]))
                """
            ),
            encoding="utf8",
        )
        fake_ssh.chmod(fake_ssh.stat().st_mode | stat.S_IXUSR)
        marker = tmp_path / "ran.marker"

        async def scenario():
            backend = SSHBackend("ignored-host", ssh_command=str(fake_ssh))
            launch = await backend.launch(["touch", str(marker)])
            returncode = await launch.wait()
            await launch.close()
            return returncode

        assert _run(scenario()) == 0
        assert marker.exists()

    def test_from_spec(self):
        backend = build_backend("ssh:3,host=node9,ssh=ssh -p 2222")
        assert isinstance(backend, SSHBackend)
        assert backend.slots == 3
        assert backend.wrap_command(["true"])[:3] == ["ssh", "-p", "2222"]

    def test_shard_program_names_the_remote_interpreter(self):
        """The orchestrator's local sys.executable path does not exist on the
        remote host; the ssh backend substitutes a remote-resolvable program."""
        assert SSHBackend("node7").shard_program() == ["python3", "-m", "repro.runtime.cli"]
        custom = build_backend("ssh:1,host=node7,python=/opt/py/bin/python")
        assert custom.shard_program()[0] == "/opt/py/bin/python"
        # Local backends keep the orchestrator's own interpreter.
        assert LocalProcessBackend().shard_program() is None


def _fake_ssh(tmp_path, body: str) -> Path:
    """Write an executable stand-in for the ssh client."""
    script = tmp_path / "fake-ssh"
    script.write_text("#!/bin/sh\n" + body, encoding="utf8")
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return script


class TestSSHPreflight:
    def test_dead_host_fails_at_prepare_time(self, tmp_path):
        """A host ssh cannot reach must fail the campaign at startup, naming
        the host and ssh's own stderr — not on the first shard attempt."""
        fake = _fake_ssh(tmp_path, "echo 'Connection refused' >&2\nexit 255\n")
        backend = SSHBackend("deadnode", ssh_command=str(fake))
        with pytest.raises(BackendError) as excinfo:
            backend.prepare(tmp_path)
        message = str(excinfo.value)
        assert "deadnode" in message
        assert "Connection refused" in message
        assert "preflight=off" in message

    def test_reachable_host_passes(self, tmp_path):
        fake = _fake_ssh(tmp_path, "exit 0\n")
        SSHBackend("node7", ssh_command=str(fake)).prepare(tmp_path)

    def test_preflight_runs_the_wrapped_true_command(self, tmp_path):
        """The preflight goes through wrap_command, so it exercises the same
        ssh options (BatchMode) and host the real launches will use."""
        log = tmp_path / "argv.log"
        fake = _fake_ssh(tmp_path, f'echo "$@" > {log}\nexit 0\n')
        SSHBackend("node7", ssh_command=str(fake)).prepare(tmp_path)
        logged = log.read_text(encoding="utf8")
        assert "BatchMode=yes" in logged
        assert "node7" in logged
        assert "true" in logged

    def test_preflight_off_skips_the_connection_test(self, tmp_path):
        backend = build_backend("ssh:1,host=deadnode,preflight=off,ssh=/nonexistent-ssh")
        backend.prepare(tmp_path)  # would raise if the preflight ran

    def test_missing_ssh_binary_is_a_backend_error(self, tmp_path):
        backend = SSHBackend("node7", ssh_command=str(tmp_path / "no-such-ssh"))
        with pytest.raises(BackendError, match="cannot run"):
            backend.prepare(tmp_path)

    def test_bad_preflight_value_rejected(self):
        with pytest.raises(BackendError, match="preflight must be 'on' or 'off'"):
            build_backend("ssh:1,host=node7,preflight=maybe")


class TestWorkersOverride:
    def test_workers_option_parses_on_every_kind(self):
        assert build_backend("local:2,workers=8").workers == 8
        assert build_backend("ssh:1,host=node7,workers=4").workers == 4
        assert build_backend("slurm:16,workers=32").workers == 32

    def test_workers_defaults_to_none(self):
        """No override means the campaign-wide --workers-per-shard applies —
        and describe() keeps its historical spelling, which CI's
        backend-identity job asserts byte-for-byte."""
        backend = build_backend("local:2")
        assert backend.workers is None
        assert backend.describe() == "local[slots=2]"

    def test_describe_shows_the_override(self):
        assert build_backend("local:2,workers=8").describe() == "local[slots=2,workers=8]"

    @pytest.mark.parametrize("text", ["local:1,workers=three", "local:1,workers=0"])
    def test_invalid_workers_rejected(self, text):
        with pytest.raises(BackendError, match="workers must be"):
            build_backend(text)


class _ScriptedRunner:
    """A scripted SlurmBackend command runner: records calls, replays answers."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.calls = []

    async def __call__(self, argv, *, env=None):
        self.calls.append(list(argv))
        tool = Path(argv[0]).name
        for index, (expected_tool, response) in enumerate(self.responses):
            if expected_tool == tool:
                self.responses.pop(index)
                return response
        return (0, "", "")


class TestSlurmBackendScripted:
    def _backend(self, runner, tmp_path, **kwargs):
        kwargs.setdefault("poll_interval", 0.01)
        return SlurmBackend(work_dir=tmp_path / "slurm", command_runner=runner, **kwargs)

    def test_submit_poll_reap_completed(self, tmp_path):
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "4242\n", "")),
                ("squeue", (0, "4242 RUNNING\n", "")),
                ("squeue", (0, "", "")),
                ("sacct", (0, "COMPLETED|0:0\n", "")),
            ]
        )
        backend = self._backend(runner, tmp_path)

        async def scenario():
            launch = await backend.launch(["repro-campaign", "fig6a", "--shard", "1/2"])
            return launch.job_id, await launch.wait()

        job_id, returncode = _run(scenario())
        assert job_id == "4242"
        assert returncode == 0
        # The batch script was written and handed to sbatch.
        sbatch_call = runner.calls[0]
        script = Path(sbatch_call[-1])
        assert script.exists()
        assert "repro-campaign fig6a --shard 1/2" in script.read_text()
        assert "--parsable" in sbatch_call

    def test_failed_job_maps_exit_code(self, tmp_path):
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "7\n", "")),
                ("squeue", (0, "", "")),
                ("sacct", (0, "FAILED|3:0\n", "")),
            ]
        )
        backend = self._backend(runner, tmp_path)

        async def scenario():
            launch = await backend.launch(["false"])
            return await launch.wait()

        assert _run(scenario()) == 3

    def test_kill_issues_scancel_and_maps_cancelled(self, tmp_path):
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "9\n", "")),
                ("scancel", (0, "", "")),
                ("squeue", (0, "", "")),
                ("sacct", (0, "CANCELLED by 0|0:9\n", "")),
            ]
        )
        backend = self._backend(runner, tmp_path)

        async def scenario():
            launch = await backend.launch(["sleep", "60"])
            launch.kill()
            return await launch.wait()

        assert _run(scenario()) == 137
        assert any(Path(call[0]).name == "scancel" for call in runner.calls)

    def test_nonterminal_sacct_state_keeps_polling(self, tmp_path):
        """Regression: a job transiently missing from squeue (slurmctld
        hiccup, accounting lag) while sacct still says RUNNING must NOT be
        reaped as failed — that would double-launch the shard."""
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "21\n", "")),
                ("squeue", (0, "", "")),           # transient: job not listed
                ("sacct", (0, "RUNNING|0:0\n", "")),  # ...but alive per accounting
                ("squeue", (0, "", "")),
                ("sacct", (0, "COMPLETED|0:0\n", "")),
            ]
        )
        backend = self._backend(runner, tmp_path)

        async def scenario():
            launch = await backend.launch(["true"])
            return await launch.wait()

        assert _run(scenario()) == 0
        sacct_calls = [c for c in runner.calls if Path(c[0]).name == "sacct"]
        assert len(sacct_calls) == 2  # the RUNNING answer forced a re-poll

    def test_failed_scancel_is_retried(self, tmp_path):
        """Regression: a failed scancel (busy slurmctld) must not be treated
        as done — the kill retries until scancel succeeds."""
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "22\n", "")),
                ("scancel", (1, "", "slurm_kill_job: error")),  # first cancel fails
                ("squeue", (0, "22 RUNNING\n", "")),
                ("scancel", (0, "", "")),                        # retried, succeeds
                ("squeue", (0, "", "")),
                ("sacct", (0, "CANCELLED by 0|0:9\n", "")),
            ]
        )
        backend = self._backend(runner, tmp_path)

        async def scenario():
            launch = await backend.launch(["sleep", "60"])
            launch.kill()
            return await launch.wait()

        assert _run(scenario()) == 137
        scancel_calls = [c for c in runner.calls if Path(c[0]).name == "scancel"]
        assert len(scancel_calls) == 2

    def test_sbatch_failure_raises_backend_error(self, tmp_path):
        runner = _ScriptedRunner([("sbatch", (1, "", "sbatch: error: no partition"))])
        backend = self._backend(runner, tmp_path)
        with pytest.raises(BackendError, match="no partition"):
            _run(backend.launch(["true"]))

    def test_signal_exit_codes_map_to_128_plus_signal(self, tmp_path):
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "11\n", "")),
                ("squeue", (0, "", "")),
                ("sacct", (0, "FAILED|0:9\n", "")),
            ]
        )
        backend = self._backend(runner, tmp_path)

        async def scenario():
            launch = await backend.launch(["true"])
            return await launch.wait()

        assert _run(scenario()) == 137


@pytest.fixture()
def fake_slurm_env(tmp_path, monkeypatch):
    monkeypatch.setenv("FAKE_SLURM_STATE", str(tmp_path / "slurm-state"))
    return dict(os.environ)


class TestSlurmBackendAgainstFakeShim:
    """The same submit/poll/reap/cancel cycle against tools/fake_slurm."""

    def _backend(self, tmp_path):
        return SlurmBackend(
            bin_dir=FAKE_SLURM, work_dir=tmp_path / "slurm-work", poll_interval=0.05
        )

    def test_completed_job(self, tmp_path, fake_slurm_env):
        backend = self._backend(tmp_path)
        marker = tmp_path / "job-ran.marker"

        async def scenario():
            launch = await backend.launch(["touch", str(marker)], env=fake_slurm_env)
            returncode = await launch.wait()
            await launch.close()
            return returncode

        assert _run(scenario()) == 0
        assert marker.exists()

    def test_failed_job_reports_exit_code_and_stderr(self, tmp_path, fake_slurm_env):
        backend = self._backend(tmp_path)

        async def scenario():
            launch = await backend.launch(
                [sys.executable, "-c", "import sys; sys.stderr.write('shard died'); sys.exit(5)"],
                env=fake_slurm_env,
            )
            returncode = await launch.wait()
            stderr = await launch.stderr()
            await launch.close()
            return returncode, stderr

        returncode, stderr = _run(scenario())
        assert returncode == 5
        assert "shard died" in stderr

    def test_cancelled_job_maps_to_killed(self, tmp_path, fake_slurm_env):
        backend = self._backend(tmp_path)

        async def scenario():
            launch = await backend.launch(["sleep", "60"], env=fake_slurm_env)
            await asyncio.sleep(0.2)  # let the job start
            launch.kill()
            returncode = await launch.wait()
            await launch.close()
            return returncode

        assert _run(scenario()) == 137


class TestSlurmArraySubmission:
    """``array=on``: concurrent launches collapse into one sbatch --array."""

    def test_from_spec_parses_array_option(self):
        backend = build_backend("slurm:4,array=on")
        assert isinstance(backend, SlurmBackend)
        assert backend.array is True
        assert build_backend("slurm").array is False
        with pytest.raises(BackendError, match="array"):
            build_backend("slurm,array=maybe")

    def test_one_sbatch_call_for_a_wave_of_launches(self, tmp_path):
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "99\n", "")),
                ("squeue", (0, "", "")),
                ("squeue", (0, "", "")),
                ("squeue", (0, "", "")),
                ("sacct", (0, "COMPLETED|0:0\n", "")),
                ("sacct", (0, "COMPLETED|0:0\n", "")),
                ("sacct", (0, "FAILED|2:0\n", "")),
            ]
        )
        backend = SlurmBackend(
            work_dir=tmp_path / "slurm",
            command_runner=runner,
            poll_interval=0.01,
            array=True,
            array_window=0.05,
        )

        async def scenario():
            launches = await asyncio.gather(
                *(backend.launch(["echo", f"shard-{i}"]) for i in range(3))
            )
            codes = await asyncio.gather(*(launch.wait() for launch in launches))
            return launches, codes

        launches, codes = _run(scenario())
        assert [launch.job_id for launch in launches] == ["99_0", "99_1", "99_2"]
        assert codes == [0, 0, 2]
        sbatch_calls = [call for call in runner.calls if Path(call[0]).name == "sbatch"]
        assert len(sbatch_calls) == 1
        assert "--array=0-2" in sbatch_calls[0]
        script = Path(sbatch_calls[0][-1]).read_text()
        assert 'case "$SLURM_ARRAY_TASK_ID" in' in script
        for i in range(3):
            assert f"echo shard-{i}" in script

    def test_single_launch_window_falls_back_to_plain_submit(self, tmp_path):
        runner = _ScriptedRunner(
            [
                ("sbatch", (0, "7\n", "")),
                ("squeue", (0, "", "")),
                ("sacct", (0, "COMPLETED|0:0\n", "")),
            ]
        )
        backend = SlurmBackend(
            work_dir=tmp_path / "slurm",
            command_runner=runner,
            poll_interval=0.01,
            array=True,
            array_window=0.01,
        )

        async def scenario():
            launch = await backend.launch(["echo", "solo"])
            return launch.job_id, await launch.wait()

        job_id, returncode = _run(scenario())
        assert job_id == "7"  # no array-task suffix
        assert returncode == 0
        sbatch_calls = [call for call in runner.calls if Path(call[0]).name == "sbatch"]
        assert not any("--array" in token for token in sbatch_calls[0])

    def test_sbatch_failure_fails_every_launch_in_the_window(self, tmp_path):
        runner = _ScriptedRunner([("sbatch", (1, "", "partition down"))])
        backend = SlurmBackend(
            work_dir=tmp_path / "slurm",
            command_runner=runner,
            poll_interval=0.01,
            array=True,
            array_window=0.01,
        )

        async def scenario():
            results = await asyncio.gather(
                *(backend.launch(["echo", str(i)]) for i in range(2)),
                return_exceptions=True,
            )
            return results

        results = _run(scenario())
        assert len(results) == 2
        assert all(isinstance(result, BackendError) for result in results)
        assert all("partition down" in str(result) for result in results)

    def test_array_cycle_against_the_fake_shim(self, tmp_path, fake_slurm_env):
        backend = SlurmBackend(
            bin_dir=FAKE_SLURM,
            work_dir=tmp_path / "slurm-work",
            poll_interval=0.05,
            array=True,
            array_window=0.1,
        )

        async def scenario():
            launches = await asyncio.gather(
                *(
                    backend.launch(
                        [
                            "bash",
                            "-c",
                            f"echo task $SLURM_ARRAY_TASK_ID >&2; exit {0 if i != 1 else 9}",
                        ],
                        env=fake_slurm_env,
                    )
                    for i in range(3)
                )
            )
            codes = await asyncio.gather(*(launch.wait() for launch in launches))
            stderrs = await asyncio.gather(*(launch.stderr() for launch in launches))
            await asyncio.gather(*(launch.close() for launch in launches))
            return launches, codes, stderrs

        launches, codes, stderrs = _run(scenario())
        base = launches[0].job_id.split("_")[0]
        assert [launch.job_id for launch in launches] == [f"{base}_{i}" for i in range(3)]
        assert codes == [0, 9, 0]
        # Each task saw its own SLURM_ARRAY_TASK_ID and its own stderr file.
        assert [err.strip() for err in stderrs] == ["task 0", "task 1", "task 2"]

    def test_cancelling_one_array_task_leaves_siblings_running(self, tmp_path, fake_slurm_env):
        backend = SlurmBackend(
            bin_dir=FAKE_SLURM,
            work_dir=tmp_path / "slurm-work",
            poll_interval=0.05,
            array=True,
            array_window=0.1,
        )
        marker = tmp_path / "sibling-finished.marker"

        async def scenario():
            slow = backend.launch(["sleep", "60"], env=fake_slurm_env)
            quick = backend.launch(
                ["bash", "-c", f"sleep 0.3 && touch {marker}"], env=fake_slurm_env
            )
            slow_launch, quick_launch = await asyncio.gather(slow, quick)
            await asyncio.sleep(0.2)  # let both tasks start
            slow_launch.kill()
            slow_code, quick_code = await asyncio.gather(
                slow_launch.wait(), quick_launch.wait()
            )
            await asyncio.gather(slow_launch.close(), quick_launch.close())
            return slow_code, quick_code

        slow_code, quick_code = _run(scenario())
        assert slow_code == 137
        assert quick_code == 0
        assert marker.exists()
