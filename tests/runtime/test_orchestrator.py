"""Tests for the asyncio shard orchestrator.

The failure paths are the point: a shard whose subprocess dies mid-run must be
retried *with ``--resume``* (never recomputing journaled cells) and the merged
payload must still byte-match the unsharded run; exhausted retries must
surface a hard error naming the failing shard, with the structured report
written for post-mortems either way.

The hermetic tests drive synthetic plans through a small worker script (the
plan fingerprint digests cell keys and kwargs, not the function object, so
the parent's plan and the script's plan journal-match by construction).  The
end-to-end test exercises the real CLI on fig6a at tiny scale — the
acceptance criterion, mirrored by CI's ``orchestrate-identity`` job.
"""

import inspect
import json
import sys
import textwrap
from pathlib import Path

import pytest

import repro.runtime.orchestrator as orchestrator_module
from repro.runtime.backends import LocalProcessBackend, SSHBackend, ShardLaunch, SlurmBackend
from repro.runtime.cells import CampaignPlan, CellTask
from repro.runtime.cli import main
from repro.runtime.orchestrator import (
    OrchestratorError,
    ShardOrchestrator,
    render_k8s_manifest,
    render_slurm_script,
)
from repro.runtime.runner import CampaignRunner
from repro.runtime.scheduler import BackendScheduler

FAKE_SLURM = Path(__file__).resolve().parents[2] / "tools" / "fake_slurm"

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Worker script emulating one shard "machine".  Behaviour knobs come through
#: environment variables so the orchestrator's default env passthrough is the
#: thing under test:
#:   ORCH_TEST_CRASH_SHARD / ORCH_TEST_CRASH_MARKER — hard-exit (as if killed)
#:     after journaling 2 cells, once, creating the marker file;
#:   ORCH_TEST_FAIL_SHARD — exit 3 immediately, every attempt;
#:   ORCH_TEST_STALL_SHARD — hang without journaling anything.
_WORKER_SCRIPT = textwrap.dedent(
    """
    import os
    import sys
    import time

    sys.path.insert(0, {src!r})

    from repro.runtime.cells import CampaignPlan, CellTask
    from repro.runtime.runner import CampaignRunner

    shard, journal_dir = sys.argv[1], sys.argv[2]
    resume = "--resume" in sys.argv[3:]
    shard_index = shard.split("/")[0]

    if os.environ.get("ORCH_TEST_FAIL_SHARD") == shard_index:
        sys.stderr.write("synthetic shard failure\\n")
        sys.exit(3)
    if os.environ.get("ORCH_TEST_STALL_SHARD") == shard_index:
        time.sleep(120)

    marker = os.environ.get("ORCH_TEST_CRASH_MARKER", "")
    crash = (
        os.environ.get("ORCH_TEST_CRASH_SHARD") == shard_index
        and marker
        and not os.path.exists(marker)
    )
    state = {{"executed": 0}}

    def cell(value):
        state["executed"] += 1
        if crash and state["executed"] > 2:
            open(marker, "w").close()
            os._exit(137)  # as if SIGKILLed mid-run
        return value * 2.0

    cells = [
        CellTask("orch", ("cell", index), cell, {{"value": float(index)}})
        for index in range(8)
    ]
    plan = CampaignPlan("orch", cells, merge=list)
    runner = CampaignRunner(journal_dir=journal_dir, shard=shard, resume=resume)
    runner.run_plan(plan, journal=runner.journal_for(plan))
    """
)


def _double(value: float) -> float:
    return value * 2.0


def _plan(count: int = 8) -> CampaignPlan:
    cells = [
        CellTask("orch", ("cell", index), _double, {"value": float(index)})
        for index in range(count)
    ]
    return CampaignPlan("orch", cells, merge=list)


@pytest.fixture()
def worker_script(tmp_path) -> Path:
    script = tmp_path / "shard_worker.py"
    script.write_text(_WORKER_SCRIPT.format(src=_SRC), encoding="utf8")
    return script


def _orchestrator(tmp_path, worker_script, **kwargs) -> ShardOrchestrator:
    journal_dir = tmp_path / "journals"

    def factory(spec, attempt_number, resume):
        command = [sys.executable, str(worker_script), spec.describe(), str(journal_dir)]
        if resume:
            command.append("--resume")
        return command

    kwargs.setdefault("plan", _plan())
    kwargs.setdefault("poll_interval", 0.05)
    return ShardOrchestrator(
        "orch",
        kwargs.pop("shard_count", 2),
        CampaignRunner(journal_dir=journal_dir),
        command_factory=factory,
        **kwargs,
    )


class TestKillRetryResume:
    def test_killed_shard_retried_with_resume_merges_byte_identically(
        self, tmp_path, worker_script, monkeypatch
    ):
        """The satellite criterion: shard 1's subprocess hard-exits after
        journaling 2 of its 4 cells; the retry resumes from the journal and
        the merged payload equals the unsharded run exactly."""
        monkeypatch.setenv("ORCH_TEST_CRASH_SHARD", "1")
        monkeypatch.setenv("ORCH_TEST_CRASH_MARKER", str(tmp_path / "crashed.marker"))
        orchestrator = _orchestrator(tmp_path, worker_script, max_retries=1)
        report = orchestrator.run()

        assert report.merged
        assert report.result == _plan().run_serial()

        crashed, clean = report.outcomes
        assert len(crashed.attempts) == 2
        assert crashed.attempts[0].reason is not None
        assert "exit status" in crashed.attempts[0].reason
        # The first attempt journaled 2 cells before dying...
        assert crashed.attempts[0].cells_completed == 2
        # ...and the retry *resumed* from them instead of restarting.
        assert crashed.attempts[1].resumed
        assert crashed.attempts[1].reason is None
        assert crashed.attempts[1].cells_completed == 4
        assert len(clean.attempts) == 1

    def test_report_written_for_post_mortems(self, tmp_path, worker_script, monkeypatch):
        monkeypatch.setenv("ORCH_TEST_CRASH_SHARD", "1")
        monkeypatch.setenv("ORCH_TEST_CRASH_MARKER", str(tmp_path / "crashed.marker"))
        orchestrator = _orchestrator(tmp_path, worker_script, max_retries=1)
        report = orchestrator.run()

        assert report.path is not None and report.path.exists()
        payload = json.loads(report.path.read_text())
        assert payload["merged"] is True
        assert payload["experiment_id"] == "orch"
        assert payload["shard_count"] == 2
        [shard1, shard2] = payload["shards"]
        assert shard1["succeeded"] and shard2["succeeded"]
        assert [attempt["resumed"] for attempt in shard1["attempts"]] == [False, True]
        assert shard1["attempts"][0]["reason"]


class TestInjectedKillDeterminism:
    def test_injection_forces_a_resumed_retry_even_if_the_shard_finishes_first(
        self, tmp_path, worker_script
    ):
        """The chaos hook must be deterministic: the hermetic worker's cells
        are near-instant, so the subprocess often exits before a poll can
        kill it — the first attempt is treated as failed regardless, and the
        retry resumes a complete journal."""
        orchestrator = _orchestrator(
            tmp_path, worker_script, max_retries=1, inject_kill_shard=1
        )
        report = orchestrator.run()
        assert report.merged
        assert report.result == _plan().run_serial()
        shard1 = report.outcomes[0]
        assert len(shard1.attempts) == 2
        assert "injected kill" in shard1.attempts[0].reason
        assert shard1.attempts[1].resumed and shard1.attempts[1].reason is None


class TestBackendFailover:
    def test_launches_go_through_backends_not_raw_subprocesses(self):
        """The tentpole's structural criterion: the orchestrator contains no
        direct ``create_subprocess_exec`` — every launch goes through a
        backend (``LocalProcessBackend`` owns the subprocess call)."""
        source = inspect.getsource(orchestrator_module)
        assert "create_subprocess_exec" not in source

    def test_killed_shard_retries_on_a_different_backend(
        self, tmp_path, worker_script, monkeypatch
    ):
        """The failover satellite: shard 1's first attempt dies on backend
        alpha; the retry must land on backend beta *with --resume*, the
        merged payload must byte-match the serial run, and the report must
        record which backend ran each attempt."""
        monkeypatch.setenv("ORCH_TEST_CRASH_SHARD", "1")
        monkeypatch.setenv("ORCH_TEST_CRASH_MARKER", str(tmp_path / "crashed.marker"))
        backends = [
            LocalProcessBackend(slots=1, name="alpha"),
            LocalProcessBackend(slots=1, name="beta"),
        ]
        orchestrator = _orchestrator(
            tmp_path, worker_script, max_retries=1, backends=backends
        )
        report = orchestrator.run()

        assert report.merged
        assert report.result == _plan().run_serial()
        crashed = report.outcomes[0]
        assert [attempt.backend for attempt in crashed.attempts] == ["alpha", "beta"]
        assert crashed.attempts[0].reason is not None
        assert crashed.attempts[1].resumed and crashed.attempts[1].reason is None
        # The structured report records the backend of every attempt.
        payload = json.loads(report.path.read_text())
        assert payload["backends"] == ["alpha[slots=1]", "beta[slots=1]"]
        recorded = [a["backend"] for a in payload["shards"][0]["attempts"]]
        assert recorded == ["alpha", "beta"]

    def test_single_backend_retries_in_place(self, tmp_path, worker_script, monkeypatch):
        """With one backend configured there is nowhere to fail over to; the
        retry reuses it (the pre-backend behaviour)."""
        monkeypatch.setenv("ORCH_TEST_CRASH_SHARD", "1")
        monkeypatch.setenv("ORCH_TEST_CRASH_MARKER", str(tmp_path / "crashed.marker"))
        orchestrator = _orchestrator(
            tmp_path, worker_script, max_retries=1,
            backends=[LocalProcessBackend(slots=2, name="only")],
        )
        report = orchestrator.run()
        assert report.merged
        assert [a.backend for a in report.outcomes[0].attempts] == ["only", "only"]

    def test_tracking_failure_is_a_failed_attempt_not_a_crash(self, tmp_path, worker_script):
        """A backend that launches fine but explodes while *tracking* the
        attempt (squeue binary vanishing mid-poll, a transient OSError) must
        become a failed attempt that fails over — never an unhandled crash
        that loses the report."""

        class _BoomLaunch(ShardLaunch):
            @property
            def finished(self):
                return True

            async def wait(self):
                raise RuntimeError("squeue exploded mid-poll")

            def kill(self):
                pass

            async def stderr(self):
                return ""

        class _BoomBackend(LocalProcessBackend):
            async def launch(self, command, *, env=None):
                return _BoomLaunch()

        orchestrator = _orchestrator(
            tmp_path, worker_script, max_retries=1, shard_count=1, plan=_plan(),
            backends=[
                _BoomBackend(slots=1, name="boom"),
                LocalProcessBackend(slots=1, name="healthy"),
            ],
        )
        report = orchestrator.run()
        assert report.merged
        [outcome] = report.outcomes
        assert [a.backend for a in outcome.attempts] == ["boom", "healthy"]
        assert "failed while tracking" in outcome.attempts[0].reason
        assert "squeue exploded" in outcome.attempts[0].reason
        assert outcome.attempts[0].returncode is None

    def test_launch_failure_is_a_failed_attempt_not_a_crash(self, tmp_path, worker_script):
        """A backend that cannot even launch (e.g. sbatch missing) must
        surface as a failed attempt with a named reason — and fail over."""
        broken = SlurmBackend(
            slots=1, name="broken-slurm",
            bin_dir=tmp_path / "nowhere", work_dir=tmp_path / "slurm-work",
            poll_interval=0.05,
        )
        healthy = LocalProcessBackend(slots=1, name="healthy")
        orchestrator = _orchestrator(
            tmp_path, worker_script, max_retries=1,
            shard_count=1, plan=_plan(), backends=[broken, healthy],
        )
        report = orchestrator.run()
        assert report.merged
        [outcome] = report.outcomes
        assert [a.backend for a in outcome.attempts] == ["broken-slurm", "healthy"]
        assert "failed to launch" in outcome.attempts[0].reason
        assert outcome.attempts[0].returncode is None


class TestDryRun:
    def test_render_dry_run_lists_assignment_and_commands(self, tmp_path, worker_script):
        backends = [
            LocalProcessBackend(slots=1, name="alpha"),
            LocalProcessBackend(slots=2, name="beta"),
        ]
        orchestrator = _orchestrator(
            tmp_path, worker_script, shard_count=4, backends=backends
        )
        text = orchestrator.render_dry_run()
        assert "alpha[slots=1], beta[slots=2]" in text
        # beta has the most free slots, then alpha ties in at 1 free.
        assert "shard 1/4 -> beta" in text
        assert "shard 2/4 -> alpha" in text or "shard 2/4 -> beta" in text
        assert "1 shard(s) queue until a slot frees" in text
        assert "nothing launched" in text
        # The exact per-shard command is shown (the worker-script factory here).
        assert "1/4" in text and str(worker_script) in text

    def test_dry_run_shows_the_remote_program_for_ssh_backends(self, tmp_path):
        orchestrator = ShardOrchestrator(
            "orch", 2, CampaignRunner(journal_dir=tmp_path / "journals"),
            backends=[SSHBackend("node7", slots=2)],
        )
        text = orchestrator.render_dry_run()
        assert "-> ssh:node7" in text
        assert "python3 -m repro.runtime.cli orch --shard 1/2" in text
        assert sys.executable not in text  # the local venv path would not exist remotely

    def test_dry_run_builds_no_plan(self, tmp_path):
        """--dry-run must not train baselines: the orchestrator's plan
        property stays untouched."""
        journal_dir = tmp_path / "journals"

        def exploding_plan(experiment_id):
            raise AssertionError("dry run must not build the plan")

        runner = CampaignRunner(journal_dir=journal_dir)
        runner.plan = exploding_plan
        orchestrator = ShardOrchestrator("orch", 2, runner)
        text = orchestrator.render_dry_run()
        assert "--shard 1/2" in text
        assert not journal_dir.exists()


class TestMergeFailure:
    def test_merge_failure_still_writes_the_report(self, tmp_path, worker_script):
        """Stale foreign shard journals in the shared store make merge_shards
        raise after every shard succeeded; the post-mortem report must land
        anyway, with the error naming the merge as the failing stage."""
        journal_dir = tmp_path / "journals"
        journal_dir.mkdir(parents=True)
        # A leftover journal from an earlier 3-way partition of the same label.
        (journal_dir / "orch.shard-1-of-3.jsonl").write_text('{"kind": "header"}\n')
        orchestrator = _orchestrator(tmp_path, worker_script)
        with pytest.raises(OrchestratorError, match="merging failed") as excinfo:
            orchestrator.run()
        report = excinfo.value.report
        assert report is not None and not report.merged
        assert report.path is not None and report.path.exists()
        payload = json.loads(report.path.read_text())
        assert payload["merged"] is False
        assert all(shard["succeeded"] for shard in payload["shards"])


class TestExhaustedRetries:
    def test_exhausted_retries_name_the_failing_shard(
        self, tmp_path, worker_script, monkeypatch
    ):
        monkeypatch.setenv("ORCH_TEST_FAIL_SHARD", "2")
        orchestrator = _orchestrator(tmp_path, worker_script, max_retries=1)
        with pytest.raises(OrchestratorError, match=r"shard\(s\) 2/2 .* failed after 2"):
            orchestrator.run()

    def test_failed_report_still_written_with_reasons(
        self, tmp_path, worker_script, monkeypatch
    ):
        monkeypatch.setenv("ORCH_TEST_FAIL_SHARD", "2")
        orchestrator = _orchestrator(tmp_path, worker_script, max_retries=1)
        with pytest.raises(OrchestratorError) as excinfo:
            orchestrator.run()
        report = excinfo.value.report
        assert report is not None and not report.merged
        assert [spec.describe() for spec in report.failed_shards] == ["2/2"]
        failing = report.outcomes[1]
        assert len(failing.attempts) == 2  # max_retries=1 -> two attempts total
        assert all(
            "exit status 3: synthetic shard failure" in attempt.reason
            for attempt in failing.attempts
        )
        payload = json.loads(report.path.read_text())
        assert payload["merged"] is False
        # The healthy shard's journal survives; only the failed one is missing.
        assert payload["shards"][0]["succeeded"] is True

    def test_stalled_shard_killed_and_reported(self, tmp_path, worker_script, monkeypatch):
        monkeypatch.setenv("ORCH_TEST_STALL_SHARD", "2")
        orchestrator = _orchestrator(
            tmp_path, worker_script, max_retries=0, stall_timeout=0.3
        )
        with pytest.raises(OrchestratorError, match="stalled"):
            orchestrator.run()


class TestGuards:
    def test_single_cell_plan_rejected(self, tmp_path, worker_script):
        orchestrator = _orchestrator(tmp_path, worker_script, plan=_plan(count=1))
        with pytest.raises(OrchestratorError, match="single-cell"):
            orchestrator.run()

    def test_requires_journal_dir(self):
        with pytest.raises(Exception, match="journal"):
            ShardOrchestrator("orch", 2, CampaignRunner())

    def test_rejects_bad_shard_count_and_retries(self, tmp_path):
        runner = CampaignRunner(journal_dir=tmp_path)
        with pytest.raises(ValueError, match="shard count"):
            ShardOrchestrator("orch", 0, runner)
        with pytest.raises(ValueError, match="retries"):
            ShardOrchestrator("orch", 2, runner, max_retries=-1)


class TestInjectedScheduler:
    """The orchestrator as a library client of an external scheduler (the
    campaign service's seam): roster comes from the scheduler, backend
    preparation is the owner's job, and journal probing stays one prober
    per shard however many attempts happen."""

    def test_backends_and_scheduler_are_mutually_exclusive(self, tmp_path):
        runner = CampaignRunner(journal_dir=tmp_path)
        scheduler = BackendScheduler([LocalProcessBackend()])
        with pytest.raises(ValueError, match="not both"):
            ShardOrchestrator(
                "orch", 2, runner, backends=[LocalProcessBackend()], scheduler=scheduler
            )

    def test_injected_scheduler_supplies_the_roster(self, tmp_path):
        runner = CampaignRunner(journal_dir=tmp_path)
        roster = [LocalProcessBackend(slots=1), LocalProcessBackend(slots=2)]
        orchestrator = ShardOrchestrator(
            "orch", 2, runner, scheduler=BackendScheduler(roster)
        )
        assert orchestrator.backends == roster
        assert orchestrator.scheduler.backends == roster

    def test_prepare_backends_false_skips_preparation(
        self, tmp_path, worker_script, monkeypatch
    ):
        prepared = []

        class Recording(LocalProcessBackend):
            def prepare(self, journal_dir):
                prepared.append(journal_dir)

        shared = BackendScheduler([Recording()])
        orchestrator = _orchestrator(
            tmp_path, worker_script, scheduler=shared, prepare_backends=False
        )
        report = orchestrator.run()
        assert report.merged
        assert prepared == []  # the scheduler's owner prepared it already

        # The default (owning the roster) still prepares per run.
        own = _orchestrator(tmp_path / "own", worker_script, backends=[Recording()])
        own.run()
        assert prepared == [own.journal_dir]

    def test_one_journal_prober_per_shard_across_retries(
        self, tmp_path, worker_script, monkeypatch
    ):
        """Satellite regression: retries must reuse the shard's incremental
        prober (O(new bytes) total) instead of constructing a fresh one —
        which would re-read the whole journal from offset zero — per
        attempt."""
        constructed = []
        real = orchestrator_module.JournalProgress

        def counting(path):
            constructed.append(Path(path).name)
            return real(path)

        monkeypatch.setattr(orchestrator_module, "JournalProgress", counting)
        monkeypatch.setenv("ORCH_TEST_CRASH_SHARD", "1")
        monkeypatch.setenv("ORCH_TEST_CRASH_MARKER", str(tmp_path / "crashed.marker"))
        orchestrator = _orchestrator(tmp_path, worker_script, max_retries=2)
        report = orchestrator.run()

        assert report.merged
        assert len(report.outcomes[0].attempts) == 2  # the kill forced a retry
        # Exactly one prober per shard, not one per attempt.
        assert sorted(constructed) == sorted(
            spec.journal_name("orch") for spec in orchestrator.shard_specs()
        )


class TestClusterTemplates:
    def test_slurm_template_renders_shard_commands(self):
        script = render_slurm_script(
            "fig6a", 16, journal_dir="/shared/journals", workers_per_shard=4,
            shard_args=("--scale", "paper"),
        )
        assert "#SBATCH --array=1-16" in script
        assert "#SBATCH --cpus-per-task=4" in script
        assert "#SBATCH --requeue" in script
        assert '--shard "${SLURM_ARRAY_TASK_ID}/16"' in script
        assert "--scale paper" in script
        assert "--resume" in script
        assert "--merge-only" in script  # the post-array merge hint

    def test_k8s_template_renders_indexed_job(self):
        manifest = render_k8s_manifest(
            "fig6a", 8, journal_dir="/shared/journals", workers_per_shard=2
        )
        assert "completionMode: Indexed" in manifest
        assert "completions: 8" in manifest
        assert "parallelism: 8" in manifest
        assert '--shard "$((JOB_COMPLETION_INDEX + 1))/8"' in manifest
        assert "--resume" in manifest
        assert "persistentVolumeClaim" in manifest


class TestOrchestrateCLIEndToEnd:
    def test_fig6a_orchestrate_identity_with_injected_failure(
        self, tmp_path, policy_cache
    ):
        """The acceptance criterion: ``orchestrate fig6a --shards 2`` with an
        injected first-attempt kill of shard 1 produces a payload
        byte-identical to the unsharded CLI run (CI's ``orchestrate-identity``
        job runs the same flow from the shell)."""
        cache = str(policy_cache.cache_dir)
        single = tmp_path / "single"
        orch = tmp_path / "orch"
        journals = tmp_path / "journals"

        assert main(
            ["fig6a", "--scale", "tiny", "--cache-dir", cache, "--output", str(single)]
        ) == 0
        assert main(
            [
                "orchestrate", "fig6a", "--shards", "2", "--scale", "tiny",
                "--cache-dir", cache, "--journal-dir", str(journals),
                "--output", str(orch), "--inject-kill-shard", "1",
                "--max-retries", "2", "--poll-interval", "0.1",
            ]
        ) == 0

        assert (orch / "fig6a.json").read_bytes() == (single / "fig6a.json").read_bytes()
        assert (orch / "fig6a.txt").read_bytes() == (single / "fig6a.txt").read_bytes()

        report = json.loads((journals / "fig6a.orchestrator.json").read_text())
        assert report["merged"] is True
        shard1 = report["shards"][0]
        # The injected kill forced at least one retry, and every retry resumed.
        assert len(shard1["attempts"]) >= 2
        assert all(attempt["resumed"] for attempt in shard1["attempts"][1:])
        assert "injected kill" in shard1["attempts"][0]["reason"]

    def test_fig6a_mixed_backend_identity_with_failover(
        self, tmp_path, policy_cache, monkeypatch
    ):
        """The acceptance criterion: a mixed-backend run (local + the
        fake-slurm shim) with an injected kill of shard 1 fails over to the
        other backend and still merges a payload byte-identical to a
        single-machine run (CI's ``backend-identity`` job runs the same flow
        from the shell)."""
        monkeypatch.setenv("FAKE_SLURM_STATE", str(tmp_path / "slurm-state"))
        cache = str(policy_cache.cache_dir)
        single = tmp_path / "single"
        mixed = tmp_path / "mixed"
        journals = tmp_path / "journals"

        assert main(
            ["fig6a", "--scale", "tiny", "--cache-dir", cache, "--output", str(single)]
        ) == 0
        assert main(
            [
                "orchestrate", "fig6a", "--shards", "2", "--scale", "tiny",
                "--cache-dir", cache, "--journal-dir", str(journals),
                "--output", str(mixed),
                "--backend", "local:1",
                "--backend", f"slurm:1,bin_dir={FAKE_SLURM},poll=0.1",
                "--inject-kill-shard", "1",
                "--max-retries", "2", "--poll-interval", "0.1",
            ]
        ) == 0

        assert (mixed / "fig6a.json").read_bytes() == (single / "fig6a.json").read_bytes()
        assert (mixed / "fig6a.txt").read_bytes() == (single / "fig6a.txt").read_bytes()

        report = json.loads((journals / "fig6a.orchestrator.json").read_text())
        assert report["merged"] is True
        assert report["backends"] == ["local[slots=1]", "slurm[slots=1]"]
        shard1 = report["shards"][0]
        assert "injected kill" in shard1["attempts"][0]["reason"]
        assert shard1["attempts"][0]["backend"] == "local"
        # The retry failed over to the fake-slurm backend, with --resume.
        assert shard1["attempts"][-1]["backend"] == "slurm"
        assert all(attempt["resumed"] for attempt in shard1["attempts"][1:])
        # Shard 2's first (and only) attempt ran as a fake-slurm job.
        shard2 = report["shards"][1]
        assert shard2["attempts"][0]["backend"] == "slurm"
        assert shard2["succeeded"]
