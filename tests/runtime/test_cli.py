"""Argument validation tests for the ``repro-campaign`` CLI.

These exercise the parser layer only — campaign execution is covered by
``test_campaign_runner.py``/``test_sharding.py`` and the CI jobs.
"""

import pytest

from repro.runtime.cli import main


def _error_text(capsys) -> str:
    return capsys.readouterr().err


class TestWorkerValidation:
    @pytest.mark.parametrize("workers", ["-1", "-3"])
    def test_negative_workers_rejected(self, capsys, workers):
        """Regression: CampaignRunner silently clamps negative workers to 1;
        the CLI must reject them like it rejects bad --replicates."""
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3a", "--workers", workers])
        assert excinfo.value.code == 2
        assert "--workers must be >= 0" in _error_text(capsys)

    def test_zero_workers_means_machine_default(self, capsys):
        # 0 is valid (machine-sized pool); prove it passes the parser by
        # failing later, on the unknown-experiment check instead.
        with pytest.raises(SystemExit):
            main(["not-an-artifact", "--workers", "0"])
        assert "unknown experiments" in _error_text(capsys)


class TestShardValidation:
    @pytest.mark.parametrize("spec", ["0/2", "3/2", "a/b", "1-2", "1/0", ""])
    def test_malformed_shard_rejected(self, capsys, spec, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6a", "--shard", spec, "--journal-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "invalid --shard" in _error_text(capsys)

    def test_shard_requires_journal_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig6a", "--shard", "1/2"])
        assert "journal store" in _error_text(capsys)

    def test_merge_only_requires_journal_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig6a", "--merge-only"])
        assert "journal store" in _error_text(capsys)

    def test_shard_and_merge_only_mutually_exclusive(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig6a", "--shard", "1/2", "--merge-only", "--journal-dir", str(tmp_path)])
        assert "mutually exclusive" in _error_text(capsys)

    def test_sharded_replicates_need_explicit_seed(self, capsys, tmp_path):
        """Unseeded replicates derive from OS entropy, so each machine would
        build a different plan and shard journals could never merge."""
        with pytest.raises(SystemExit):
            main(
                ["fig6a", "--shard", "1/2", "--replicates", "2",
                 "--journal-dir", str(tmp_path)]
            )
        assert "--seed" in _error_text(capsys)

    def test_sharded_replicates_allowed_with_seed(self, capsys, tmp_path):
        # With an explicit seed the combination is valid; it passes the
        # parser and fails later only on the unknown-experiment check.
        with pytest.raises(SystemExit):
            main(
                ["nope", "--shard", "1/2", "--replicates", "2", "--seed", "7",
                 "--journal-dir", str(tmp_path)]
            )
        assert "unknown experiments" in _error_text(capsys)


class TestOrchestrateValidation:
    def test_orchestrate_requires_journal_store(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["orchestrate", "fig6a", "--shards", "2"])
        assert excinfo.value.code == 2
        assert "journal store" in _error_text(capsys)

    def test_orchestrate_requires_shards(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["orchestrate", "fig6a"])
        assert excinfo.value.code == 2
        assert "--shards" in _error_text(capsys)

    @pytest.mark.parametrize(
        ("flag", "value", "message"),
        [
            ("--shards", "0", "--shards must be >= 1"),
            ("--workers-per-shard", "0", "--workers-per-shard must be >= 1"),
            ("--max-retries", "-1", "--max-retries must be >= 0"),
            ("--batch-cells", "0", "--batch-cells must be >= 1"),
            ("--poll-interval", "0", "--poll-interval must be > 0"),
            ("--stall-timeout", "0", "--stall-timeout must be > 0"),
        ],
    )
    def test_orchestrate_rejects_bad_knobs(self, capsys, tmp_path, flag, value, message):
        argv = ["orchestrate", "fig6a", "--journal-dir", str(tmp_path)]
        if flag != "--shards":
            argv += ["--shards", "2"]
        argv += [flag, value]
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert message in _error_text(capsys)

    @pytest.mark.parametrize("kill_shard", ["0", "3", "-1"])
    def test_orchestrate_rejects_out_of_range_inject_kill(self, capsys, tmp_path, kill_shard):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["orchestrate", "fig6a", "--shards", "2", "--journal-dir", str(tmp_path),
                 "--inject-kill-shard", kill_shard]
            )
        assert excinfo.value.code == 2
        assert "--inject-kill-shard must name a shard in 1..2" in _error_text(capsys)

    @pytest.mark.parametrize(
        ("spec", "message"),
        [
            ("teleport", "unknown backend"),
            ("local:0", "slots must be >= 1"),
            ("ssh:2", "requires a host"),
            ("slurm:1,flavor=fast", "does not accept option"),
        ],
    )
    def test_orchestrate_rejects_bad_backend_specs(self, capsys, tmp_path, spec, message):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["orchestrate", "fig6a", "--shards", "2", "--journal-dir", str(tmp_path),
                 "--backend", spec]
            )
        assert excinfo.value.code == 2
        error = _error_text(capsys)
        assert "invalid --backend" in error
        assert message in error

    def test_orchestrate_rejects_single_cell_artifacts(self, capsys, tmp_path):
        """fig9 has one cell — nothing to shard, so orchestration must fail
        loudly (exit 1) instead of spawning useless subprocesses."""
        exit_code = main(
            ["orchestrate", "fig9", "--shards", "2", "--journal-dir", str(tmp_path)]
        )
        assert exit_code == 1
        assert "single-cell" in _error_text(capsys)

    def test_orchestrate_unknown_experiment_fails(self, capsys, tmp_path):
        exit_code = main(
            ["orchestrate", "nope", "--shards", "2", "--journal-dir", str(tmp_path)]
        )
        assert exit_code == 1
        assert "unknown experiment" in _error_text(capsys)

    def test_emit_templates_render_without_running(self, capsys, tmp_path):
        """--emit-slurm/--emit-k8s write ready-to-submit templates and exit 0
        without building a plan or spawning any shard."""
        slurm = tmp_path / "fig6a.sbatch"
        k8s = tmp_path / "fig6a.yaml"
        exit_code = main(
            [
                "orchestrate", "fig6a", "--shards", "4", "--scale", "paper",
                "--workers-per-shard", "8", "--journal-dir", "/shared/journals",
                "--emit-slurm", str(slurm), "--emit-k8s", str(k8s),
            ]
        )
        assert exit_code == 0
        script = slurm.read_text()
        assert "#SBATCH --array=1-4" in script
        assert '--shard "${SLURM_ARRAY_TASK_ID}/4"' in script
        assert "--scale paper" in script
        manifest = k8s.read_text()
        assert "completionMode: Indexed" in manifest
        assert '--shard "$((JOB_COMPLETION_INDEX + 1))/4"' in manifest

    def test_dry_run_prints_assignment_without_launching(self, capsys, tmp_path):
        """--dry-run resolves backend specs and prints shard->backend lines
        plus exact commands; nothing runs, no plan is built, no dirs appear."""
        journal_dir = tmp_path / "journals"
        exit_code = main(
            [
                "orchestrate", "fig6a", "--shards", "3", "--scale", "tiny",
                "--journal-dir", str(journal_dir), "--dry-run",
                "--backend", "local:1", "--backend", "slurm:2,bin_dir=/opt/slurm/bin",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "local[slots=1], slurm[slots=2]" in out
        assert "shard 1/3 -> slurm" in out  # most free slots wins
        assert "shard 2/3 -> local" in out
        assert "--shard 1/3" in out and "--scale tiny" in out
        assert "nothing launched" in out
        assert not journal_dir.exists()

    def test_dry_run_conflicts_with_template_emission(self, capsys, tmp_path):
        """Regression: --dry-run used to silently swallow --emit-slurm (exit 0,
        no file written); the combination is now rejected up front."""
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["orchestrate", "fig6a", "--shards", "2",
                 "--journal-dir", str(tmp_path), "--dry-run",
                 "--emit-slurm", str(tmp_path / "fig6a.sbatch")]
            )
        assert excinfo.value.code == 2
        assert "mutually exclusive" in _error_text(capsys)
        assert not (tmp_path / "fig6a.sbatch").exists()

    def test_dry_run_with_default_backend(self, capsys, tmp_path):
        exit_code = main(
            ["orchestrate", "fig6a", "--shards", "2",
             "--journal-dir", str(tmp_path / "j"), "--dry-run"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "local[slots=unbounded]" in out
        assert "shard 1/2 -> local" in out and "shard 2/2 -> local" in out

    def test_main_help_mentions_shard_merge_resume_workflow(self, capsys):
        """Regression for the help-text satellite: the epilog shows worked
        shard / merge / resume / orchestrate examples."""
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        assert "--shard 1/2 --journal-dir" in text
        assert "--merge-only --journal-dir" in text
        assert "--resume" in text
        assert "orchestrate fig6a --shards" in text


class TestExistingValidation:
    def test_resume_requires_journal(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3a", "--resume"])
        assert "--resume needs a journal" in _error_text(capsys)

    def test_replicates_floor(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3a", "--replicates", "0"])
        assert "--replicates" in _error_text(capsys)

    def test_merge_only_without_shard_journals_fails_per_artifact(self, capsys, tmp_path):
        """--merge-only with an empty journal store fails the artifact (exit 1)
        with the ShardMergeError surfaced, rather than silently running cells."""
        exit_code = main(["fig3a", "--merge-only", "--journal-dir", str(tmp_path)])
        assert exit_code == 1
        assert "no shard journals" in _error_text(capsys)

    def test_single_cell_plans_skipped_under_shard(self, capsys, tmp_path):
        """`all --shard k/n` must stay usable: single-cell artifacts are
        skipped with a notice, not failed on every machine (exit 0)."""
        exit_code = main(["fig9", "--shard", "1/2", "--journal-dir", str(tmp_path)])
        assert exit_code == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_single_cell_plans_skipped_under_merge_only(self, capsys, tmp_path):
        exit_code = main(["fig9", "--merge-only", "--journal-dir", str(tmp_path)])
        assert exit_code == 0
        assert "SKIPPED" in capsys.readouterr().out


def _value(x):
    return float(x)


class TestStoreSubcommands:
    @staticmethod
    def _journal(tmp_path):
        """One tiny two-cell journal directory, written via the journal layer."""
        import json as _json

        from repro.runtime.cells import CampaignPlan, CellTask
        from repro.runtime.journal import CampaignJournal

        plan = CampaignPlan(
            experiment_id="demo",
            cells=[
                CellTask(experiment_id="demo", key=("ber", i), fn=_value, kwargs={"x": i})
                for i in range(2)
            ],
            merge=list,
        )
        journal = CampaignJournal(tmp_path / "demo.jsonl", plan)
        journal.start({})
        for index in range(2):
            journal.record(index, plan.cells[index].run())
        journal.close()
        return _json

    def test_ingest_then_query_round_trip(self, capsys, tmp_path):
        json = self._journal(tmp_path)
        assert main(["ingest", str(tmp_path)]) == 0
        assert "+2 cell row(s)" in capsys.readouterr().out
        assert (tmp_path / "store.sqlite").exists()
        exit_code = main(
            ["query", "cells", "demo", "--journal-dir", str(tmp_path), "--format", "ndjson"]
        )
        assert exit_code == 0
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert [json.loads(line)["output"] for line in lines] == [0.0, 1.0]

    def test_second_ingest_reports_zero_rows(self, capsys, tmp_path):
        self._journal(tmp_path)
        assert main(["ingest", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["ingest", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "+0 cell row(s)" in out
        assert "0 ingested" in out

    def test_query_without_store_is_a_usage_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "campaigns"])
        assert excinfo.value.code == 2
        assert "--store" in _error_text(capsys)
        with pytest.raises(SystemExit):
            main(["query", "campaigns", "--journal-dir", str(tmp_path)])
        assert "ingest" in _error_text(capsys)

    def test_query_requires_a_canned_query_or_sql(self, capsys, tmp_path):
        self._journal(tmp_path)
        main(["ingest", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["query", "--journal-dir", str(tmp_path)])
        assert "canned query" in _error_text(capsys)
        with pytest.raises(SystemExit):
            main(["query", "cells", "demo", "--sql", "SELECT 1", "--journal-dir", str(tmp_path)])
        assert "one or the other" in _error_text(capsys)
        with pytest.raises(SystemExit):
            main(["query", "teleport", "--journal-dir", str(tmp_path)])
        assert "unknown query" in _error_text(capsys)

    def test_sql_escape_hatch(self, capsys, tmp_path):
        self._journal(tmp_path)
        main(["ingest", str(tmp_path)])
        capsys.readouterr()
        exit_code = main(
            [
                "query",
                "--sql",
                "SELECT COUNT(*) AS cells FROM cells",
                "--journal-dir",
                str(tmp_path),
                "--format",
                "json",
            ]
        )
        assert exit_code == 0
        assert '"cells": 2' in capsys.readouterr().out

    def test_unknown_label_is_a_runtime_failure(self, capsys, tmp_path):
        self._journal(tmp_path)
        main(["ingest", str(tmp_path)])
        assert main(["query", "cells", "fig6a", "--journal-dir", str(tmp_path)]) == 1
        assert "no ingested campaign" in _error_text(capsys)

    def test_mixed_fingerprints_fail_ingest_loudly(self, capsys, tmp_path):
        import json as _json

        self._journal(tmp_path)
        header = _json.loads(
            (tmp_path / "demo.jsonl").read_text(encoding="utf8").splitlines()[0]
        )
        stale = dict(header, fingerprint="f" * 64, shard=[1, 2])
        (tmp_path / "demo.shard-1-of-2.jsonl").write_text(
            _json.dumps(stale) + "\n", encoding="utf8"
        )
        assert main(["ingest", str(tmp_path)]) == 1
        assert "mixed plan fingerprints" in _error_text(capsys)


class TestServeValidation:
    def test_dry_run_prints_roster_and_quotas_binding_nothing(self, capsys, tmp_path):
        journal_dir = tmp_path / "journals"
        exit_code = main(
            [
                "serve",
                "--journal-dir", str(journal_dir),
                "--backend", "local:2",
                "--backend", "local:1",
                "--quota", "alice=2",
                "--default-quota", "4",
                "--dry-run",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "campaign service (dry run)" in out
        assert "local[slots=2], local#2[slots=1]" in out
        assert "total slots: 3" in out
        assert "alice" in out and "*" in out
        assert "dry run: nothing started" in out
        # Truly offline: no socket bound, no journal store touched.
        assert not journal_dir.exists()

    def test_dry_run_default_socket_under_journal_dir(self, capsys, tmp_path):
        assert main(["serve", "--journal-dir", str(tmp_path), "--dry-run"]) == 0
        assert f"socket: {tmp_path / 'service.sock'}" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "extra,message",
        [
            (["--quota", "alice"], "--quota must be TENANT=N"),
            (["--quota", "=3"], "--quota must be TENANT=N"),
            (["--quota", "alice=lots"], "N must be an integer"),
            (["--quota", "alice=0"], "--quota caps must be >= 1"),
            (["--default-quota", "0"], "--default-quota must be >= 1"),
            (["--max-retries", "-1"], "--max-retries must be >= 0"),
            (["--poll-interval", "0"], "--poll-interval must be > 0"),
            (["--stall-timeout", "0"], "--stall-timeout must be > 0"),
            (["--inject-kill-shard", "0"], "--inject-kill-shard must be >= 1"),
            (["--backend", "warp:1"], "invalid --backend"),
        ],
    )
    def test_bad_serve_arguments_rejected(self, capsys, tmp_path, extra, message):
        with pytest.raises(SystemExit):
            main(["serve", "--journal-dir", str(tmp_path), "--dry-run"] + extra)
        assert message in _error_text(capsys)


class TestClientSocketResolution:
    @pytest.mark.parametrize("command", [["status"], ["tail", "x"], ["cancel", "x"], ["submit", "fig6a"]])
    def test_client_commands_need_a_socket_or_journal_dir(self, capsys, command):
        with pytest.raises(SystemExit):
            main(command)
        assert "give --socket PATH or --journal-dir DIR" in _error_text(capsys)

    def test_journal_dir_shorthand_resolves_and_unreachable_daemon_fails_cleanly(
        self, capsys, tmp_path
    ):
        assert main(["status", "--journal-dir", str(tmp_path)]) == 1
        err = _error_text(capsys)
        assert "[status] FAILED" in err
        assert str(tmp_path / "service.sock") in err

    def test_unreachable_socket_is_an_error_not_a_crash(self, capsys, tmp_path):
        assert main(["cancel", "ghost", "--socket", str(tmp_path / "nope.sock")]) == 1
        assert "[cancel] FAILED" in _error_text(capsys)
