"""Argument validation tests for the ``repro-campaign`` CLI.

These exercise the parser layer only — campaign execution is covered by
``test_campaign_runner.py``/``test_sharding.py`` and the CI jobs.
"""

import pytest

from repro.runtime.cli import main


def _error_text(capsys) -> str:
    return capsys.readouterr().err


class TestWorkerValidation:
    @pytest.mark.parametrize("workers", ["-1", "-3"])
    def test_negative_workers_rejected(self, capsys, workers):
        """Regression: CampaignRunner silently clamps negative workers to 1;
        the CLI must reject them like it rejects bad --replicates."""
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3a", "--workers", workers])
        assert excinfo.value.code == 2
        assert "--workers must be >= 0" in _error_text(capsys)

    def test_zero_workers_means_machine_default(self, capsys):
        # 0 is valid (machine-sized pool); prove it passes the parser by
        # failing later, on the unknown-experiment check instead.
        with pytest.raises(SystemExit):
            main(["not-an-artifact", "--workers", "0"])
        assert "unknown experiments" in _error_text(capsys)


class TestShardValidation:
    @pytest.mark.parametrize("spec", ["0/2", "3/2", "a/b", "1-2", "1/0", ""])
    def test_malformed_shard_rejected(self, capsys, spec, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6a", "--shard", spec, "--journal-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "invalid --shard" in _error_text(capsys)

    def test_shard_requires_journal_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig6a", "--shard", "1/2"])
        assert "journal store" in _error_text(capsys)

    def test_merge_only_requires_journal_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig6a", "--merge-only"])
        assert "journal store" in _error_text(capsys)

    def test_shard_and_merge_only_mutually_exclusive(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig6a", "--shard", "1/2", "--merge-only", "--journal-dir", str(tmp_path)])
        assert "mutually exclusive" in _error_text(capsys)

    def test_sharded_replicates_need_explicit_seed(self, capsys, tmp_path):
        """Unseeded replicates derive from OS entropy, so each machine would
        build a different plan and shard journals could never merge."""
        with pytest.raises(SystemExit):
            main(
                ["fig6a", "--shard", "1/2", "--replicates", "2",
                 "--journal-dir", str(tmp_path)]
            )
        assert "--seed" in _error_text(capsys)

    def test_sharded_replicates_allowed_with_seed(self, capsys, tmp_path):
        # With an explicit seed the combination is valid; it passes the
        # parser and fails later only on the unknown-experiment check.
        with pytest.raises(SystemExit):
            main(
                ["nope", "--shard", "1/2", "--replicates", "2", "--seed", "7",
                 "--journal-dir", str(tmp_path)]
            )
        assert "unknown experiments" in _error_text(capsys)


class TestExistingValidation:
    def test_resume_requires_journal(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3a", "--resume"])
        assert "--resume needs a journal" in _error_text(capsys)

    def test_replicates_floor(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3a", "--replicates", "0"])
        assert "--replicates" in _error_text(capsys)

    def test_merge_only_without_shard_journals_fails_per_artifact(self, capsys, tmp_path):
        """--merge-only with an empty journal store fails the artifact (exit 1)
        with the ShardMergeError surfaced, rather than silently running cells."""
        exit_code = main(["fig3a", "--merge-only", "--journal-dir", str(tmp_path)])
        assert exit_code == 1
        assert "no shard journals" in _error_text(capsys)

    def test_single_cell_plans_skipped_under_shard(self, capsys, tmp_path):
        """`all --shard k/n` must stay usable: single-cell artifacts are
        skipped with a notice, not failed on every machine (exit 0)."""
        exit_code = main(["fig9", "--shard", "1/2", "--journal-dir", str(tmp_path)])
        assert exit_code == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_single_cell_plans_skipped_under_merge_only(self, capsys, tmp_path):
        exit_code = main(["fig9", "--merge-only", "--journal-dir", str(tmp_path)])
        assert exit_code == 0
        assert "SKIPPED" in capsys.readouterr().out
