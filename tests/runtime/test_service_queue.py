"""Unit tests for the service admission layer (QuotaQueue + ServiceDispatcher).

The queue's contract is *determinism*: given the same submission/grant/release
sequence it always dispatches in (priority desc, submission order), skipping —
never blocking on — tenants at quota.  The dispatcher fuses that rule with
backend slot accounting under one condition variable, so these tests also pin
the concurrency behaviour: who wakes when a slot frees, and that cancellation
never wedges the queue.  The randomized counterpart lives in
``tests/properties/test_property_service_queue.py``.
"""

import asyncio

import pytest

from repro.runtime.backends import LocalProcessBackend
from repro.runtime.scheduler import BackendScheduler
from repro.runtime.service_queue import QuotaError, QuotaQueue, ServiceDispatcher


class TestQuotaQueue:
    def test_priority_then_submission_order(self):
        queue = QuotaQueue()
        low = queue.submit("t", 0)
        high_first = queue.submit("t", 5)
        high_second = queue.submit("t", 5)

        assert queue.grantable() is high_first
        queue.grant(high_first)
        assert queue.grantable() is high_second
        queue.grant(high_second)
        assert queue.grantable() is low

    def test_quota_blocked_tenant_is_skipped_not_blocking(self):
        queue = QuotaQueue({"a": 1})
        a_first = queue.submit("a", 10)
        a_second = queue.submit("a", 10)
        b_only = queue.submit("b", 0)

        assert queue.grantable() is a_first
        queue.grant(a_first)
        # "a" is at quota: its second (higher-priority) ticket is skipped and
        # the lower-priority tenant "b" dispatches instead of deadlocking.
        assert queue.grantable() is b_only
        queue.grant(b_only)
        assert queue.grantable() is None

        queue.release("a")
        assert queue.grantable() is a_second

    def test_default_quota_applies_to_unlisted_tenants(self):
        queue = QuotaQueue({"vip": 2}, default_quota=1)
        assert queue.quota("vip") == 2
        assert queue.quota("anyone") == 1

        first = queue.submit("anyone", 0)
        second = queue.submit("anyone", 0)
        queue.grant(first)
        assert queue.grantable() is None
        queue.release("anyone")
        assert queue.grantable() is second

    def test_invalid_quotas_rejected(self):
        with pytest.raises(QuotaError):
            QuotaQueue({"a": 0})
        with pytest.raises(QuotaError):
            QuotaQueue(default_quota=0)
        with pytest.raises(QuotaError):
            QuotaQueue().submit("")

    def test_release_without_grant_raises(self):
        queue = QuotaQueue()
        with pytest.raises(QuotaError):
            queue.release("ghost")

    def test_grant_requires_pending_ticket_and_headroom(self):
        queue = QuotaQueue({"a": 1})
        ticket = queue.submit("a", 0)
        queue.grant(ticket)
        with pytest.raises(QuotaError):
            queue.grant(ticket)  # no longer pending
        second = queue.submit("a", 0)
        with pytest.raises(QuotaError):
            queue.grant(second)  # tenant at quota

    def test_withdraw_is_idempotent_and_removes_from_dispatch(self):
        queue = QuotaQueue()
        doomed = queue.submit("a", 9)
        survivor = queue.submit("b", 0)
        queue.withdraw(doomed)
        queue.withdraw(doomed)
        assert queue.grantable() is survivor

    def test_describe_quotas_rows(self):
        queue = QuotaQueue({"alice": 2}, default_quota=4)
        ticket = queue.submit("bob", 0)
        queue.grant(ticket)
        rows = queue.describe_quotas()
        assert ("*", "4", 0) in rows
        assert ("alice", "2", 0) in rows
        assert ("bob", "4", 1) in rows


def _dispatcher(slots: int = 1, **kwargs) -> ServiceDispatcher:
    scheduler = BackendScheduler([LocalProcessBackend(slots=slots)])
    return ServiceDispatcher(scheduler, **kwargs)


class TestServiceDispatcher:
    def test_higher_priority_waiter_takes_the_freed_slot(self):
        async def scenario():
            dispatcher = _dispatcher(slots=1)
            first = await dispatcher.acquire("a", 0, meta={"campaign": "first"})

            order = []

            async def worker(tag, tenant, priority):
                backend = await dispatcher.acquire(tenant, priority, meta={"campaign": tag})
                order.append(tag)
                await dispatcher.release(tenant, backend)

            low = asyncio.ensure_future(worker("low", "a", 0))
            await asyncio.sleep(0.01)  # low queues first...
            high = asyncio.ensure_future(worker("high", "b", 5))
            await asyncio.sleep(0.01)  # ...then high arrives behind it
            await dispatcher.release("a", first)
            await asyncio.gather(low, high)

            assert order == ["high", "low"]
            assert [entry["campaign"] for entry in dispatcher.dispatch_log] == [
                "first", "high", "low",
            ]
            assert all(entry["backend"] == "local" for entry in dispatcher.dispatch_log)

        asyncio.run(scenario())

    def test_quota_bounds_concurrent_grants_per_tenant(self):
        async def scenario():
            dispatcher = _dispatcher(slots=8, quotas={"a": 2})
            running = 0
            peak = 0

            async def worker():
                nonlocal running, peak
                backend = await dispatcher.acquire("a", 0)
                running += 1
                peak = max(peak, running)
                await asyncio.sleep(0.01)
                running -= 1
                await dispatcher.release("a", backend)

            await asyncio.gather(*(worker() for _ in range(6)))
            assert peak == 2
            assert len(dispatcher.dispatch_log) == 6

        asyncio.run(scenario())

    def test_cancelled_acquire_withdraws_and_queue_drains(self):
        async def scenario():
            dispatcher = _dispatcher(slots=1)
            held = await dispatcher.acquire("a", 0)

            doomed = asyncio.ensure_future(dispatcher.acquire("b", 9))
            await asyncio.sleep(0.01)
            doomed.cancel()
            await asyncio.gather(doomed, return_exceptions=True)

            waiter = asyncio.ensure_future(dispatcher.acquire("c", 0))
            await asyncio.sleep(0.01)
            await dispatcher.release("a", held)
            backend = await asyncio.wait_for(waiter, timeout=5)
            await dispatcher.release("c", backend)
            assert [entry["tenant"] for entry in dispatcher.dispatch_log] == ["a", "c"]

        asyncio.run(scenario())

    def test_has_headroom_consults_quota_and_slots(self):
        async def scenario():
            dispatcher = _dispatcher(slots=2, quotas={"a": 1})
            assert dispatcher.has_headroom("a")
            backend = await dispatcher.acquire("a", 0)
            assert not dispatcher.has_headroom("a")  # quota, not slots
            assert dispatcher.has_headroom("b")
            other = await dispatcher.acquire("b", 0)
            assert not dispatcher.has_headroom("b")  # slots this time
            await dispatcher.release("a", backend)
            await dispatcher.release("b", other)

        asyncio.run(scenario())
