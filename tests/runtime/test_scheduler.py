"""Tests for the capacity-aware backend scheduler.

The properties that matter downstream: slot accounting (never more
concurrent attempts than a backend declares), saturation queueing (acquire
blocks until a release), failover (``avoid`` is never handed back while
other backends exist — the guarantee the orchestrator's retry path builds
on), and the deterministic ``--dry-run`` assignment preview.
"""

import asyncio

import pytest

from repro.runtime.backends import LocalProcessBackend
from repro.runtime.scheduler import BackendScheduler


def _backends(*slot_counts):
    return [
        LocalProcessBackend(slots=slots, name=f"b{index}")
        for index, slots in enumerate(slot_counts)
    ]


class TestAccounting:
    def test_requires_a_backend(self):
        with pytest.raises(ValueError, match="at least one backend"):
            BackendScheduler([])

    def test_total_slots(self):
        assert BackendScheduler(_backends(2, 3)).total_slots == 5
        assert BackendScheduler([LocalProcessBackend()]).total_slots is None

    def test_acquire_prefers_most_free_slots_then_declaration_order(self):
        async def scenario():
            scheduler = BackendScheduler(_backends(2, 1))
            first = await scheduler.acquire()   # b0: 2 free vs b1: 1 free
            second = await scheduler.acquire()  # tie at 1 free -> declaration order
            third = await scheduler.acquire()   # only b1 left
            return [backend.name for backend in (first, second, third)]

        assert asyncio.run(scenario()) == ["b0", "b0", "b1"]

    def test_release_without_acquire_is_an_error(self):
        async def scenario():
            [backend] = _backends(1)
            scheduler = BackendScheduler([backend])
            await scheduler.release(backend)

        with pytest.raises(RuntimeError, match="release without acquire"):
            asyncio.run(scenario())


class TestSaturationQueueing:
    def test_acquire_blocks_until_release(self):
        async def scenario():
            [backend] = _backends(1)
            scheduler = BackendScheduler([backend])
            held = await scheduler.acquire()
            waiter = asyncio.ensure_future(scheduler.acquire())
            await asyncio.sleep(0.05)
            assert not waiter.done()  # saturated: the second acquire queues
            assert not scheduler.has_free_slot()
            await scheduler.release(held)
            acquired = await asyncio.wait_for(waiter, timeout=1)
            return acquired.name

        assert asyncio.run(scenario()) == "b0"

    def test_unbounded_backend_never_queues(self):
        async def scenario():
            scheduler = BackendScheduler([LocalProcessBackend(name="anything")])
            backends = [await scheduler.acquire() for _ in range(32)]
            return {backend.name for backend in backends}

        assert asyncio.run(scenario()) == {"anything"}


class TestFailover:
    def test_avoid_picks_the_other_backend(self):
        async def scenario():
            alpha, beta = _backends(2, 2)
            scheduler = BackendScheduler([alpha, beta])
            return (await scheduler.acquire(avoid=alpha)).name

        assert asyncio.run(scenario()) == "b1"

    def test_avoid_waits_for_the_other_backend_even_if_avoided_is_free(self):
        """A failed backend may be a failed machine: the retry must queue for
        another backend's slot rather than land back on the one that just
        failed it."""

        async def scenario():
            alpha, beta = _backends(2, 1)
            scheduler = BackendScheduler([alpha, beta])
            held = await scheduler.acquire(avoid=alpha)  # saturates beta
            assert held.name == "b1"
            waiter = asyncio.ensure_future(scheduler.acquire(avoid=alpha))
            await asyncio.sleep(0.05)
            assert not waiter.done()  # alpha has free slots, but is avoided
            await scheduler.release(held)
            return (await asyncio.wait_for(waiter, timeout=1)).name

        assert asyncio.run(scenario()) == "b1"

    def test_single_backend_reuses_the_avoided_one(self):
        async def scenario():
            [only] = _backends(2)
            scheduler = BackendScheduler([only])
            return (await scheduler.acquire(avoid=only)).name

        assert asyncio.run(scenario()) == "b0"


class TestDryRunPreview:
    def test_weighted_first_wave_then_fifo(self):
        scheduler = BackendScheduler(_backends(2, 1))
        names = [backend.name for backend in scheduler.plan_assignments(5)]
        # First wave fills by free slots (b0, b0, b1); the overflow assumes
        # the oldest outstanding attempt finishes first.
        assert names == ["b0", "b0", "b1", "b0", "b0"]

    def test_unbounded_backend_takes_everything(self):
        scheduler = BackendScheduler(
            [LocalProcessBackend(name="inf"), *_backends(1)]
        )
        names = {backend.name for backend in scheduler.plan_assignments(6)}
        assert names == {"inf"}

    def test_matches_live_acquire_order_when_unsaturated(self):
        async def live():
            scheduler = BackendScheduler(_backends(2, 2))
            return [(await scheduler.acquire()).name for _ in range(4)]

        preview = [
            backend.name
            for backend in BackendScheduler(_backends(2, 2)).plan_assignments(4)
        ]
        assert preview == asyncio.run(live())
