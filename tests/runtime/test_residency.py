"""Tests for per-worker policy residency (PolicyRef + registry).

The guarantee under test: decomposed plans no longer pickle pretrained state
dicts into every cell — cells carry small ``(cache_dir, key)`` handles, the
referenced policy is decoded once per process, and every resolution hands the
cell a fresh copy so in-place mutation cannot leak between cells.
"""

import pickle

import numpy as np
import pytest

from repro.runtime.residency import (
    PolicyRef,
    PolicyResidencyError,
    clear_residency,
    collect_policy_refs,
    preload_policy_refs,
    resident_policy_count,
    resolve_policy_kwargs,
    resolve_policy_ref,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_residency()
    yield
    clear_residency()


@pytest.fixture()
def drone_ref(policy_cache, tiny_drone_scale, tiny_drone_policy) -> PolicyRef:
    # tiny_drone_policy guarantees the cache entry exists on disk.
    return policy_cache.drone_policy_ref(tiny_drone_scale)


class TestResolution:
    def test_resolves_to_cached_state_dict(self, drone_ref, tiny_drone_policy):
        state = resolve_policy_ref(drone_ref)
        expected = tiny_drone_policy["policy"]
        assert set(state) == set(expected)
        for name in expected:
            np.testing.assert_array_equal(state[name], expected[name])

    def test_each_resolution_returns_a_fresh_copy(self, drone_ref):
        first = resolve_policy_ref(drone_ref)
        name = next(iter(first))
        first[name] += 1.0  # a cell corrupting its policy in place...
        second = resolve_policy_ref(drone_ref)
        # ...must not leak into the next cell's copy.
        assert not np.array_equal(first[name], second[name])

    def test_decodes_once_per_process(self, drone_ref):
        assert resident_policy_count() == 0
        resolve_policy_ref(drone_ref)
        resolve_policy_ref(drone_ref)
        assert resident_policy_count() == 1

    def test_missing_entry_raises_clear_error(self, tmp_path):
        ref = PolicyRef(cache_dir=str(tmp_path), key="nope", field="policy")
        with pytest.raises(PolicyResidencyError, match="nope.json"):
            resolve_policy_ref(ref)

    def test_missing_field_raises_clear_error(self, policy_cache, tiny_drone_scale, drone_ref):
        ref = PolicyRef(cache_dir=drone_ref.cache_dir, key=drone_ref.key, field="wrong")
        with pytest.raises(PolicyResidencyError, match="wrong"):
            resolve_policy_ref(ref)

    def test_preload_makes_refs_resident(self, drone_ref):
        preload_policy_refs([drone_ref])
        assert resident_policy_count() == 1

    def test_resolve_kwargs_substitutes_only_refs(self, drone_ref):
        kwargs = {"policy": drone_ref, "ber": 0.01, "label": "x"}
        resolved = resolve_policy_kwargs(kwargs)
        assert isinstance(resolved["policy"], dict)
        assert resolved["ber"] == 0.01 and resolved["label"] == "x"
        # Ref-free kwargs pass through without copying.
        plain = {"ber": 0.01}
        assert resolve_policy_kwargs(plain) is plain


class TestPlanRefs:
    def test_collect_policy_refs_unique_in_first_use_order(
        self, policy_cache, tiny_drone_scale, tiny_drone_policy
    ):
        from repro.core.experiments.drone_training import drone_training_plan

        plan = drone_training_plan("agent", scale=tiny_drone_scale, cache=policy_cache)
        refs = collect_policy_refs(plan.cells)
        assert len(refs) == 1
        assert refs[0].field == "policy"

    def test_cells_pickle_small(self, policy_cache, tiny_drone_scale, tiny_drone_policy):
        """The acceptance criterion: no per-cell state-dict pickling.

        A cell submission must be orders of magnitude smaller than the policy
        it references; by-value shipping would put the whole state dict in
        every pickle.
        """
        from repro.core.experiments.drone_training import drone_training_plan

        plan = drone_training_plan("agent", scale=tiny_drone_scale, cache=policy_cache)
        by_value_size = len(pickle.dumps(tiny_drone_policy["policy"]))
        for cell in plan.cells:
            cell_size = len(pickle.dumps(cell))
            assert cell_size < 4096
            assert cell_size < by_value_size / 5

    def test_inference_mitigation_cells_pickle_small(
        self, policy_cache, tiny_drone_scale, tiny_drone_policy
    ):
        from repro.core.experiments.mitigation_experiments import inference_mitigation_plan

        plan = inference_mitigation_plan("drone", scale=tiny_drone_scale, cache=policy_cache)
        by_value_size = len(pickle.dumps(tiny_drone_policy["policy"]))
        for cell in plan.cells:
            assert len(pickle.dumps(cell)) < by_value_size / 5
