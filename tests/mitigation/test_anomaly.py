"""Tests for range-based anomaly detection."""

import numpy as np
import pytest

from repro.faults import FaultInjector
from repro.mitigation import RangeAnomalyDetector, WeightRange


class TestWeightRange:
    def test_bounds_expand_outward(self):
        weight_range = WeightRange(minimum=-1.0, maximum=2.0, margin=0.1)
        assert weight_range.lower_bound == pytest.approx(-1.1)
        assert weight_range.upper_bound == pytest.approx(2.2)

    def test_positive_minimum_expands_toward_zero(self):
        weight_range = WeightRange(minimum=0.5, maximum=2.0, margin=0.1)
        assert weight_range.lower_bound < 0.5

    def test_zero_bounds(self):
        weight_range = WeightRange(minimum=0.0, maximum=0.0, margin=0.1)
        assert weight_range.lower_bound == -0.1
        assert weight_range.upper_bound == 0.1

    def test_contains(self):
        weight_range = WeightRange(minimum=-1.0, maximum=1.0, margin=0.1)
        mask = weight_range.contains(np.array([-1.05, 0.0, 1.2]))
        assert mask.tolist() == [True, True, False]


class TestRangeAnomalyDetector:
    def make_state(self, seed=0):
        rng = np.random.default_rng(seed)
        return {"layer1.weight": rng.uniform(-1.0, 1.0, size=(20, 20)),
                "layer2.weight": rng.uniform(-0.5, 0.5, size=(20, 4))}

    def test_requires_calibration(self):
        detector = RangeAnomalyDetector()
        with pytest.raises(RuntimeError):
            detector.detect(self.make_state())

    def test_clean_state_has_no_anomalies(self):
        state = self.make_state()
        detector = RangeAnomalyDetector()
        detector.calibrate(state)
        assert detector.anomaly_count(state) == 0

    def test_clean_state_repair_is_identity(self):
        state = self.make_state()
        detector = RangeAnomalyDetector()
        detector.calibrate(state)
        repaired, count = detector.repair(state)
        assert count == 0
        for name in state:
            np.testing.assert_array_equal(repaired[name], state[name])

    def test_outliers_detected_and_zeroed(self):
        state = self.make_state()
        detector = RangeAnomalyDetector()
        detector.calibrate(state)
        corrupted = {name: value.copy() for name, value in state.items()}
        corrupted["layer1.weight"][0, 0] = 50.0
        corrupted["layer2.weight"][3, 1] = -40.0
        assert detector.anomaly_count(corrupted) == 2
        repaired, count = detector.repair(corrupted)
        assert count == 2
        assert repaired["layer1.weight"][0, 0] == 0.0
        assert repaired["layer2.weight"][3, 1] == 0.0

    def test_repair_does_not_touch_in_range_values(self):
        state = self.make_state()
        detector = RangeAnomalyDetector()
        detector.calibrate(state)
        corrupted = {name: value.copy() for name, value in state.items()}
        corrupted["layer1.weight"][0, 0] = 99.0
        repaired, _ = detector.repair(corrupted)
        np.testing.assert_array_equal(repaired["layer2.weight"], corrupted["layer2.weight"])

    def test_margin_tolerates_borderline_values(self):
        state = {"w": np.array([-1.0, 1.0])}
        detector = RangeAnomalyDetector(margin=0.2)
        detector.calibrate(state)
        assert detector.anomaly_count({"w": np.array([1.15, -1.15])}) == 0

    def test_unknown_layer_rejected(self):
        detector = RangeAnomalyDetector()
        detector.calibrate({"a": np.zeros(3)})
        with pytest.raises(KeyError):
            detector.detect({"b": np.zeros(3)})

    def test_calibrate_empty_rejected(self):
        with pytest.raises(ValueError):
            RangeAnomalyDetector().calibrate({})

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            RangeAnomalyDetector(margin=-0.1)

    def test_catches_fixed_point_fault_outliers(self):
        # End-to-end: corrupt a policy stored in a wide fixed-point format and
        # verify the detector repairs most of the induced large outliers.
        state = self.make_state(seed=3)
        detector = RangeAnomalyDetector()
        detector.calibrate(state)
        injector = FaultInjector(datatype="Q(1,10,5)", rng=0)
        corrupted = injector.corrupt_state_dict(state, 0.02)
        repaired, count = detector.repair(corrupted)
        assert count > 0
        max_clean = max(np.abs(v).max() for v in state.values())
        assert max(np.abs(v).max() for v in repaired.values()) <= max_clean * 1.1 + 1e-9

    def test_ranges_property(self):
        state = self.make_state()
        detector = RangeAnomalyDetector()
        detector.calibrate(state)
        assert set(detector.ranges) == set(state)
        assert detector.is_calibrated
