"""Tests for DMR/TMR redundancy baselines."""

import numpy as np
import pytest

from repro.mitigation import PROTECTION_SCHEMES, dmr_detect, tmr_vote
from repro.mitigation.redundancy import RedundancyScheme, tmr_vote_state_dict


class TestSchemes:
    def test_registry_contents(self):
        assert set(PROTECTION_SCHEMES) == {"baseline", "detection", "dmr", "tmr"}

    def test_replica_counts(self):
        assert PROTECTION_SCHEMES["dmr"].compute_replicas == 2
        assert PROTECTION_SCHEMES["tmr"].compute_replicas == 3

    def test_detection_overhead_below_paper_bound(self):
        assert PROTECTION_SCHEMES["detection"].runtime_overhead < 0.027 + 1e-9

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            RedundancyScheme("bad", compute_replicas=0, runtime_overhead=0.0,
                             detects=False, corrects=False)


class TestDMR:
    def test_detects_mismatch(self):
        assert dmr_detect(np.zeros(4), np.array([0.0, 0.0, 1.0, 0.0]))

    def test_no_false_positive(self):
        values = np.random.default_rng(0).normal(size=16)
        assert not dmr_detect(values, values.copy())

    def test_tolerance(self):
        assert not dmr_detect(np.zeros(4), np.full(4, 1e-9), tolerance=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dmr_detect(np.zeros(2), np.zeros(3))


class TestTMR:
    def test_masks_single_corrupted_replica(self):
        clean = np.random.default_rng(0).normal(size=32)
        corrupted = clean.copy()
        corrupted[5] = 1000.0
        voted = tmr_vote([clean, corrupted, clean.copy()])
        np.testing.assert_allclose(voted, clean)

    def test_all_agree(self):
        values = np.arange(5.0)
        np.testing.assert_allclose(tmr_vote([values, values, values]), values)

    def test_requires_three_replicas(self):
        with pytest.raises(ValueError):
            tmr_vote([np.zeros(2), np.zeros(2)])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tmr_vote([np.zeros(2), np.zeros(2), np.zeros(3)])

    def test_state_dict_voting(self):
        clean = {"w": np.ones(4), "b": np.zeros(2)}
        corrupted = {"w": np.array([1.0, 50.0, 1.0, 1.0]), "b": np.zeros(2)}
        voted = tmr_vote_state_dict([clean, corrupted, {k: v.copy() for k, v in clean.items()}])
        np.testing.assert_allclose(voted["w"], clean["w"])

    def test_state_dict_key_mismatch(self):
        with pytest.raises(KeyError):
            tmr_vote_state_dict([{"w": np.zeros(1)}, {"w": np.zeros(1)}, {"v": np.zeros(1)}])
