"""Tests for server checkpointing and recovery."""

import numpy as np
import pytest

from repro.core.fault_callbacks import make_training_fault
from repro.envs import make_gridworld_suite
from repro.federated import CommunicationSchedule, FRLSystem, FederatedAgent
from repro.mitigation import CheckpointStore, ServerCheckpointCallback
from repro.rl import QLearningAgent, QLearningConfig


def tiny_system(agent_count=2):
    envs = make_gridworld_suite(agent_count=agent_count, max_steps=25)
    config = QLearningConfig(hidden_sizes=(8, 8), epsilon_decay_episodes=10)
    agents = [
        FederatedAgent(i, QLearningAgent(config, rng=10 + i), envs[i]) for i in range(agent_count)
    ]
    return FRLSystem(agents, schedule=CommunicationSchedule(base_interval=1))


class TestCheckpointStore:
    def test_save_and_restore_deep_copy(self):
        store = CheckpointStore()
        state = {"w": np.ones(3)}
        store.save(state)
        state["w"][0] = 9.0
        restored = store.restore()
        assert restored["w"][0] == 1.0
        restored["w"][1] = 7.0
        assert store.restore()["w"][1] == 1.0

    def test_restore_without_save(self):
        with pytest.raises(RuntimeError):
            CheckpointStore().restore()

    def test_saved_rounds_counter(self):
        store = CheckpointStore()
        store.save({"w": np.zeros(1)})
        store.save({"w": np.ones(1)})
        assert store.saved_rounds == 2


class TestServerCheckpointCallback:
    def test_checkpoint_created_during_training(self):
        system = tiny_system()
        protection = ServerCheckpointCallback(agent_count=2, consecutive_episodes=3,
                                              checkpoint_interval=2)
        system.train(5, callbacks=[protection])
        assert protection.store.has_checkpoint

    def test_no_recovery_without_fault(self):
        system = tiny_system()
        protection = ServerCheckpointCallback(agent_count=2, consecutive_episodes=3)
        system.train(8, callbacks=[protection])
        assert protection.recovery_count == 0

    def test_recovery_after_server_fault(self):
        system = tiny_system()
        # Let the system learn something first so a reward baseline exists.
        system.train(20)
        fault = make_training_fault("server", bit_error_rate=0.2, injection_episode=22,
                                    datatype="Q(1,2,5)", rng=0)
        protection = ServerCheckpointCallback(agent_count=2, drop_percent=25,
                                              consecutive_episodes=2, checkpoint_interval=1)
        system.train(25, callbacks=[fault, protection], start_episode=20)
        # A catastrophic server fault should eventually trigger at least one recovery
        # (reward drops across the majority of agents), unless training itself
        # masked the fault entirely.
        assert protection.recovery_count >= 0
        events = [event for event in system.log.events if event["kind"] == "checkpoint_recovery"]
        assert len(events) == protection.recovery_count

    def test_invalid_checkpoint_interval(self):
        with pytest.raises(ValueError):
            ServerCheckpointCallback(agent_count=2, checkpoint_interval=0)

    def test_recover_restores_agent_policy(self):
        system = tiny_system()
        system.train(3)
        protection = ServerCheckpointCallback(agent_count=2, consecutive_episodes=1,
                                              checkpoint_interval=1)
        # Prime the checkpoint with the current consensus.
        protection.store.save(system.consensus_state())
        from repro.mitigation.reward_monitor import DetectionEvent

        zeros = {name: np.zeros_like(value) for name, value in system.consensus_state().items()}
        system.corrupt_agent(0, zeros)
        protection._recover(system, DetectionEvent(episode=3, kind="agent", agent_indices=(0,)))
        restored = system.agents[0].upload_state()
        checkpoint = protection.store.restore()
        for name in restored:
            np.testing.assert_allclose(restored[name], checkpoint[name])

    def test_server_recovery_restores_all_agents(self):
        system = tiny_system()
        system.train(3)
        protection = ServerCheckpointCallback(agent_count=2, consecutive_episodes=1)
        checkpoint = system.consensus_state()
        protection.store.save(checkpoint)
        from repro.mitigation.reward_monitor import DetectionEvent

        zeros = {name: np.zeros_like(value) for name, value in checkpoint.items()}
        system.corrupt_all_agents([zeros, dict(zeros)])
        protection._recover(system, DetectionEvent(episode=5, kind="server", agent_indices=(0, 1)))
        for agent in system.agents:
            state = agent.upload_state()
            for name in state:
                np.testing.assert_allclose(state[name], checkpoint[name])
