"""Tests for reward-drop fault detection."""

import pytest

from repro.mitigation import RewardDropDetector


def feed(detector, episode_rewards):
    """Feed a list of per-episode reward vectors; return all events."""
    events = []
    for episode, rewards in enumerate(episode_rewards):
        event = detector.observe(episode, rewards)
        if event is not None:
            events.append(event)
    return events


class TestRewardDropDetector:
    def test_no_event_on_healthy_rewards(self):
        detector = RewardDropDetector(agent_count=3, drop_percent=25, consecutive_episodes=3)
        events = feed(detector, [[1.0, 1.0, 1.0]] * 20)
        assert events == []

    def test_agent_fault_detected(self):
        detector = RewardDropDetector(agent_count=3, drop_percent=25, consecutive_episodes=3)
        healthy = [[1.0, 1.0, 1.0]] * 5
        faulty = [[-1.0, 1.0, 1.0]] * 5
        events = feed(detector, healthy + faulty)
        assert events
        assert events[0].kind == "agent"
        assert events[0].agent_indices == (0,)

    def test_server_fault_when_majority_drop(self):
        detector = RewardDropDetector(agent_count=4, drop_percent=25, consecutive_episodes=3)
        healthy = [[1.0] * 4] * 5
        faulty = [[-1.0, -1.0, -1.0, 1.0]] * 5
        events = feed(detector, healthy + faulty)
        assert events
        assert events[0].kind == "server"
        assert len(events[0].agent_indices) == 3

    def test_transient_dip_not_detected(self):
        detector = RewardDropDetector(agent_count=2, drop_percent=25, consecutive_episodes=4)
        rewards = [[1.0, 1.0]] * 5 + [[-1.0, 1.0]] * 2 + [[1.0, 1.0]] * 10
        assert feed(detector, rewards) == []

    def test_detection_latency_matches_k(self):
        detector = RewardDropDetector(agent_count=2, drop_percent=25, consecutive_episodes=5)
        healthy = [[1.0, 1.0]] * 3
        faulty = [[-1.0, 1.0]] * 10
        events = feed(detector, healthy + faulty)
        assert events[0].episode == 3 + 5 - 1

    def test_counter_resets_after_event(self):
        detector = RewardDropDetector(agent_count=2, drop_percent=25, consecutive_episodes=2)
        healthy = [[1.0, 1.0]] * 3
        faulty = [[-1.0, 1.0]] * 6
        events = feed(detector, healthy + faulty)
        # With the counter reset after each event, events repeat every k episodes.
        assert len(events) >= 2
        assert events[1].episode - events[0].episode >= 2

    def test_reset_agent_clears_history(self):
        detector = RewardDropDetector(agent_count=1, drop_percent=25, consecutive_episodes=2)
        feed(detector, [[1.0]] * 3 + [[-1.0]])
        detector.reset_agent(0)
        assert detector.observe(10, [-1.0]) is None

    def test_observe_validates_reward_count(self):
        detector = RewardDropDetector(agent_count=2)
        with pytest.raises(ValueError):
            detector.observe(0, [1.0])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RewardDropDetector(agent_count=0)
        with pytest.raises(ValueError):
            RewardDropDetector(agent_count=1, drop_percent=0)
        with pytest.raises(ValueError):
            RewardDropDetector(agent_count=1, consecutive_episodes=0)

    def test_event_str(self):
        detector = RewardDropDetector(agent_count=2, consecutive_episodes=1)
        events = feed(detector, [[1.0, 1.0]] * 3 + [[-2.0, 1.0]])
        assert "agent" in str(events[0])
