"""Pytest bootstrap: make the in-tree ``src`` layout importable and register
hypothesis profiles.

The path shim keeps ``pytest`` working even when the package has not been
installed (e.g. offline environments where editable installs are
unavailable).

Two hypothesis profiles are registered:

* ``ci``  — derandomized with a fixed seed and bounded examples, so property
  failures reproduce exactly across CI runs and local triage;
* ``dev`` — a smaller example budget for fast local iteration.

Select one with ``HYPOTHESIS_PROFILE=ci pytest ...`` (the CI workflow does);
the default profile stays untouched otherwise.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test-only dependency
    pass
else:
    settings.register_profile("ci", derandomize=True, max_examples=50, deadline=None,
                              print_blob=True)
    settings.register_profile("dev", max_examples=15, deadline=None)
    _profile = os.environ.get("HYPOTHESIS_PROFILE")
    if _profile:
        settings.load_profile(_profile)
