"""Pytest bootstrap: make the in-tree ``src`` layout importable.

This keeps ``pytest`` working even when the package has not been installed
(e.g. offline environments where editable installs are unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
