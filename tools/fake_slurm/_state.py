"""Shared state handling for the fake-slurm shim.

The shim emulates the four Slurm tools ``SlurmBackend`` needs — ``sbatch``,
``squeue``, ``sacct``, ``scancel`` — by running each "job" as a detached
local process group and keeping per-job files in a state directory:

* ``counter``     — monotonically increasing job ids (flock-guarded);
* ``<id>.pid``    — the job's process-group leader pid;
* ``<id>.rc``     — written (atomically) with the job's exit code when the
  batch script finishes; its absence after the process dies means the job
  was cancelled (killed before completing).

The state directory comes from ``$FAKE_SLURM_STATE`` (tests and CI point it
at a scratch path) and defaults to ``$TMPDIR/fake-slurm``.
"""

import fcntl
import os
from pathlib import Path


def state_dir() -> Path:
    """The shim's state directory, created on first use."""
    root = os.environ.get("FAKE_SLURM_STATE")
    if not root:
        root = os.path.join(os.environ.get("TMPDIR", "/tmp"), "fake-slurm")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def next_job_id(root: Path) -> int:
    """Allocate the next job id via a flock-guarded counter file."""
    counter = root / "counter"
    with open(counter, "a+", encoding="utf8") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        handle.seek(0)
        text = handle.read().strip()
        job_id = (int(text) if text else 0) + 1
        handle.seek(0)
        handle.truncate()
        handle.write(str(job_id))
        handle.flush()
    return job_id


def job_pid(root: Path, job_id: str):
    """The recorded pid of a job, or ``None`` if unknown."""
    try:
        return int((root / f"{job_id}.pid").read_text().strip())
    except (OSError, ValueError):
        return None


def job_returncode(root: Path, job_id: str):
    """The job's recorded exit code, or ``None`` while running/cancelled."""
    try:
        return int((root / f"{job_id}.rc").read_text().strip())
    except (OSError, ValueError):
        return None


def pid_running(pid) -> bool:
    """Whether ``pid`` is alive and not a zombie (Linux ``/proc`` check)."""
    if pid is None:
        return False
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    try:
        with open(f"/proc/{pid}/stat", encoding="utf8") as handle:
            # Field 3 (after the parenthesised comm) is the process state.
            state = handle.read().rsplit(")", 1)[1].split()[0]
    except (OSError, IndexError):
        return False
    return state != "Z"
