"""Drone platform specifications.

The two platforms evaluated in the paper's overhead study, with the physical
parameters quoted in Fig. 9's inset table (size, weight, battery capacity)
and typical values for the remaining quantities (battery voltage, compute
payload) drawn from the cited performance-model literature.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DronePlatform:
    """Physical description of a drone platform."""

    name: str
    drone_type: str
    size_mm: float
    mass_g: float
    battery_capacity_mah: float
    battery_voltage_v: float
    compute_mass_g: float
    compute_power_w: float
    base_velocity_mps: float
    max_payload_g: float
    hover_power_coefficient: float = 0.25
    """Hover power in watts per (100 g)^1.5; calibrated so the stock platform's
    flight time is in the familiar 15-25 minute range."""

    def __post_init__(self) -> None:
        if self.mass_g <= 0 or self.battery_capacity_mah <= 0 or self.battery_voltage_v <= 0:
            raise ValueError("mass, battery capacity and voltage must be positive")
        if self.compute_mass_g < 0 or self.compute_power_w < 0:
            raise ValueError("compute mass and power must be non-negative")
        if self.base_velocity_mps <= 0:
            raise ValueError("base velocity must be positive")
        if self.max_payload_g <= 0:
            raise ValueError("max_payload_g must be positive")

    @property
    def battery_energy_wh(self) -> float:
        """Usable battery energy in watt-hours."""
        return self.battery_capacity_mah / 1000.0 * self.battery_voltage_v

    def hover_power_w(self, total_mass_g: float) -> float:
        """Hover/propulsion power for a given all-up mass.

        Rotor-craft hover power scales with mass^1.5 (momentum theory); the
        coefficient is calibrated per platform.
        """
        if total_mass_g <= 0:
            raise ValueError("total mass must be positive")
        return self.hover_power_coefficient * (total_mass_g / 100.0) ** 1.5


# The AirSim reference drone: a mini-UAV class platform (paper Fig. 9 table).
# The hover coefficient is calibrated so the stock configuration flies for
# roughly 25 minutes; the payload budget of a mini-UAV comfortably absorbs an
# extra compute board or two.
AIRSIM_DRONE = DronePlatform(
    name="AirSim drone",
    drone_type="mini-UAV",
    size_mm=650.0,
    mass_g=1652.0,
    battery_capacity_mah=6250.0,
    battery_voltage_v=15.2,
    compute_mass_g=30.0,
    compute_power_w=5.0,
    base_velocity_mps=10.0,
    max_payload_g=500.0,
    hover_power_coefficient=3.2,
)

# The DJI Spark: a micro-UAV whose payload budget is essentially zero, so any
# redundant compute hardware eats directly into its thrust margin.
DJI_SPARK = DronePlatform(
    name="DJI Spark",
    drone_type="micro-UAV",
    size_mm=170.0,
    mass_g=300.0,
    battery_capacity_mah=1480.0,
    battery_voltage_v=11.4,
    compute_mass_g=25.0,
    compute_power_w=4.0,
    base_velocity_mps=7.0,
    max_payload_g=50.0,
    hover_power_coefficient=11.0,
)
