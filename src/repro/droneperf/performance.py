"""Flight-time / flight-distance estimation under protection overheads.

The model captures the causal chain the paper relies on for Fig. 9:

1. a protection scheme replicates the compute subsystem ``r`` times, adding
   ``(r - 1)`` times the compute payload mass and power;
2. a heavier drone needs more hover power (∝ mass^1.5), and together with the
   larger compute power this shortens the flight time
   (battery energy / total power);
3. runtime overhead on the perception-action critical path lowers the
   achievable safe velocity proportionally, and payload close to the
   platform's payload budget erodes the thrust margin, lowering the safe
   velocity further — the dominant effect on a micro-UAV;
4. the safe flight distance is velocity × flight time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.droneperf.platform import DronePlatform
from repro.mitigation.redundancy import PROTECTION_SCHEMES, RedundancyScheme


@dataclass(frozen=True)
class FlightEstimate:
    """Estimated end-to-end flight characteristics of one configuration."""

    platform: str
    scheme: str
    total_mass_g: float
    total_power_w: float
    flight_time_s: float
    velocity_mps: float
    flight_distance_m: float

    def as_dict(self) -> dict:
        return {
            "platform": self.platform,
            "scheme": self.scheme,
            "total_mass_g": self.total_mass_g,
            "total_power_w": self.total_power_w,
            "flight_time_s": self.flight_time_s,
            "velocity_mps": self.velocity_mps,
            "flight_distance_m": self.flight_distance_m,
        }


@dataclass(frozen=True)
class ProtectionOverheadResult:
    """Fig. 9 style comparison for one platform."""

    platform: str
    estimates: Dict[str, FlightEstimate]

    def distance_degradation(self, scheme: str, reference: str = "baseline") -> float:
        """Fractional flight-distance loss of ``scheme`` relative to ``reference``."""
        ref = self.estimates[reference].flight_distance_m
        if ref <= 0:
            raise ValueError("reference flight distance must be positive")
        return 1.0 - self.estimates[scheme].flight_distance_m / ref


def estimate_flight(
    platform: DronePlatform,
    scheme: RedundancyScheme,
    mission_energy_fraction: float = 0.8,
) -> FlightEstimate:
    """Estimate flight time, velocity and distance for one protection scheme."""
    if not 0.0 < mission_energy_fraction <= 1.0:
        raise ValueError("mission_energy_fraction must be in (0, 1]")
    extra_replicas = scheme.compute_replicas - 1
    extra_mass = extra_replicas * platform.compute_mass_g
    total_mass = platform.mass_g + extra_mass
    hover_power = platform.hover_power_w(total_mass)
    compute_power = platform.compute_power_w * scheme.compute_replicas
    total_power = hover_power + compute_power
    usable_energy_wh = platform.battery_energy_wh * mission_energy_fraction
    flight_time_s = usable_energy_wh * 3600.0 / total_power
    # Runtime overhead stretches the perception-action loop, so the drone must
    # fly proportionally slower to keep the same stopping margin.  Payload
    # eats into the platform's thrust margin: as the extra mass approaches the
    # payload budget the agility-limited safe velocity collapses, which is why
    # redundancy is so costly on a micro-UAV.
    payload_margin = max(0.05, 1.0 - extra_mass / platform.max_payload_g)
    velocity = (
        platform.base_velocity_mps
        / (1.0 + scheme.runtime_overhead)
        * (platform.mass_g / total_mass) ** 0.5
        * payload_margin**0.5
    )
    distance = velocity * flight_time_s
    return FlightEstimate(
        platform=platform.name,
        scheme=scheme.name,
        total_mass_g=total_mass,
        total_power_w=total_power,
        flight_time_s=flight_time_s,
        velocity_mps=velocity,
        flight_distance_m=distance,
    )


def evaluate_protection_overheads(
    platform: DronePlatform,
    schemes: Optional[Iterable[str]] = None,
    mission_energy_fraction: float = 0.8,
) -> ProtectionOverheadResult:
    """Compare protection schemes on one platform (paper Fig. 9)."""
    names: List[str] = list(schemes) if schemes is not None else list(PROTECTION_SCHEMES)
    estimates: Dict[str, FlightEstimate] = {}
    for name in names:
        if name not in PROTECTION_SCHEMES:
            raise KeyError(f"unknown protection scheme {name!r}")
        estimates[name] = estimate_flight(
            platform, PROTECTION_SCHEMES[name], mission_energy_fraction=mission_energy_fraction
        )
    return ProtectionOverheadResult(platform=platform.name, estimates=estimates)
