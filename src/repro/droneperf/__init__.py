"""End-to-end drone performance model (paper Fig. 9).

An analytical cyber-physical model in the spirit of Krishnan et al.'s visual
performance model: the battery, frame weight and compute payload of a drone
determine its hover power, flight time, achievable velocity and therefore the
distance it can safely cover.  Adding redundant compute hardware (DMR/TMR)
increases both payload mass and compute power, shrinking the safe flight
distance — dramatically so on a micro-UAV such as the DJI Spark.
"""

from repro.droneperf.platform import AIRSIM_DRONE, DJI_SPARK, DronePlatform
from repro.droneperf.performance import (
    FlightEstimate,
    ProtectionOverheadResult,
    estimate_flight,
    evaluate_protection_overheads,
)

__all__ = [
    "DronePlatform",
    "AIRSIM_DRONE",
    "DJI_SPARK",
    "FlightEstimate",
    "ProtectionOverheadResult",
    "estimate_flight",
    "evaluate_protection_overheads",
]
