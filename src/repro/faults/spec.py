"""Declarative fault-injection specifications.

A :class:`FaultSpec` fully describes one fault scenario: where the fault
enters the FRL system, which tensors it corrupts, how many bits are upset
(BER), which bit-level model applies, when it is injected (training episode /
inference step) and whether a transient upset persists (memory fault,
Trans-M) or affects a single read (register fault, Trans-1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union

from repro.faults.ber import BitErrorRate
from repro.faults.locations import FaultLocation, FaultTarget, effective_class
from repro.faults.models import FaultModel, resolve_fault_model


class InjectionMode(Enum):
    """When faults are materialized relative to execution.

    ``STATIC`` injection corrupts state once before execution begins (e.g.
    trained weights before inference) and has zero runtime overhead.
    ``DYNAMIC`` injection corrupts state during execution (training updates,
    activations) and is implemented as native tensor operations.
    """

    STATIC = "static"
    DYNAMIC = "dynamic"


class TransientScope(Enum):
    """How long a transient inference fault persists.

    ``SINGLE_STEP`` corresponds to the paper's Trans-1 (a faulty read register:
    only one action step is computed with corrupted data).  ``PERSISTENT``
    corresponds to Trans-M (a memory fault that affects every subsequent
    action until scrubbed).
    """

    SINGLE_STEP = "single_step"
    PERSISTENT = "persistent"


@dataclass(frozen=True)
class FaultSpec:
    """A complete description of one fault-injection scenario."""

    location: FaultLocation = FaultLocation.SERVER
    target: FaultTarget = FaultTarget.WEIGHTS
    bit_error_rate: BitErrorRate = field(default_factory=lambda: BitErrorRate(0.0))
    model: FaultModel = None  # resolved in __post_init__
    mode: InjectionMode = InjectionMode.DYNAMIC
    scope: TransientScope = TransientScope.PERSISTENT
    injection_episode: Optional[int] = None
    agent_index: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", FaultLocation.parse(self.location))
        object.__setattr__(self, "target", FaultTarget.parse(self.target))
        if isinstance(self.bit_error_rate, (int, float)):
            object.__setattr__(self, "bit_error_rate", BitErrorRate(float(self.bit_error_rate)))
        model = self.model if self.model is not None else "transient"
        object.__setattr__(self, "model", resolve_fault_model(model))
        if isinstance(self.mode, str):
            object.__setattr__(self, "mode", InjectionMode(self.mode))
        if isinstance(self.scope, str):
            object.__setattr__(self, "scope", TransientScope(self.scope))
        if self.injection_episode is not None and self.injection_episode < 0:
            raise ValueError("injection_episode must be non-negative")

    @property
    def is_enabled(self) -> bool:
        """A spec with zero BER is the fault-free baseline."""
        return self.bit_error_rate.rate > 0.0

    @property
    def analysis_class(self) -> str:
        """The paper's two-way agent/server grouping."""
        return effective_class(self.location)

    def with_ber(self, rate: Union[float, BitErrorRate]) -> "FaultSpec":
        """Copy of this spec at a different bit-error rate."""
        ber = rate if isinstance(rate, BitErrorRate) else BitErrorRate(float(rate))
        return FaultSpec(
            location=self.location,
            target=self.target,
            bit_error_rate=ber,
            model=self.model,
            mode=self.mode,
            scope=self.scope,
            injection_episode=self.injection_episode,
            agent_index=self.agent_index,
        )

    def with_episode(self, episode: Optional[int]) -> "FaultSpec":
        """Copy of this spec injected at a different episode."""
        return FaultSpec(
            location=self.location,
            target=self.target,
            bit_error_rate=self.bit_error_rate,
            model=self.model,
            mode=self.mode,
            scope=self.scope,
            injection_episode=episode,
            agent_index=self.agent_index,
        )

    def describe(self) -> str:
        """Human-readable one-line summary of the fault scenario."""
        where = self.location.value
        when = (
            f"episode {self.injection_episode}" if self.injection_episode is not None else "any"
        )
        return (
            f"{self.model.name} faults in {where} {self.target.value} "
            f"at BER={self.bit_error_rate.rate:g} ({self.mode.value}, {when})"
        )


def baseline_spec() -> FaultSpec:
    """The fault-free reference scenario."""
    return FaultSpec(bit_error_rate=BitErrorRate(0.0))
