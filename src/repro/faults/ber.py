"""Bit-error-rate handling.

The paper sweeps BER from single-bit flips up to >1e-2 (14 nm SRAM at lowered
supply voltage, degraded wireless channels).  A :class:`BitErrorRate` couples
the raw probability with the paper's display convention (fault counts such as
"52 (2.0%)" for GridWorld heatmap rows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import faults_for_ber


@dataclass(frozen=True)
class BitErrorRate:
    """Probability that any given storage bit is upset during the exposure."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"bit error rate must be within [0, 1], got {self.rate}")

    @classmethod
    def from_percent(cls, percent: float) -> "BitErrorRate":
        """Build a rate from the paper's percent notation (``2.0`` -> 0.02)."""
        return cls(percent / 100.0)

    @property
    def percent(self) -> float:
        """The rate expressed as a percentage (inverse of :meth:`from_percent`)."""
        return self.rate * 100.0

    def fault_count(self, total_bits: int, rng: np.random.Generator) -> int:
        """Number of upset bits over ``total_bits`` for one exposure."""
        return fault_count_for(total_bits, self.rate, rng)

    def expected_faults(self, total_bits: int) -> float:
        """Expected number of upset bits over ``total_bits`` exposures."""
        return total_bits * self.rate

    def label(self, total_bits: int) -> str:
        """Paper-style row label, e.g. ``"52 (2.0%)"``."""
        return f"{int(round(self.expected_faults(total_bits)))} ({self.percent:.1f}%)"

    def __str__(self) -> str:
        return f"{self.rate:g}"


def fault_count_for(total_bits: int, rate: float, rng: np.random.Generator) -> int:
    """Sample the number of bit faults for one exposure of ``total_bits``."""
    return faults_for_ber(total_bits, rate, rng)


def sweep_from_percent(percents) -> list:
    """Convenience: build a list of BitErrorRate from percentage values."""
    return [BitErrorRate.from_percent(p) for p in percents]
