"""Transient-fault models and the software-level fault injection engine.

This is the heart of FRL-FI's methodology: random bit flips (and stuck-at
faults for comparison) are applied to the integer code words of quantized
tensors — policy weights, activations/feature maps and communicated parameter
updates — at a configurable bit-error rate, at either a single injection point
(static injection before inference) or continuously during training/inference
(dynamic injection).
"""

from repro.faults.models import (
    FaultModel,
    StuckAt0,
    StuckAt1,
    TransientBitFlip,
    resolve_fault_model,
)
from repro.faults.ber import BitErrorRate, fault_count_for
from repro.faults.locations import FaultLocation, FaultTarget, effective_class
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.spec import FaultSpec, InjectionMode, TransientScope
from repro.faults.hooks import ActivationFaultHook, attach_activation_faults

__all__ = [
    "FaultModel",
    "TransientBitFlip",
    "StuckAt0",
    "StuckAt1",
    "resolve_fault_model",
    "BitErrorRate",
    "fault_count_for",
    "FaultLocation",
    "FaultTarget",
    "effective_class",
    "FaultInjector",
    "InjectionRecord",
    "FaultSpec",
    "InjectionMode",
    "TransientScope",
    "ActivationFaultHook",
    "attach_activation_faults",
]
