"""The fault injector: corrupt float tensors through their storage encoding.

Corruption is a three-step pipeline that mirrors what happens in hardware:

1. encode the float tensor into integer code words using the configured
   storage data type (int8 or fixed point),
2. upset bits according to the bit-error rate and fault model,
3. decode the corrupted code words back to float values.

The injector never mutates its inputs; callers decide whether to write the
corrupted values back into a policy (persistent memory fault) or use them for
a single computation (register fault).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.faults.ber import BitErrorRate
from repro.faults.models import FaultModel, TransientBitFlip, resolve_fault_model
from repro.quant.datatypes import DataType, resolve_datatype
from repro.utils.bitops import random_bit_positions
from repro.utils.rng import as_rng


@dataclass
class InjectionRecord:
    """Bookkeeping for one injection event (used by tests and reports)."""

    total_bits: int
    flipped_bits: int
    bit_error_rate: float
    target_elements: int
    corrupted_elements: int
    datatype: str
    model: str
    details: dict = field(default_factory=dict)


class FaultInjector:
    """Injects bit-level faults into float tensors and policy state dicts."""

    def __init__(
        self,
        datatype: Union[str, DataType] = "int8",
        model: Union[str, FaultModel] = None,
        rng=None,
    ) -> None:
        self.datatype = resolve_datatype(datatype)
        self.model = resolve_fault_model(model) if model is not None else TransientBitFlip()
        self._rng = as_rng(rng)
        self.history: List[InjectionRecord] = []

    @property
    def rng(self) -> np.random.Generator:
        """The injector's explicit random generator (REP001: never global state)."""
        return self._rng

    def corrupt_array(
        self,
        values: np.ndarray,
        bit_error_rate: Union[float, BitErrorRate],
        model: Optional[Union[str, FaultModel]] = None,
        record: bool = True,
    ) -> np.ndarray:
        """Return a corrupted copy of ``values``.

        The number of upset bits is drawn from the BER over the total number
        of storage bits of the tensor; bits and elements are chosen uniformly
        at random (multiple upsets may hit the same element).
        """
        values = np.asarray(values, dtype=np.float64)
        ber = bit_error_rate if isinstance(bit_error_rate, BitErrorRate) else BitErrorRate(
            float(bit_error_rate)
        )
        fault_model = resolve_fault_model(model) if model is not None else self.model
        codes, context = self.datatype.encode(values)
        total_bits = values.size * self.datatype.bit_width
        fault_count = ber.fault_count(total_bits, self._rng)
        if fault_count == 0 or values.size == 0:
            if record:
                self.history.append(
                    InjectionRecord(
                        total_bits=total_bits,
                        flipped_bits=0,
                        bit_error_rate=ber.rate,
                        target_elements=values.size,
                        corrupted_elements=0,
                        datatype=self.datatype.name,
                        model=fault_model.name,
                    )
                )
            return values.copy()
        element_indices = self._rng.integers(0, values.size, size=fault_count)
        bit_positions = random_bit_positions(self._rng, fault_count, self.datatype.bit_width)
        corrupted_codes = fault_model.apply(
            codes, element_indices, bit_positions, self.datatype.bit_width
        )
        corrupted = self.datatype.decode(corrupted_codes, context).reshape(values.shape)
        if record:
            self.history.append(
                InjectionRecord(
                    total_bits=total_bits,
                    flipped_bits=fault_count,
                    bit_error_rate=ber.rate,
                    target_elements=values.size,
                    corrupted_elements=int(np.unique(element_indices).size),
                    datatype=self.datatype.name,
                    model=fault_model.name,
                )
            )
        return corrupted

    def corrupt_state_dict(
        self,
        state: Dict[str, np.ndarray],
        bit_error_rate: Union[float, BitErrorRate],
        model: Optional[Union[str, FaultModel]] = None,
    ) -> Dict[str, np.ndarray]:
        """Corrupt a whole policy state dict as one contiguous memory region.

        Treating the concatenated parameters as a single memory region makes
        the BER interpretation identical to the per-tensor case while letting
        large layers absorb proportionally more upsets, as they would in a
        real weight memory.
        """
        if not state:
            return {}
        names = sorted(state)
        shapes = {name: np.asarray(state[name]).shape for name in names}
        sizes = {name: int(np.prod(shapes[name])) if shapes[name] else 1 for name in names}
        flat = np.concatenate(
            [np.asarray(state[name], dtype=np.float64).reshape(-1) for name in names]
        )
        corrupted_flat = self.corrupt_array(flat, bit_error_rate, model=model)
        corrupted: Dict[str, np.ndarray] = {}
        cursor = 0
        for name in names:
            size = sizes[name]
            corrupted[name] = corrupted_flat[cursor : cursor + size].reshape(shapes[name])
            cursor += size
        return corrupted

    def corrupt_single_bit(self, values: np.ndarray) -> np.ndarray:
        """Flip exactly one random bit — the paper's single-bit-flip baseline."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values.copy()
        codes, context = self.datatype.encode(values)
        element = self._rng.integers(0, values.size, size=1)
        bit = random_bit_positions(self._rng, 1, self.datatype.bit_width)
        corrupted_codes = self.model.apply(codes, element, bit, self.datatype.bit_width)
        self.history.append(
            InjectionRecord(
                total_bits=values.size * self.datatype.bit_width,
                flipped_bits=1,
                bit_error_rate=1.0 / (values.size * self.datatype.bit_width),
                target_elements=values.size,
                corrupted_elements=1,
                datatype=self.datatype.name,
                model=self.model.name,
            )
        )
        return self.datatype.decode(corrupted_codes, context).reshape(values.shape)

    @staticmethod
    def corrupt_lanes(
        injectors: Sequence["FaultInjector"],
        values: np.ndarray,
        bit_error_rate: Union[float, BitErrorRate],
        model: Optional[Union[str, FaultModel]] = None,
        record: bool = True,
    ) -> np.ndarray:
        """Corrupt a stack of tensors, one lane per injector, in one bit pass.

        ``values`` has shape ``(lanes, ...)``; lane ``i`` is corrupted exactly
        as ``injectors[i].corrupt_array(values[i], ...)`` would — same RNG
        draws on each injector's own stream (in lane order), same history
        records — but the bit flips of every faulted lane are applied through
        a *single* stacked :meth:`FaultModel.apply` call on the concatenated
        code words, with element indices offset by each lane's position.

        Encoding and decoding stay per lane because storage contexts are per
        tensor (the int8 affine scale in particular), which is what makes the
        result bitwise identical to the serial loop.  Lanes with heterogeneous
        datatypes or fault models fall back to that serial loop outright.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim < 1 or values.shape[0] != len(injectors):
            raise ValueError(
                f"values must stack one lane per injector, got shape {values.shape} "
                f"for {len(injectors)} injectors"
            )
        ber = bit_error_rate if isinstance(bit_error_rate, BitErrorRate) else BitErrorRate(
            float(bit_error_rate)
        )
        models = [
            resolve_fault_model(model) if model is not None else injector.model
            for injector in injectors
        ]
        homogeneous = len({injector.datatype.name for injector in injectors}) <= 1 and len(
            set(models)
        ) <= 1
        if not homogeneous:
            return np.stack(
                [
                    injector.corrupt_array(values[lane], ber, model=model, record=record)
                    for lane, injector in enumerate(injectors)
                ]
            )
        # Phase 1 — per-lane draws in lane order, mirroring N serial calls.
        faulted = []  # (lane, codes, context, element_indices, bit_positions)
        outputs: List[Optional[np.ndarray]] = [None] * len(injectors)
        for lane, injector in enumerate(injectors):
            row = values[lane]
            bit_width = injector.datatype.bit_width
            codes, context = injector.datatype.encode(row)
            total_bits = row.size * bit_width
            fault_count = ber.fault_count(total_bits, injector._rng)
            if fault_count == 0 or row.size == 0:
                if record:
                    injector.history.append(
                        InjectionRecord(
                            total_bits=total_bits,
                            flipped_bits=0,
                            bit_error_rate=ber.rate,
                            target_elements=row.size,
                            corrupted_elements=0,
                            datatype=injector.datatype.name,
                            model=models[lane].name,
                        )
                    )
                outputs[lane] = row.copy()
                continue
            element_indices = injector._rng.integers(0, row.size, size=fault_count)
            bit_positions = random_bit_positions(injector._rng, fault_count, bit_width)
            faulted.append((lane, codes, context, element_indices, bit_positions))
        # Phase 2 — one stacked flip application along the lane axis.  XOR /
        # set events are element-local, so offsetting indices into the
        # concatenated code array flips exactly the serial per-lane bits.
        if faulted:
            bit_width = injectors[faulted[0][0]].datatype.bit_width
            flat_codes = [np.ascontiguousarray(codes).reshape(-1) for _, codes, *_ in faulted]
            offsets = np.cumsum([0] + [flat.size for flat in flat_codes[:-1]])
            stacked = models[faulted[0][0]].apply(
                np.concatenate(flat_codes),
                np.concatenate(
                    [
                        np.asarray(indices, dtype=np.int64) + offset
                        for (_, _, _, indices, _), offset in zip(faulted, offsets)
                    ]
                ),
                np.concatenate([positions for *_, positions in faulted]),
                bit_width,
            )
            # Phase 3 — per-lane decode with each lane's own storage context.
            for (lane, codes, context, element_indices, _), offset, flat in zip(
                faulted, offsets, flat_codes
            ):
                injector = injectors[lane]
                lane_codes = stacked[offset : offset + flat.size].reshape(
                    np.asarray(codes).shape
                )
                outputs[lane] = injector.datatype.decode(lane_codes, context).reshape(
                    values[lane].shape
                )
                if record:
                    injector.history.append(
                        InjectionRecord(
                            total_bits=values[lane].size * injector.datatype.bit_width,
                            flipped_bits=int(element_indices.size),
                            bit_error_rate=ber.rate,
                            target_elements=values[lane].size,
                            corrupted_elements=int(np.unique(element_indices).size),
                            datatype=injector.datatype.name,
                            model=models[lane].name,
                        )
                    )
        return np.stack(outputs)

    def total_injected_bits(self) -> int:
        """Total number of bits upset across all recorded injections."""
        return sum(record.flipped_bits for record in self.history)

    def clear_history(self) -> None:
        """Drop every recorded injection event (test isolation helper)."""
        self.history.clear()


#: Module-level alias: the lane-batched corruption entry point.
corrupt_lanes = FaultInjector.corrupt_lanes
