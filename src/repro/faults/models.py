"""Bit-level fault models.

The paper's primary model is the random transient bit flip; stuck-at-0 and
stuck-at-1 appear as comparison points in the GridWorld inference study
(Fig. 4 insets).  All models operate on integer code words and are expressed
through :mod:`repro.utils.bitops` primitives.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.utils.bitops import flip_bits, set_bits


class FaultModel:
    """Base class: a named transformation of selected bits in a code array."""

    name = "fault"

    def apply(
        self,
        codes: np.ndarray,
        element_indices: np.ndarray,
        bit_positions: np.ndarray,
        bit_width: int,
    ) -> np.ndarray:
        """Return a corrupted copy of ``codes``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class TransientBitFlip(FaultModel):
    """Random bit flips (0→1 and 1→0), the transient soft-error abstraction."""

    name = "transient"

    def apply(self, codes, element_indices, bit_positions, bit_width):
        """XOR-flip the selected bits of ``codes`` (lane-batched, in one ufunc pass)."""
        return flip_bits(codes, element_indices, bit_positions, bit_width)


class StuckAt0(FaultModel):
    """Selected bits forced to 0."""

    name = "stuck-at-0"

    def apply(self, codes, element_indices, bit_positions, bit_width):
        """Force the selected bits of ``codes`` to 0."""
        return set_bits(codes, element_indices, bit_positions, bit_width, value=0)


class StuckAt1(FaultModel):
    """Selected bits forced to 1."""

    name = "stuck-at-1"

    def apply(self, codes, element_indices, bit_positions, bit_width):
        """Force the selected bits of ``codes`` to 1."""
        return set_bits(codes, element_indices, bit_positions, bit_width, value=1)


_MODEL_REGISTRY = {
    "transient": TransientBitFlip,
    "bitflip": TransientBitFlip,
    "bit-flip": TransientBitFlip,
    "stuck-at-0": StuckAt0,
    "stuck_at_0": StuckAt0,
    "sa0": StuckAt0,
    "stuck-at-1": StuckAt1,
    "stuck_at_1": StuckAt1,
    "sa1": StuckAt1,
}


def resolve_fault_model(model: Union[str, FaultModel]) -> FaultModel:
    """Resolve a fault-model name into an instance."""
    if isinstance(model, FaultModel):
        return model
    key = str(model).lower()
    if key not in _MODEL_REGISTRY:
        raise KeyError(
            f"unknown fault model {model!r}; known models: {sorted(set(_MODEL_REGISTRY))}"
        )
    return _MODEL_REGISTRY[key]()
