"""Dynamic activation/feature-map fault hooks.

The paper's dynamic injection corrupts activations and feature maps while the
network executes.  :class:`ActivationFaultHook` wraps any layer of a
:class:`repro.nn.Sequential` network; during the forward pass the wrapped
layer's output is passed through the fault injector before flowing to the next
layer.  The hook is transparent to backpropagation (faults are transient
value corruptions, not differentiable operations).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.faults.ber import BitErrorRate
from repro.faults.injector import FaultInjector
from repro.nn.module import Module, Sequential


class ActivationFaultHook(Module):
    """Wrap a layer so its forward output is corrupted by a fault injector."""

    def __init__(
        self,
        wrapped: Module,
        injector: FaultInjector,
        bit_error_rate: Union[float, BitErrorRate],
        enabled: bool = True,
    ) -> None:
        super().__init__()
        self.wrapped = wrapped
        self.injector = injector
        self.bit_error_rate = (
            bit_error_rate
            if isinstance(bit_error_rate, BitErrorRate)
            else BitErrorRate(float(bit_error_rate))
        )
        self.enabled = enabled
        self.injection_count = 0

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Forward through the wrapped layer, corrupting the activations when enabled."""
        output = self.wrapped.forward(inputs)
        if self.enabled and self.bit_error_rate.rate > 0.0:
            output = self.injector.corrupt_array(output, self.bit_error_rate)
            self.injection_count += 1
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Delegate the backward pass to the wrapped layer unchanged."""
        return self.wrapped.backward(grad_output)

    def parameters(self):
        """The wrapped layer's parameters (the hook adds none of its own)."""
        return self.wrapped.parameters()

    def named_parameters(self, prefix: str = ""):
        """The wrapped layer's named parameters under ``prefix``."""
        return self.wrapped.named_parameters(prefix=prefix)

    def train(self) -> "ActivationFaultHook":
        """Put the hook and the wrapped layer into training mode."""
        super().train()
        self.wrapped.train()
        return self

    def eval(self) -> "ActivationFaultHook":
        """Put the hook and the wrapped layer into evaluation mode."""
        super().eval()
        self.wrapped.eval()
        return self


def attach_activation_faults(
    network: Sequential,
    injector: FaultInjector,
    bit_error_rate: Union[float, BitErrorRate],
    layer_indices: Optional[Sequence[int]] = None,
) -> List[ActivationFaultHook]:
    """Wrap layers of ``network`` in-place with activation fault hooks.

    ``layer_indices`` selects which layers to instrument (defaults to every
    layer).  Returns the created hooks so callers can enable/disable them per
    episode or inspect injection counts.
    """
    indices = list(range(len(network))) if layer_indices is None else list(layer_indices)
    hooks: List[ActivationFaultHook] = []
    for index in indices:
        if index < 0 or index >= len(network):
            raise IndexError(f"layer index {index} out of range for network of {len(network)}")
        hook = ActivationFaultHook(network.modules[index], injector, bit_error_rate)
        network.modules[index] = hook
        hooks.append(hook)
    return hooks


def detach_activation_faults(network: Sequential) -> int:
    """Remove every activation fault hook from ``network``; returns the count."""
    removed = 0
    for index, module in enumerate(network.modules):
        if isinstance(module, ActivationFaultHook):
            network.modules[index] = module.wrapped
            removed += 1
    return removed
