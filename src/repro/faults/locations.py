"""Fault locations and targets within the FRL system.

The paper considers three physical fault sources — server, communication and
agent — and groups them into two effective classes for analysis:

* **agent faults**: faults in an agent's local data and in the parameters the
  server receives from that agent (agent memory + agent-to-server link).
  They affect a single agent and are smoothed away by the server's averaging.
* **server faults**: faults in the server's data and in the parameters every
  agent receives back (server memory + server-to-agent link).  They affect all
  agents simultaneously.
"""

from __future__ import annotations

from enum import Enum


class FaultLocation(Enum):
    """Physical location of the fault source."""

    AGENT = "agent"
    SERVER = "server"
    AGENT_TO_SERVER = "agent_to_server"
    SERVER_TO_AGENT = "server_to_agent"

    @classmethod
    def parse(cls, value) -> "FaultLocation":
        """Coerce a string/enum ``value`` into a :class:`FaultLocation` (accepts paper aliases)."""
        if isinstance(value, cls):
            return value
        key = str(value).lower().replace("-", "_")
        aliases = {
            "agent": cls.AGENT,
            "server": cls.SERVER,
            "agent_to_server": cls.AGENT_TO_SERVER,
            "uplink": cls.AGENT_TO_SERVER,
            "server_to_agent": cls.SERVER_TO_AGENT,
            "downlink": cls.SERVER_TO_AGENT,
            "communication_up": cls.AGENT_TO_SERVER,
            "communication_down": cls.SERVER_TO_AGENT,
        }
        if key not in aliases:
            raise KeyError(f"unknown fault location {value!r}")
        return aliases[key]


class FaultTarget(Enum):
    """Which tensors are corrupted."""

    WEIGHTS = "weights"
    ACTIVATIONS = "activations"
    COMMUNICATED_PARAMETERS = "communicated_parameters"

    @classmethod
    def parse(cls, value) -> "FaultTarget":
        """Coerce a string/enum ``value`` into a :class:`FaultTarget` (accepts paper aliases)."""
        if isinstance(value, cls):
            return value
        key = str(value).lower()
        aliases = {
            "weights": cls.WEIGHTS,
            "weight": cls.WEIGHTS,
            "activations": cls.ACTIVATIONS,
            "activation": cls.ACTIVATIONS,
            "feature_maps": cls.ACTIVATIONS,
            "communicated_parameters": cls.COMMUNICATED_PARAMETERS,
            "communication": cls.COMMUNICATED_PARAMETERS,
            "parameters": cls.COMMUNICATED_PARAMETERS,
        }
        if key not in aliases:
            raise KeyError(f"unknown fault target {value!r}")
        return aliases[key]


def effective_class(location: FaultLocation) -> str:
    """Map a physical location to the paper's two analysis classes.

    Returns ``"agent"`` for faults that enter through a single agent's data
    (agent memory, agent-to-server link) and ``"server"`` for faults that enter
    through the server's data (server memory, server-to-agent link).
    """
    location = FaultLocation.parse(location)
    if location in (FaultLocation.AGENT, FaultLocation.AGENT_TO_SERVER):
        return "agent"
    return "server"
