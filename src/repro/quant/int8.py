"""Symmetric int8 affine quantization.

GridWorld policies in the paper are quantized to 8 bits without loss of
performance.  The codec here is symmetric (zero-point 0) per-tensor
quantization: ``code = clip(round(value / scale), -128, 127)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedTensor:
    """An int8 tensor plus the scale needed to reconstruct float values."""

    codes: np.ndarray
    scale: float

    def dequantize(self) -> np.ndarray:
        return self.codes.astype(np.float64) * self.scale

    @property
    def shape(self) -> tuple:
        return self.codes.shape

    @property
    def bit_width(self) -> int:
        return 8


class Int8AffineCodec:
    """Symmetric per-tensor int8 quantizer."""

    bit_width = 8

    def __init__(self, clip_percentile: float = 100.0) -> None:
        if not 0.0 < clip_percentile <= 100.0:
            raise ValueError(f"clip_percentile must be in (0, 100], got {clip_percentile}")
        self.clip_percentile = clip_percentile

    def compute_scale(self, values: np.ndarray) -> float:
        """Scale mapping the value range onto [-127, 127]."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 1.0
        if self.clip_percentile >= 100.0:
            max_abs = float(np.abs(values).max())
        else:
            max_abs = float(np.percentile(np.abs(values), self.clip_percentile))
        if max_abs == 0.0:
            return 1.0
        scale = max_abs / 127.0
        if scale == 0.0:
            # max_abs is so small (subnormal) that dividing by 127 underflows
            # to zero; the smallest positive float keeps quantize() usable and
            # still reconstructs these values within half a code step.
            scale = float(np.nextafter(0.0, 1.0))
        return scale

    def quantize(self, values: np.ndarray, scale: float | None = None) -> QuantizedTensor:
        values = np.asarray(values, dtype=np.float64)
        scale = self.compute_scale(values) if scale is None else float(scale)
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        codes = np.clip(np.round(values / scale), -128, 127).astype(np.int8)
        return QuantizedTensor(codes=codes, scale=scale)

    def dequantize(self, quantized: QuantizedTensor) -> np.ndarray:
        return quantized.dequantize()

    def roundtrip(self, values: np.ndarray, scale: float | None = None) -> np.ndarray:
        """Quantize then dequantize ``values``."""
        return self.quantize(values, scale=scale).dequantize()

    def quantization_error(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        return float(np.abs(values - self.roundtrip(values)).mean())
