"""Quantization substrate: fixed-point and int8 affine codecs.

The paper studies edge deployments where policies are quantized to 8 bits
(GridWorld) or represented with signed fixed-point formats Q(sign, integer,
fraction) (the drone data-type study).  Fault injection always happens on the
integer *code words* produced by these codecs, so a bit flip in this package's
output is exactly a bit flip in the modelled memory or communication channel.
"""

from repro.quant.fixedpoint import FixedPointFormat, Q1_2_5, Q1_3_4, Q1_4_11, Q1_7_8, Q1_10_5
from repro.quant.int8 import Int8AffineCodec, QuantizedTensor
from repro.quant.datatypes import DataType, resolve_datatype, DATATYPE_REGISTRY
from repro.quant.bitstats import bit_breakdown, weight_range, BitBreakdown

__all__ = [
    "FixedPointFormat",
    "Q1_2_5",
    "Q1_3_4",
    "Q1_4_11",
    "Q1_7_8",
    "Q1_10_5",
    "Int8AffineCodec",
    "QuantizedTensor",
    "DataType",
    "resolve_datatype",
    "DATATYPE_REGISTRY",
    "bit_breakdown",
    "weight_range",
    "BitBreakdown",
]
