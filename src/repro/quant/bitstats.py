"""Bit-level statistics of quantized policies (paper Fig. 3d).

The paper explains the asymmetry between 0→1 and 1→0 flips by the policy's
narrow weight range: the quantized representation contains far more 0 bits
than 1 bits, and a 0→1 flip of a high-order bit creates an outlier.  These
helpers compute the weight range and the 0/1 bit breakdown reported in
Fig. 3d.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.quant.datatypes import DataType, resolve_datatype
from repro.utils.bitops import one_bit_fraction


@dataclass(frozen=True)
class BitBreakdown:
    """Fraction of 0 and 1 storage bits plus the float value range."""

    zero_bit_fraction: float
    one_bit_fraction: float
    min_value: float
    max_value: float
    total_bits: int

    def as_dict(self) -> dict:
        return {
            "zero_bit_fraction": self.zero_bit_fraction,
            "one_bit_fraction": self.one_bit_fraction,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "total_bits": self.total_bits,
        }


def weight_range(state: Dict[str, np.ndarray]) -> tuple:
    """(min, max) over every value in a state dict."""
    if not state:
        raise ValueError("state dict is empty")
    minimum = min(float(np.asarray(v).min()) for v in state.values())
    maximum = max(float(np.asarray(v).max()) for v in state.values())
    return minimum, maximum


def bit_breakdown(
    state: Dict[str, np.ndarray], datatype: Union[str, DataType] = "int8"
) -> BitBreakdown:
    """0/1 bit breakdown of a policy state dict under ``datatype`` storage."""
    datatype = resolve_datatype(datatype)
    if not state:
        raise ValueError("state dict is empty")
    flat = np.concatenate([np.asarray(v, dtype=np.float64).reshape(-1) for v in state.values()])
    codes, _context = datatype.encode(flat)
    ones = one_bit_fraction(codes, datatype.bit_width)
    return BitBreakdown(
        zero_bit_fraction=1.0 - ones,
        one_bit_fraction=ones,
        min_value=float(flat.min()),
        max_value=float(flat.max()),
        total_bits=int(flat.size * datatype.bit_width),
    )
