"""Named data types usable as fault-injection targets.

A :class:`DataType` abstracts "how is this tensor stored in memory / on the
wire": it knows how to encode a float tensor into integer code words of a
fixed bit width and decode them back.  Both the int8 affine codec and the
fixed-point Q formats are exposed through this interface so the fault injector
can treat every storage format uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

import numpy as np

from repro.quant.fixedpoint import FixedPointFormat, Q1_2_5, Q1_3_4, Q1_4_11, Q1_7_8, Q1_10_5
from repro.quant.int8 import Int8AffineCodec


@dataclass(frozen=True)
class DataType:
    """A named storage format with encode/decode to integer code words.

    ``encode`` returns ``(codes, context)`` where ``context`` carries whatever
    is needed to decode (e.g. the int8 scale); ``decode`` reverses it.
    """

    name: str
    bit_width: int
    encode: Callable[[np.ndarray], Tuple[np.ndarray, object]]
    decode: Callable[[np.ndarray, object], np.ndarray]

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        codes, context = self.encode(values)
        return self.decode(codes, context)


def _fixedpoint_datatype(fmt: FixedPointFormat) -> DataType:
    def encode(values: np.ndarray) -> Tuple[np.ndarray, object]:
        return fmt.encode(values), None

    def decode(codes: np.ndarray, _context: object) -> np.ndarray:
        return fmt.decode(codes)

    return DataType(name=fmt.name, bit_width=fmt.total_bits, encode=encode, decode=decode)


def _int8_datatype() -> DataType:
    codec = Int8AffineCodec()

    def encode(values: np.ndarray) -> Tuple[np.ndarray, object]:
        quantized = codec.quantize(values)
        return quantized.codes, quantized.scale

    def decode(codes: np.ndarray, scale: object) -> np.ndarray:
        return np.asarray(codes, dtype=np.float64) * float(scale)

    return DataType(name="int8", bit_width=8, encode=encode, decode=decode)


DATATYPE_REGISTRY: Dict[str, DataType] = {
    "int8": _int8_datatype(),
    Q1_4_11.name: _fixedpoint_datatype(Q1_4_11),
    Q1_7_8.name: _fixedpoint_datatype(Q1_7_8),
    Q1_10_5.name: _fixedpoint_datatype(Q1_10_5),
    Q1_2_5.name: _fixedpoint_datatype(Q1_2_5),
    Q1_3_4.name: _fixedpoint_datatype(Q1_3_4),
    # Friendly aliases used in experiment configuration files.
    "q1_4_11": _fixedpoint_datatype(Q1_4_11),
    "q1_7_8": _fixedpoint_datatype(Q1_7_8),
    "q1_10_5": _fixedpoint_datatype(Q1_10_5),
    "q1_2_5": _fixedpoint_datatype(Q1_2_5),
    "q1_3_4": _fixedpoint_datatype(Q1_3_4),
}


def resolve_datatype(datatype: Union[str, DataType, FixedPointFormat]) -> DataType:
    """Resolve a name / format / DataType into a :class:`DataType`."""
    if isinstance(datatype, DataType):
        return datatype
    if isinstance(datatype, FixedPointFormat):
        return _fixedpoint_datatype(datatype)
    key = str(datatype)
    if key in DATATYPE_REGISTRY:
        return DATATYPE_REGISTRY[key]

    def canonical(name: str) -> str:
        return "".join(ch for ch in name.lower() if ch.isalnum())

    wanted = canonical(key)
    for registered_key, registered in DATATYPE_REGISTRY.items():
        if canonical(registered_key) == wanted:
            return registered
    raise KeyError(
        f"unknown data type {datatype!r}; known types: {sorted(set(DATATYPE_REGISTRY))}"
    )
