"""Signed fixed-point Q(sign, integer, fraction) codecs.

The drone data-type study in the paper compares Q(1,4,11), Q(1,7,8) and
Q(1,10,5): all 16-bit signed formats that trade integer range for fractional
precision.  A format with an unnecessarily large integer range (Q(1,10,5))
yields large value deviations when high-order bits flip, while a format whose
range just covers the parameter distribution (Q(1,4,11)) is more resilient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import signed_dtype_for, unsigned_dtype_for


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format.

    ``integer_bits`` excludes the sign bit, so the total width is
    ``1 + integer_bits + fraction_bits``.
    """

    integer_bits: int
    fraction_bits: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError("integer_bits and fraction_bits must be non-negative")
        if self.total_bits > 64:
            raise ValueError(f"total width {self.total_bits} exceeds 64 bits")
        if not self.name:
            object.__setattr__(
                self, "name", f"Q(1,{self.integer_bits},{self.fraction_bits})"
            )

    @property
    def total_bits(self) -> int:
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.total_bits - 1)) * self.scale

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Quantize float values to integer code words (saturating)."""
        values = np.asarray(values, dtype=np.float64)
        scaled = np.round(values / self.scale)
        low = -(2 ** (self.total_bits - 1))
        high = 2 ** (self.total_bits - 1) - 1
        clipped = np.clip(scaled, low, high)
        return clipped.astype(signed_dtype_for(self.total_bits))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer code words back to float values."""
        codes = np.asarray(codes)
        signed = self._to_signed(codes)
        return signed.astype(np.float64) * self.scale

    def _to_signed(self, codes: np.ndarray) -> np.ndarray:
        """Interpret raw code words as two's complement of ``total_bits``."""
        width = self.total_bits
        unsigned = codes.astype(np.int64) & ((1 << width) - 1)
        sign_bit = 1 << (width - 1)
        return np.where(unsigned >= sign_bit, unsigned - (1 << width), unsigned)

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize — the representable approximation."""
        return self.decode(self.encode(values))

    def quantization_error(self, values: np.ndarray) -> float:
        """Mean absolute quantization error over ``values``."""
        values = np.asarray(values, dtype=np.float64)
        return float(np.abs(values - self.roundtrip(values)).mean())

    def storage_dtype(self) -> np.dtype:
        return unsigned_dtype_for(self.total_bits)

    def __str__(self) -> str:
        return self.name


# The three formats from the paper's data-type study (16-bit total width).
Q1_4_11 = FixedPointFormat(integer_bits=4, fraction_bits=11)
Q1_7_8 = FixedPointFormat(integer_bits=7, fraction_bits=8)
Q1_10_5 = FixedPointFormat(integer_bits=10, fraction_bits=5)

# 8-bit formats used for the GridWorld policy (the paper quantizes it to
# 8 bits); Q(1,2,5) covers the ±1.3 weight range with headroom, Q(1,3,4)
# trades precision for extra range.
Q1_2_5 = FixedPointFormat(integer_bits=2, fraction_bits=5)
Q1_3_4 = FixedPointFormat(integer_bits=3, fraction_bits=4)
