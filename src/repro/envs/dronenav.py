"""DroneNav: the paper's large-scale drone navigation workload.

The paper uses the PEDRA platform (Unreal Engine + AirSim) in which a drone
flies through 3D photo-realistic environments, observing 320×180 RGB frames
and choosing among 25 perception-based actions; a depth-based reward keeps it
away from obstacles and the metric is the *safe flight distance* — the average
distance flown before a collision.

That stack is not available offline, so this module implements the closest
synthetic equivalent that exercises the same code paths:

* a 2.5D corridor world populated with cylindrical obstacles,
* a ray-cast front-facing depth camera whose readings are expanded into a
  small multi-channel image (so the policy remains a CNN over camera frames),
* a 25-element action space formed by 5 yaw changes × 5 speed factors,
* a depth-shaped reward that rewards keeping clear space ahead and penalizes
  collisions, and
* episode termination on collision with the safe flight distance as the
  headline metric.

The substitution preserves the sequential decision process, the CNN policy
topology, the reward shaping and the collision-terminated metric the paper's
fault analysis depends on (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.envs.base import Environment, StepResult, VecStepResult
from repro.utils.rng import as_rng

# 25-action space: 5 yaw deltas (degrees) x 5 speed factors.
YAW_DELTAS_DEG: Tuple[float, ...] = (-30.0, -15.0, 0.0, 15.0, 30.0)
SPEED_FACTORS: Tuple[float, ...] = (0.5, 0.75, 1.0, 1.25, 1.5)


def decode_action(action: int) -> Tuple[float, float]:
    """Map an action index to (yaw delta in radians, speed factor)."""
    if not 0 <= action < len(YAW_DELTAS_DEG) * len(SPEED_FACTORS):
        raise ValueError(f"action {action} outside the 25-element action space")
    yaw_index, speed_index = divmod(action, len(SPEED_FACTORS))
    return np.deg2rad(YAW_DELTAS_DEG[yaw_index]), SPEED_FACTORS[speed_index]


@dataclass
class DroneWorld:
    """A corridor world with cylindrical obstacles.

    The corridor runs along +x from 0 to ``length`` with walls at
    ``y = ±half_width``.  Obstacles are circles of radius ``obstacle_radius``.
    """

    length: float = 900.0
    half_width: float = 25.0
    obstacle_radius: float = 2.5
    obstacles: np.ndarray = field(default_factory=lambda: np.zeros((0, 2)))
    name: str = "world"

    def __post_init__(self) -> None:
        self.obstacles = np.asarray(self.obstacles, dtype=np.float64).reshape(-1, 2)
        if self.length <= 0 or self.half_width <= 0 or self.obstacle_radius <= 0:
            raise ValueError("world dimensions must be positive")

    def collides(self, position: np.ndarray, drone_radius: float) -> bool:
        """True if the drone at ``position`` hits an obstacle or a wall."""
        x, y = float(position[0]), float(position[1])
        if abs(y) > self.half_width - drone_radius:
            return True
        if self.obstacles.size == 0:
            return False
        distances = np.hypot(self.obstacles[:, 0] - x, self.obstacles[:, 1] - y)
        return bool((distances < self.obstacle_radius + drone_radius).any())

    def ray_depths(
        self,
        position: np.ndarray,
        heading: float,
        angles: np.ndarray,
        max_range: float,
    ) -> np.ndarray:
        """Distance to the nearest obstruction along each ray.

        ``angles`` are offsets (radians) from ``heading``.  Rays hit either a
        cylindrical obstacle or one of the corridor walls; readings are capped
        at ``max_range``.
        """
        x, y = float(position[0]), float(position[1])
        directions = np.stack(
            [np.cos(heading + angles), np.sin(heading + angles)], axis=1
        )  # (rays, 2)
        depths = np.full(angles.shape[0], max_range, dtype=np.float64)

        # Wall intersections: y + t * dy = ±half_width  ->  t = (±hw - y) / dy.
        dy = directions[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t_top = np.where(dy > 1e-12, (self.half_width - y) / dy, np.inf)
            t_bottom = np.where(dy < -1e-12, (-self.half_width - y) / dy, np.inf)
        wall_t = np.minimum(t_top, t_bottom)
        depths = np.minimum(depths, np.clip(wall_t, 0.0, max_range))

        if self.obstacles.size:
            # Circle intersection per ray: solve |p + t*d - c|^2 = r^2.
            rel = self.obstacles[None, :, :] - np.array([[x, y]])[:, None, :]  # (1, obs, 2)
            d = directions[:, None, :]  # (rays, 1, 2)
            b = np.sum(d * rel, axis=2)  # (rays, obs)
            c = np.sum(rel * rel, axis=2) - self.obstacle_radius**2
            disc = b * b - c
            hit = disc >= 0.0
            sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
            t_obstacle = np.where(hit, b - sqrt_disc, np.inf)
            t_obstacle = np.where(t_obstacle >= 0.0, t_obstacle, np.inf)
            nearest = t_obstacle.min(axis=1)
            depths = np.minimum(depths, np.clip(nearest, 0.0, max_range))
        return depths


def generate_world(
    seed: int,
    length: float = 900.0,
    half_width: float = 25.0,
    obstacle_density: float = 0.0015,
    obstacle_radius: float = 2.5,
    keepout: float = 12.0,
    name: Optional[str] = None,
) -> DroneWorld:
    """Generate a corridor world with randomly placed obstacles.

    ``obstacle_density`` is obstacles per square metre of corridor area.  A
    keep-out region around the start pose guarantees the drone never spawns in
    contact with an obstacle.
    """
    rng = as_rng(seed)
    area = length * 2 * half_width
    count = int(round(obstacle_density * area))
    xs = rng.uniform(keepout, length, size=count)
    ys = rng.uniform(-half_width + obstacle_radius, half_width - obstacle_radius, size=count)
    obstacles = np.stack([xs, ys], axis=1)
    return DroneWorld(
        length=length,
        half_width=half_width,
        obstacle_radius=obstacle_radius,
        obstacles=obstacles,
        name=name or f"world-{seed}",
    )


def default_drone_worlds(count: int = 4, **kwargs) -> List[DroneWorld]:
    """The canonical per-drone worlds used throughout the reproduction."""
    return [generate_world(seed=2000 + index, name=f"drone-env-{index}", **kwargs) for index in range(count)]


@dataclass(frozen=True)
class DroneNavConfig:
    """Tunable parameters of the drone navigation environment."""

    image_width: int = 32
    image_height: int = 18
    field_of_view_deg: float = 90.0
    max_range: float = 40.0
    base_speed: float = 2.0
    drone_radius: float = 1.0
    max_steps: int = 400
    crash_penalty: float = -10.0

    def __post_init__(self) -> None:
        if self.image_width <= 1 or self.image_height <= 0:
            raise ValueError("image dimensions must be positive (width > 1)")
        if not 0.0 < self.field_of_view_deg <= 180.0:
            raise ValueError("field of view must be in (0, 180] degrees")
        if self.max_range <= 0 or self.base_speed <= 0 or self.drone_radius <= 0:
            raise ValueError("ranges, speeds and radii must be positive")
        if self.max_steps <= 0:
            raise ValueError("max_steps must be positive")


class DroneNavEnv(Environment):
    """Corridor-flight environment with a ray-cast camera observation."""

    action_count = len(YAW_DELTAS_DEG) * len(SPEED_FACTORS)

    def __init__(self, world: DroneWorld, config: Optional[DroneNavConfig] = None) -> None:
        self.world = world
        self.config = config or DroneNavConfig()
        self.observation_shape = (3, self.config.image_height, self.config.image_width)
        half_fov = np.deg2rad(self.config.field_of_view_deg) / 2.0
        self._ray_angles = np.linspace(-half_fov, half_fov, self.config.image_width)
        self._position = np.zeros(2)
        self._heading = 0.0
        self._steps = 0
        self._distance = 0.0
        self._done = True

    @property
    def flight_distance(self) -> float:
        """Distance flown so far in the current episode (metres)."""
        return self._distance

    @property
    def position(self) -> np.ndarray:
        """The drone's current (x, y) position as a copy."""
        return self._position.copy()

    @property
    def heading(self) -> float:
        """The drone's current heading in radians (0 = down-corridor)."""
        return self._heading

    def reset(self) -> np.ndarray:
        """Return the drone to the corridor origin and start a new episode."""
        self._position = np.array([0.0, 0.0])
        self._heading = 0.0
        self._steps = 0
        self._distance = 0.0
        self._done = False
        return self.observe()

    def observe(self) -> np.ndarray:
        """Expand the ray-cast depth profile into a (3, H, W) camera frame.

        Channel 0 encodes normalized depth per image column (tiled vertically
        with a mild vertical falloff, mimicking ground/sky structure),
        channel 1 encodes obstacle proximity (inverted depth) and channel 2
        encodes the lateral position of the drone within the corridor, giving
        the CNN the same kind of spatial cues an RGB render would provide.
        """
        config = self.config
        depths = self.world.ray_depths(
            self._position, self._heading, self._ray_angles, config.max_range
        )
        normalized = depths / config.max_range  # (W,)
        vertical = np.linspace(1.0, 0.6, config.image_height).reshape(-1, 1)  # (H, 1)
        depth_plane = vertical * normalized[None, :]
        proximity_plane = vertical * (1.0 - normalized)[None, :]
        lateral = (self._position[1] + self.world.half_width) / (2 * self.world.half_width)
        lateral_plane = np.full((config.image_height, config.image_width), lateral)
        return np.stack([depth_plane, proximity_plane, lateral_plane]).astype(np.float64)

    def _front_clearance(self, depths: np.ndarray) -> float:
        """Mean depth over the central third of the field of view."""
        width = depths.shape[0]
        lo = width // 3
        hi = width - lo
        return float(depths[lo:hi].mean())

    def step(self, action: int) -> StepResult:
        """Apply one (speed, steering) action; crash/survive per the ray-cast."""
        if self._done:
            raise RuntimeError("step called on a finished episode; call reset() first")
        action = self.validate_action(action)
        config = self.config
        yaw_delta, speed_factor = decode_action(action)
        self._heading = float(np.clip(self._heading + yaw_delta, -np.pi / 2, np.pi / 2))
        speed = config.base_speed * speed_factor
        displacement = speed * np.array([np.cos(self._heading), np.sin(self._heading)])
        self._position = self._position + displacement
        self._steps += 1
        travelled = float(np.hypot(*displacement))
        info = {
            "position": self._position.copy(),
            "heading": self._heading,
            "steps": self._steps,
            "flight_distance": self._distance,
        }
        if self.world.collides(self._position, config.drone_radius):
            self._done = True
            info["outcome"] = "crash"
            info["flight_distance"] = self._distance
            return StepResult(self.observe(), config.crash_penalty, True, info)
        self._distance += travelled
        info["flight_distance"] = self._distance
        depths = self.world.ray_depths(
            self._position, self._heading, self._ray_angles, config.max_range
        )
        clearance = self._front_clearance(depths) / config.max_range
        # Depth-based reward: stay away from obstacles, with a small bonus for
        # making forward progress along the corridor.
        progress = displacement[0] / (config.base_speed * max(SPEED_FACTORS))
        reward = clearance - 0.5 + 0.2 * progress
        if self._steps >= config.max_steps or self._position[0] >= self.world.length:
            self._done = True
            info["outcome"] = "survived"
            return StepResult(self.observe(), reward, True, info)
        info["outcome"] = "fly"
        return StepResult(self.observe(), reward, False, info)


#: Obstacle coordinate used to pad lanes with fewer obstacles than the widest
#: lane.  Far enough that a padded "obstacle" can never collide or shadow a
#: real ray hit (its intersection parameter is ~1e9, clipped to ``max_range``
#: where it ties with the no-obstacle depth bitwise), small enough that the
#: quadratic ray test (~1e18) stays comfortably inside float64.
_FAR_OBSTACLE = 1.0e9

#: Precomputed per-action lookups; ``deg2rad``/float conversion is elementwise,
#: so ``_YAW_RAD[a]`` is bitwise equal to ``decode_action(a)[0]``.
_YAW_RAD = np.deg2rad(np.asarray(YAW_DELTAS_DEG, dtype=np.float64))
_SPEED = np.asarray(SPEED_FACTORS, dtype=np.float64)


class DroneNavVecEnv:
    """Lockstep batch of :class:`DroneNavEnv` lanes with masked termination.

    Each lane mirrors one serial environment *bitwise*: every numpy op in
    :meth:`step_batch` is the elementwise/row-wise image of the corresponding
    serial op in :meth:`DroneNavEnv.step`, applied only to lanes that are
    still running (finished lanes are frozen by mask, never recomputed).
    Lanes may share a :class:`DroneWorld` object (worlds are read-only), which
    is how evaluation runs several attempts of one environment in parallel.

    The serial step ray-casts twice at the post-move pose (once for the
    clearance reward, once inside ``observe``); being a pure function of pose,
    one vectorized cast serves both uses for every stepped lane.
    """

    action_count = len(YAW_DELTAS_DEG) * len(SPEED_FACTORS)

    def __init__(self, envs: List["DroneNavEnv"]) -> None:
        envs = list(envs)
        if not envs:
            raise ValueError("DroneNavVecEnv needs at least one lane")
        for env in envs:
            if not isinstance(env, DroneNavEnv):
                raise TypeError(f"expected DroneNavEnv lanes, got {type(env).__name__}")
            if env.config != envs[0].config:
                raise ValueError("all lanes must share one DroneNavConfig")
        self.envs = envs
        self.config = envs[0].config
        self.lane_count = len(envs)
        self.observation_shape = envs[0].observation_shape
        self._ray_angles = envs[0]._ray_angles
        self._lengths = np.array([env.world.length for env in envs], dtype=np.float64)
        self._half_widths = np.array(
            [env.world.half_width for env in envs], dtype=np.float64
        )
        self._obstacle_radii = np.array(
            [env.world.obstacle_radius for env in envs], dtype=np.float64
        )
        counts = [env.world.obstacles.shape[0] for env in envs]
        self._obstacle_max = max(counts)
        if self._obstacle_max:
            self._obstacles = np.full(
                (self.lane_count, self._obstacle_max, 2), _FAR_OBSTACLE, dtype=np.float64
            )
            for lane, env in enumerate(envs):
                self._obstacles[lane, : counts[lane]] = env.world.obstacles
        else:
            self._obstacles = np.zeros((self.lane_count, 0, 2))
        self._positions = np.zeros((self.lane_count, 2))
        self._headings = np.zeros(self.lane_count)
        self._steps = np.zeros(self.lane_count, dtype=np.int64)
        self._distances = np.zeros(self.lane_count)
        self._done = np.ones(self.lane_count, dtype=bool)
        self._observations = np.zeros((self.lane_count,) + self.observation_shape)

    @property
    def done(self) -> np.ndarray:
        """Copy of the per-lane episode-finished flags."""
        return self._done.copy()

    @property
    def observations(self) -> np.ndarray:
        """The full per-lane observation stack (stale rows for done lanes)."""
        return self._observations

    @property
    def flight_distances(self) -> np.ndarray:
        """Copy of the per-lane flight distances (the paper's metric)."""
        return self._distances.copy()

    @property
    def steps(self) -> np.ndarray:
        """Copy of the per-lane step counters."""
        return self._steps.copy()

    @property
    def positions(self) -> np.ndarray:
        """Copy of the per-lane drone positions."""
        return self._positions.copy()

    @property
    def headings(self) -> np.ndarray:
        """Copy of the per-lane drone headings."""
        return self._headings.copy()

    def reset_batch(self, lanes: Optional[np.ndarray] = None) -> np.ndarray:
        """Reset all lanes (or just ``lanes``) and return the observation stack."""
        if lanes is None:
            lanes = np.arange(self.lane_count)
        else:
            lanes = np.asarray(lanes, dtype=np.int64)
        self._positions[lanes] = 0.0
        self._headings[lanes] = 0.0
        self._steps[lanes] = 0
        self._distances[lanes] = 0.0
        self._done[lanes] = False
        depths = self._ray_depths_batch(
            lanes, self._positions[lanes], self._headings[lanes]
        )
        self._observations[lanes] = self._observe_batch(
            lanes, self._positions[lanes], depths
        )
        return self._observations

    def step_batch(self, actions: np.ndarray) -> VecStepResult:
        """Advance every unfinished lane by one step (finished lanes freeze).

        ``actions`` is a full-length ``(lanes,)`` integer array; entries for
        finished lanes are ignored.
        """
        active = np.flatnonzero(~self._done)
        if active.size == 0:
            raise RuntimeError(
                "step_batch called with every lane finished; call reset_batch() first"
            )
        config = self.config
        act = np.asarray(actions, dtype=np.int64)[active]
        if act.min() < 0 or act.max() >= self.action_count:
            raise ValueError("action outside the 25-element action space")
        yaw_delta = _YAW_RAD[act // len(SPEED_FACTORS)]
        speed_factor = _SPEED[act % len(SPEED_FACTORS)]
        heading = np.clip(self._headings[active] + yaw_delta, -np.pi / 2, np.pi / 2)
        speed = config.base_speed * speed_factor
        displacement = speed[:, None] * np.stack(
            [np.cos(heading), np.sin(heading)], axis=1
        )
        position = self._positions[active] + displacement
        steps = self._steps[active] + 1
        travelled = np.hypot(displacement[:, 0], displacement[:, 1])

        # Collision test, vectorized image of DroneWorld.collides (computing
        # the obstacle term even when the wall already hit is harmless: the
        # serial short-circuit changes no booleans).
        crashed = np.abs(position[:, 1]) > self._half_widths[active] - config.drone_radius
        if self._obstacle_max:
            gaps = np.hypot(
                self._obstacles[active, :, 0] - position[:, 0:1],
                self._obstacles[active, :, 1] - position[:, 1:2],
            )
            thresholds = (self._obstacle_radii[active] + config.drone_radius)[:, None]
            crashed = crashed | (gaps < thresholds).any(axis=1)

        self._headings[active] = heading
        self._positions[active] = position
        self._steps[active] = steps
        flying = ~crashed
        self._distances[active[flying]] += travelled[flying]

        # One ray cast at the post-move pose serves the clearance reward and
        # the observation of every stepped lane (crashed lanes only observe).
        depths = self._ray_depths_batch(active, position, heading)
        width = config.image_width
        lo = width // 3
        clearance = depths[:, lo : width - lo].mean(axis=1) / config.max_range
        progress = displacement[:, 0] / (config.base_speed * max(SPEED_FACTORS))
        reward = clearance - 0.5 + 0.2 * progress
        reward[crashed] = config.crash_penalty
        survived = (steps >= config.max_steps) | (position[:, 0] >= self._lengths[active])
        finished = crashed | survived
        self._done[active] = finished
        self._observations[active] = self._observe_batch(active, position, depths)

        rewards = np.zeros(self.lane_count)
        rewards[active] = reward
        stepped = np.zeros(self.lane_count, dtype=bool)
        stepped[active] = True
        outcomes: List[Optional[str]] = [None] * self.lane_count
        for row, lane in enumerate(active):
            if crashed[row]:
                outcomes[lane] = "crash"
            elif survived[row]:
                outcomes[lane] = "survived"
            else:
                outcomes[lane] = "fly"
        return VecStepResult(
            observations=self._observations,
            rewards=rewards,
            done=self._done.copy(),
            stepped=stepped,
            outcomes=outcomes,
        )

    def _ray_depths_batch(
        self, lanes: np.ndarray, positions: np.ndarray, headings: np.ndarray
    ) -> np.ndarray:
        """Vectorized image of :meth:`DroneWorld.ray_depths` over ``lanes``."""
        config = self.config
        angles = self._ray_angles
        directions = np.stack(
            [
                np.cos(headings[:, None] + angles[None, :]),
                np.sin(headings[:, None] + angles[None, :]),
            ],
            axis=2,
        )  # (lanes, rays, 2)
        depths = np.full((positions.shape[0], angles.shape[0]), config.max_range)
        dy = directions[:, :, 1]
        y = positions[:, 1][:, None]
        half_width = self._half_widths[lanes][:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            t_top = np.where(dy > 1e-12, (half_width - y) / dy, np.inf)
            t_bottom = np.where(dy < -1e-12, (-half_width - y) / dy, np.inf)
        wall_t = np.minimum(t_top, t_bottom)
        depths = np.minimum(depths, np.clip(wall_t, 0.0, config.max_range))
        if self._obstacle_max:
            rel = self._obstacles[lanes] - positions[:, None, :]  # (lanes, obs, 2)
            d = directions[:, :, None, :]  # (lanes, rays, 1, 2)
            b = np.sum(d * rel[:, None, :, :], axis=3)  # (lanes, rays, obs)
            c = (
                np.sum(rel * rel, axis=2)[:, None, :]
                - self._obstacle_radii[lanes][:, None, None] ** 2
            )
            disc = b * b - c
            hit = disc >= 0.0
            sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
            t_obstacle = np.where(hit, b - sqrt_disc, np.inf)
            t_obstacle = np.where(t_obstacle >= 0.0, t_obstacle, np.inf)
            nearest = t_obstacle.min(axis=2)
            depths = np.minimum(depths, np.clip(nearest, 0.0, config.max_range))
        return depths

    def _observe_batch(
        self, lanes: np.ndarray, positions: np.ndarray, depths: np.ndarray
    ) -> np.ndarray:
        """Vectorized image of :meth:`DroneNavEnv.observe` over ``lanes``."""
        config = self.config
        normalized = depths / config.max_range  # (lanes, W)
        vertical = np.linspace(1.0, 0.6, config.image_height).reshape(-1, 1)  # (H, 1)
        depth_plane = vertical * normalized[:, None, :]
        proximity_plane = vertical * (1.0 - normalized)[:, None, :]
        lateral = (positions[:, 1] + self._half_widths[lanes]) / (
            2 * self._half_widths[lanes]
        )
        lateral_plane = np.broadcast_to(
            lateral[:, None, None],
            (positions.shape[0], config.image_height, config.image_width),
        )
        return np.stack([depth_plane, proximity_plane, lateral_plane], axis=1).astype(
            np.float64
        )


def make_dronenav_suite(
    drone_count: int = 4,
    config: Optional[DroneNavConfig] = None,
    **world_kwargs,
) -> List[DroneNavEnv]:
    """One DroneNav environment per drone, each over its own obstacle world."""
    worlds = default_drone_worlds(count=drone_count, **world_kwargs)
    return [DroneNavEnv(world, config=config) for world in worlds]
