"""DroneNav: the paper's large-scale drone navigation workload.

The paper uses the PEDRA platform (Unreal Engine + AirSim) in which a drone
flies through 3D photo-realistic environments, observing 320×180 RGB frames
and choosing among 25 perception-based actions; a depth-based reward keeps it
away from obstacles and the metric is the *safe flight distance* — the average
distance flown before a collision.

That stack is not available offline, so this module implements the closest
synthetic equivalent that exercises the same code paths:

* a 2.5D corridor world populated with cylindrical obstacles,
* a ray-cast front-facing depth camera whose readings are expanded into a
  small multi-channel image (so the policy remains a CNN over camera frames),
* a 25-element action space formed by 5 yaw changes × 5 speed factors,
* a depth-shaped reward that rewards keeping clear space ahead and penalizes
  collisions, and
* episode termination on collision with the safe flight distance as the
  headline metric.

The substitution preserves the sequential decision process, the CNN policy
topology, the reward shaping and the collision-terminated metric the paper's
fault analysis depends on (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.utils.rng import as_rng

# 25-action space: 5 yaw deltas (degrees) x 5 speed factors.
YAW_DELTAS_DEG: Tuple[float, ...] = (-30.0, -15.0, 0.0, 15.0, 30.0)
SPEED_FACTORS: Tuple[float, ...] = (0.5, 0.75, 1.0, 1.25, 1.5)


def decode_action(action: int) -> Tuple[float, float]:
    """Map an action index to (yaw delta in radians, speed factor)."""
    if not 0 <= action < len(YAW_DELTAS_DEG) * len(SPEED_FACTORS):
        raise ValueError(f"action {action} outside the 25-element action space")
    yaw_index, speed_index = divmod(action, len(SPEED_FACTORS))
    return np.deg2rad(YAW_DELTAS_DEG[yaw_index]), SPEED_FACTORS[speed_index]


@dataclass
class DroneWorld:
    """A corridor world with cylindrical obstacles.

    The corridor runs along +x from 0 to ``length`` with walls at
    ``y = ±half_width``.  Obstacles are circles of radius ``obstacle_radius``.
    """

    length: float = 900.0
    half_width: float = 25.0
    obstacle_radius: float = 2.5
    obstacles: np.ndarray = field(default_factory=lambda: np.zeros((0, 2)))
    name: str = "world"

    def __post_init__(self) -> None:
        self.obstacles = np.asarray(self.obstacles, dtype=np.float64).reshape(-1, 2)
        if self.length <= 0 or self.half_width <= 0 or self.obstacle_radius <= 0:
            raise ValueError("world dimensions must be positive")

    def collides(self, position: np.ndarray, drone_radius: float) -> bool:
        """True if the drone at ``position`` hits an obstacle or a wall."""
        x, y = float(position[0]), float(position[1])
        if abs(y) > self.half_width - drone_radius:
            return True
        if self.obstacles.size == 0:
            return False
        distances = np.hypot(self.obstacles[:, 0] - x, self.obstacles[:, 1] - y)
        return bool((distances < self.obstacle_radius + drone_radius).any())

    def ray_depths(
        self,
        position: np.ndarray,
        heading: float,
        angles: np.ndarray,
        max_range: float,
    ) -> np.ndarray:
        """Distance to the nearest obstruction along each ray.

        ``angles`` are offsets (radians) from ``heading``.  Rays hit either a
        cylindrical obstacle or one of the corridor walls; readings are capped
        at ``max_range``.
        """
        x, y = float(position[0]), float(position[1])
        directions = np.stack(
            [np.cos(heading + angles), np.sin(heading + angles)], axis=1
        )  # (rays, 2)
        depths = np.full(angles.shape[0], max_range, dtype=np.float64)

        # Wall intersections: y + t * dy = ±half_width  ->  t = (±hw - y) / dy.
        dy = directions[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t_top = np.where(dy > 1e-12, (self.half_width - y) / dy, np.inf)
            t_bottom = np.where(dy < -1e-12, (-self.half_width - y) / dy, np.inf)
        wall_t = np.minimum(t_top, t_bottom)
        depths = np.minimum(depths, np.clip(wall_t, 0.0, max_range))

        if self.obstacles.size:
            # Circle intersection per ray: solve |p + t*d - c|^2 = r^2.
            rel = self.obstacles[None, :, :] - np.array([[x, y]])[:, None, :]  # (1, obs, 2)
            d = directions[:, None, :]  # (rays, 1, 2)
            b = np.sum(d * rel, axis=2)  # (rays, obs)
            c = np.sum(rel * rel, axis=2) - self.obstacle_radius**2
            disc = b * b - c
            hit = disc >= 0.0
            sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
            t_obstacle = np.where(hit, b - sqrt_disc, np.inf)
            t_obstacle = np.where(t_obstacle >= 0.0, t_obstacle, np.inf)
            nearest = t_obstacle.min(axis=1)
            depths = np.minimum(depths, np.clip(nearest, 0.0, max_range))
        return depths


def generate_world(
    seed: int,
    length: float = 900.0,
    half_width: float = 25.0,
    obstacle_density: float = 0.0015,
    obstacle_radius: float = 2.5,
    keepout: float = 12.0,
    name: Optional[str] = None,
) -> DroneWorld:
    """Generate a corridor world with randomly placed obstacles.

    ``obstacle_density`` is obstacles per square metre of corridor area.  A
    keep-out region around the start pose guarantees the drone never spawns in
    contact with an obstacle.
    """
    rng = as_rng(seed)
    area = length * 2 * half_width
    count = int(round(obstacle_density * area))
    xs = rng.uniform(keepout, length, size=count)
    ys = rng.uniform(-half_width + obstacle_radius, half_width - obstacle_radius, size=count)
    obstacles = np.stack([xs, ys], axis=1)
    return DroneWorld(
        length=length,
        half_width=half_width,
        obstacle_radius=obstacle_radius,
        obstacles=obstacles,
        name=name or f"world-{seed}",
    )


def default_drone_worlds(count: int = 4, **kwargs) -> List[DroneWorld]:
    """The canonical per-drone worlds used throughout the reproduction."""
    return [generate_world(seed=2000 + index, name=f"drone-env-{index}", **kwargs) for index in range(count)]


@dataclass(frozen=True)
class DroneNavConfig:
    """Tunable parameters of the drone navigation environment."""

    image_width: int = 32
    image_height: int = 18
    field_of_view_deg: float = 90.0
    max_range: float = 40.0
    base_speed: float = 2.0
    drone_radius: float = 1.0
    max_steps: int = 400
    crash_penalty: float = -10.0

    def __post_init__(self) -> None:
        if self.image_width <= 1 or self.image_height <= 0:
            raise ValueError("image dimensions must be positive (width > 1)")
        if not 0.0 < self.field_of_view_deg <= 180.0:
            raise ValueError("field of view must be in (0, 180] degrees")
        if self.max_range <= 0 or self.base_speed <= 0 or self.drone_radius <= 0:
            raise ValueError("ranges, speeds and radii must be positive")
        if self.max_steps <= 0:
            raise ValueError("max_steps must be positive")


class DroneNavEnv(Environment):
    """Corridor-flight environment with a ray-cast camera observation."""

    action_count = len(YAW_DELTAS_DEG) * len(SPEED_FACTORS)

    def __init__(self, world: DroneWorld, config: Optional[DroneNavConfig] = None) -> None:
        self.world = world
        self.config = config or DroneNavConfig()
        self.observation_shape = (3, self.config.image_height, self.config.image_width)
        half_fov = np.deg2rad(self.config.field_of_view_deg) / 2.0
        self._ray_angles = np.linspace(-half_fov, half_fov, self.config.image_width)
        self._position = np.zeros(2)
        self._heading = 0.0
        self._steps = 0
        self._distance = 0.0
        self._done = True

    @property
    def flight_distance(self) -> float:
        """Distance flown so far in the current episode (metres)."""
        return self._distance

    @property
    def position(self) -> np.ndarray:
        return self._position.copy()

    @property
    def heading(self) -> float:
        return self._heading

    def reset(self) -> np.ndarray:
        self._position = np.array([0.0, 0.0])
        self._heading = 0.0
        self._steps = 0
        self._distance = 0.0
        self._done = False
        return self.observe()

    def observe(self) -> np.ndarray:
        """Expand the ray-cast depth profile into a (3, H, W) camera frame.

        Channel 0 encodes normalized depth per image column (tiled vertically
        with a mild vertical falloff, mimicking ground/sky structure),
        channel 1 encodes obstacle proximity (inverted depth) and channel 2
        encodes the lateral position of the drone within the corridor, giving
        the CNN the same kind of spatial cues an RGB render would provide.
        """
        config = self.config
        depths = self.world.ray_depths(
            self._position, self._heading, self._ray_angles, config.max_range
        )
        normalized = depths / config.max_range  # (W,)
        vertical = np.linspace(1.0, 0.6, config.image_height).reshape(-1, 1)  # (H, 1)
        depth_plane = vertical * normalized[None, :]
        proximity_plane = vertical * (1.0 - normalized)[None, :]
        lateral = (self._position[1] + self.world.half_width) / (2 * self.world.half_width)
        lateral_plane = np.full((config.image_height, config.image_width), lateral)
        return np.stack([depth_plane, proximity_plane, lateral_plane]).astype(np.float64)

    def _front_clearance(self, depths: np.ndarray) -> float:
        """Mean depth over the central third of the field of view."""
        width = depths.shape[0]
        lo = width // 3
        hi = width - lo
        return float(depths[lo:hi].mean())

    def step(self, action: int) -> StepResult:
        if self._done:
            raise RuntimeError("step called on a finished episode; call reset() first")
        action = self.validate_action(action)
        config = self.config
        yaw_delta, speed_factor = decode_action(action)
        self._heading = float(np.clip(self._heading + yaw_delta, -np.pi / 2, np.pi / 2))
        speed = config.base_speed * speed_factor
        displacement = speed * np.array([np.cos(self._heading), np.sin(self._heading)])
        self._position = self._position + displacement
        self._steps += 1
        travelled = float(np.hypot(*displacement))
        info = {
            "position": self._position.copy(),
            "heading": self._heading,
            "steps": self._steps,
            "flight_distance": self._distance,
        }
        if self.world.collides(self._position, config.drone_radius):
            self._done = True
            info["outcome"] = "crash"
            info["flight_distance"] = self._distance
            return StepResult(self.observe(), config.crash_penalty, True, info)
        self._distance += travelled
        info["flight_distance"] = self._distance
        depths = self.world.ray_depths(
            self._position, self._heading, self._ray_angles, config.max_range
        )
        clearance = self._front_clearance(depths) / config.max_range
        # Depth-based reward: stay away from obstacles, with a small bonus for
        # making forward progress along the corridor.
        progress = displacement[0] / (config.base_speed * max(SPEED_FACTORS))
        reward = clearance - 0.5 + 0.2 * progress
        if self._steps >= config.max_steps or self._position[0] >= self.world.length:
            self._done = True
            info["outcome"] = "survived"
            return StepResult(self.observe(), reward, True, info)
        info["outcome"] = "fly"
        return StepResult(self.observe(), reward, False, info)


def make_dronenav_suite(
    drone_count: int = 4,
    config: Optional[DroneNavConfig] = None,
    **world_kwargs,
) -> List[DroneNavEnv]:
    """One DroneNav environment per drone, each over its own obstacle world."""
    worlds = default_drone_worlds(count=drone_count, **world_kwargs)
    return [DroneNavEnv(world, config=config) for world in worlds]
