"""Environment protocol shared by every navigation task."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class StepResult:
    """Outcome of a single environment step."""

    observation: np.ndarray
    reward: float
    done: bool
    info: Dict[str, object] = field(default_factory=dict)


@dataclass
class VecStepResult:
    """Outcome of one lockstep ``step_batch`` over a batch of lanes.

    Arrays are full-length over *all* lanes; rows of lanes that were already
    finished (``stepped`` False) are frozen at their last value — masked, not
    dropped — so lane indices stay stable for the whole batch lifetime.
    """

    observations: np.ndarray  #: (lanes, *obs_shape); stale rows for frozen lanes
    rewards: np.ndarray  #: (lanes,) float64; 0.0 for lanes not stepped
    done: np.ndarray  #: (lanes,) bool, cumulative episode-finished flags
    stepped: np.ndarray  #: (lanes,) bool; which lanes this call advanced
    outcomes: list  #: per-lane outcome string for stepped lanes, else None


class Environment:
    """Minimal episodic environment interface (gym-like, dependency free)."""

    action_count: int = 0
    observation_shape: tuple = ()

    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""
        raise NotImplementedError

    def step(self, action: int) -> StepResult:
        """Apply ``action`` and return the transition result."""
        raise NotImplementedError

    def seed(self, seed: int) -> None:
        """Reseed any stochastic elements of the environment."""

    def validate_action(self, action: int) -> int:
        """Coerce ``action`` to int and check it lies in the action space."""
        action = int(action)
        if not 0 <= action < self.action_count:
            raise ValueError(
                f"action {action} outside the action space of size {self.action_count}"
            )
        return action
