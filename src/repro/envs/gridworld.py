"""GridWorld: the paper's small-scale navigation workload.

A 10×10 maze whose cells are one of {hell, goal, source, free}.  The agent
starts at the source and must reach the goal while avoiding hell cells.  At
every step it observes the nature of the four neighbouring cells (up, down,
right, left) encoded as -1 (hell / out of bounds), +1 (goal) or 0 (free), so
the state space has |S| = 3^4 = 81 elements.  Rewards are -1 for crashing,
+1 for reaching the goal, +0.1 for moving closer to the goal and -0.1 for
moving away from it.  The paper combines 12 such environments into 4 grids; we
provide 12 deterministic layouts generated from per-environment seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple

import numpy as np

from repro.envs.base import Environment, StepResult, VecStepResult
from repro.utils.rng import as_rng


class CellType(IntEnum):
    """Cell categories of the grid maze."""

    FREE = 0
    HELL = 1
    GOAL = 2
    SOURCE = 3


# Action encoding used throughout the reproduction: up, down, right, left.
ACTIONS: Tuple[Tuple[int, int], ...] = ((-1, 0), (1, 0), (0, 1), (0, -1))
ACTION_NAMES: Tuple[str, ...] = ("up", "down", "right", "left")


@dataclass(frozen=True)
class GridWorldLayout:
    """An immutable maze description."""

    grid: np.ndarray  # 2D array of CellType values
    source: Tuple[int, int]
    goal: Tuple[int, int]
    name: str = "layout"

    def __post_init__(self) -> None:
        grid = np.asarray(self.grid)
        if grid.ndim != 2:
            raise ValueError("grid must be a 2D array")
        if grid[self.source] == CellType.HELL:
            raise ValueError("source cell must not be a hell cell")
        if grid[self.goal] != CellType.GOAL:
            raise ValueError("goal coordinates must point at a GOAL cell")

    @property
    def shape(self) -> Tuple[int, int]:
        """The (rows, columns) extent of the grid."""
        return tuple(self.grid.shape)

    def cell(self, row: int, col: int) -> CellType:
        """Cell type at (row, col); out-of-bounds cells are treated as HELL."""
        rows, cols = self.grid.shape
        if not (0 <= row < rows and 0 <= col < cols):
            return CellType.HELL
        return CellType(int(self.grid[row, col]))

    def render(self) -> str:
        """ASCII rendering (S=source, G=goal, #=hell, .=free)."""
        symbols = {CellType.FREE: ".", CellType.HELL: "#", CellType.GOAL: "G", CellType.SOURCE: "S"}
        lines = []
        for row in range(self.grid.shape[0]):
            lines.append("".join(symbols[CellType(int(c))] for c in self.grid[row]))
        return "\n".join(lines)


def generate_layout(
    seed: int,
    size: int = 10,
    obstacle_fraction: float = 0.18,
    name: Optional[str] = None,
) -> GridWorldLayout:
    """Generate a solvable random maze layout from ``seed``.

    Obstacles are re-sampled until a path from source to goal exists, so every
    generated layout is solvable (the paper's mazes always have a reachable
    goal).
    """
    rng = as_rng(seed)
    if size < 4:
        raise ValueError(f"grid size must be at least 4, got {size}")
    if not 0.0 <= obstacle_fraction < 0.5:
        raise ValueError(f"obstacle_fraction must be in [0, 0.5), got {obstacle_fraction}")
    for _attempt in range(200):
        grid = np.full((size, size), int(CellType.FREE), dtype=np.int8)
        source = (int(rng.integers(0, size)), int(rng.integers(0, size // 3)))
        goal = (int(rng.integers(0, size)), int(rng.integers(2 * size // 3, size)))
        if source == goal:
            continue
        obstacle_count = int(round(obstacle_fraction * size * size))
        cells = [
            (r, c)
            for r in range(size)
            for c in range(size)
            if (r, c) != source and (r, c) != goal
        ]
        chosen = rng.choice(len(cells), size=obstacle_count, replace=False)
        for index in chosen:
            r, c = cells[int(index)]
            grid[r, c] = int(CellType.HELL)
        grid[source] = int(CellType.SOURCE)
        grid[goal] = int(CellType.GOAL)
        layout = GridWorldLayout(
            grid=grid, source=source, goal=goal, name=name or f"layout-{seed}"
        )
        if _path_exists(layout):
            return layout
    raise RuntimeError(f"failed to generate a solvable layout for seed {seed}")


def _path_exists(layout: GridWorldLayout) -> bool:
    """Breadth-first reachability from source to goal avoiding hell cells."""
    rows, cols = layout.shape
    visited = np.zeros((rows, cols), dtype=bool)
    frontier = [layout.source]
    visited[layout.source] = True
    while frontier:
        row, col = frontier.pop()
        if (row, col) == layout.goal:
            return True
        for d_row, d_col in ACTIONS:
            nxt = (row + d_row, col + d_col)
            if not (0 <= nxt[0] < rows and 0 <= nxt[1] < cols):
                continue
            if visited[nxt] or layout.cell(*nxt) == CellType.HELL:
                continue
            visited[nxt] = True
            frontier.append(nxt)
    return False


def default_gridworld_layouts(count: int = 12, size: int = 10) -> List[GridWorldLayout]:
    """The 12 canonical environment layouts used throughout the reproduction."""
    return [generate_layout(seed=1000 + index, size=size, name=f"env-{index}") for index in range(count)]


class GridWorldEnv(Environment):
    """Episodic grid navigation environment over one :class:`GridWorldLayout`.

    Two observation modes are supported:

    * ``"local"`` — the paper's 4-element neighbourhood encoding
      (|S| = 3^4 = 81).  A memoryless policy over this observation cannot
      locate an arbitrary goal cell, so it is kept for faithfulness studies.
    * ``"goal_direction"`` (default) — the neighbourhood encoding extended
      with the sign of the row/column offset to the goal (2 extra elements in
      {-1, 0, 1}, |S| = 3^6).  This keeps the policy a small quantized MLP —
      the property the fault analysis depends on — while making the
      navigation task solvable by a memoryless policy (see DESIGN.md §2).
    """

    action_count = len(ACTIONS)

    # Reward constants from the paper.
    REWARD_CRASH = -1.0
    REWARD_GOAL = 1.0
    REWARD_CLOSER = 0.1
    REWARD_FARTHER = -0.1

    OBSERVATION_MODES = ("local", "goal_direction")

    def __init__(
        self,
        layout: GridWorldLayout,
        max_steps: int = 100,
        observation_mode: str = "goal_direction",
    ) -> None:
        if max_steps <= 0:
            raise ValueError(f"max_steps must be positive, got {max_steps}")
        if observation_mode not in self.OBSERVATION_MODES:
            raise ValueError(
                f"observation_mode must be one of {self.OBSERVATION_MODES}, got {observation_mode!r}"
            )
        self.layout = layout
        self.max_steps = max_steps
        self.observation_mode = observation_mode
        self.observation_shape = (4,) if observation_mode == "local" else (6,)
        self._position: Tuple[int, int] = layout.source
        self._steps = 0
        self._done = True  # requires reset() before stepping

    @property
    def position(self) -> Tuple[int, int]:
        """The agent's current (row, column) cell."""
        return self._position

    def reset(self) -> np.ndarray:
        """Put the agent back on the source cell and start a new episode."""
        self._position = self.layout.source
        self._steps = 0
        self._done = False
        return self.observe()

    def observe(self, position: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """Observation around ``position``.

        The first four elements are the neighbourhood encoding ordered
        (up, down, right, left) to match the action encoding; values are -1
        for hell/out-of-bounds, +1 for goal, 0 for free/source.  In
        ``goal_direction`` mode two extra elements give the sign of the
        row/column offset from the agent to the goal.
        """
        row, col = position if position is not None else self._position
        size = 4 if self.observation_mode == "local" else 6
        observation = np.zeros(size, dtype=np.float64)
        for index, (d_row, d_col) in enumerate(ACTIONS):
            cell = self.layout.cell(row + d_row, col + d_col)
            if cell == CellType.HELL:
                observation[index] = -1.0
            elif cell == CellType.GOAL:
                observation[index] = 1.0
            else:
                observation[index] = 0.0
        if self.observation_mode == "goal_direction":
            goal_row, goal_col = self.layout.goal
            observation[4] = float(np.sign(goal_row - row))
            observation[5] = float(np.sign(goal_col - col))
        return observation

    def _distance_to_goal(self, position: Tuple[int, int]) -> int:
        return abs(position[0] - self.layout.goal[0]) + abs(position[1] - self.layout.goal[1])

    def step(self, action: int) -> StepResult:
        """Move one cell in the action's direction; reward per the cell type."""
        if self._done:
            raise RuntimeError("step called on a finished episode; call reset() first")
        action = self.validate_action(action)
        d_row, d_col = ACTIONS[action]
        previous = self._position
        candidate = (previous[0] + d_row, previous[1] + d_col)
        cell = self.layout.cell(*candidate)
        self._steps += 1
        info = {"position": candidate, "steps": self._steps, "action": ACTION_NAMES[action]}
        if cell == CellType.HELL:
            self._done = True
            info["outcome"] = "crash"
            return StepResult(self.observe(previous), self.REWARD_CRASH, True, info)
        self._position = candidate
        if cell == CellType.GOAL:
            self._done = True
            info["outcome"] = "goal"
            return StepResult(self.observe(candidate), self.REWARD_GOAL, True, info)
        if self._steps >= self.max_steps:
            self._done = True
            info["outcome"] = "timeout"
            reward = (
                self.REWARD_CLOSER
                if self._distance_to_goal(candidate) < self._distance_to_goal(previous)
                else self.REWARD_FARTHER
            )
            return StepResult(self.observe(candidate), reward, True, info)
        reward = (
            self.REWARD_CLOSER
            if self._distance_to_goal(candidate) < self._distance_to_goal(previous)
            else self.REWARD_FARTHER
        )
        info["outcome"] = "move"
        return StepResult(self.observe(candidate), reward, False, info)


#: Row/column deltas indexed by action, for vectorized candidate moves.
_ACTION_DELTAS = np.asarray(ACTIONS, dtype=np.int64)


class GridWorldVecEnv:
    """Lockstep batch of :class:`GridWorldEnv` lanes with masked termination.

    Grids are stacked with a one-cell HELL border so the serial
    "out-of-bounds is hell" rule becomes a plain array lookup; all arithmetic
    is integer or exact small constants, so per-lane results are trivially
    bitwise equal to :meth:`GridWorldEnv.step`.  Finished lanes freeze until
    :meth:`reset_batch` revives them (evaluation runs attempts back to back
    per lane this way).
    """

    action_count = len(ACTIONS)

    def __init__(self, envs: List["GridWorldEnv"]) -> None:
        envs = list(envs)
        if not envs:
            raise ValueError("GridWorldVecEnv needs at least one lane")
        for env in envs:
            if not isinstance(env, GridWorldEnv):
                raise TypeError(f"expected GridWorldEnv lanes, got {type(env).__name__}")
            if env.max_steps != envs[0].max_steps:
                raise ValueError("all lanes must share max_steps")
            if env.observation_mode != envs[0].observation_mode:
                raise ValueError("all lanes must share observation_mode")
            if env.layout.shape != envs[0].layout.shape:
                raise ValueError("all lanes must share the grid shape")
        self.envs = envs
        self.lane_count = len(envs)
        self.max_steps = envs[0].max_steps
        self.observation_mode = envs[0].observation_mode
        self.observation_shape = envs[0].observation_shape
        rows, cols = envs[0].layout.shape
        self._grids = np.full(
            (self.lane_count, rows + 2, cols + 2), int(CellType.HELL), dtype=np.int64
        )
        for lane, env in enumerate(envs):
            self._grids[lane, 1:-1, 1:-1] = np.asarray(env.layout.grid, dtype=np.int64)
        self._sources = np.array([env.layout.source for env in envs], dtype=np.int64)
        self._goals = np.array([env.layout.goal for env in envs], dtype=np.int64)
        self._positions = self._sources.copy()
        self._steps = np.zeros(self.lane_count, dtype=np.int64)
        self._done = np.ones(self.lane_count, dtype=bool)
        self._observations = np.zeros((self.lane_count,) + self.observation_shape)

    @property
    def done(self) -> np.ndarray:
        """Copy of the per-lane episode-finished flags."""
        return self._done.copy()

    @property
    def observations(self) -> np.ndarray:
        """The full per-lane observation stack (stale rows for done lanes)."""
        return self._observations

    @property
    def steps(self) -> np.ndarray:
        """Copy of the per-lane step counters."""
        return self._steps.copy()

    @property
    def positions(self) -> np.ndarray:
        """Copy of the per-lane (row, col) agent positions."""
        return self._positions.copy()

    def reset_batch(self, lanes: Optional[np.ndarray] = None) -> np.ndarray:
        """Reset all lanes (or just ``lanes``) and return the observation stack."""
        if lanes is None:
            lanes = np.arange(self.lane_count)
        else:
            lanes = np.asarray(lanes, dtype=np.int64)
        self._positions[lanes] = self._sources[lanes]
        self._steps[lanes] = 0
        self._done[lanes] = False
        self._observations[lanes] = self._observe_batch(lanes, self._positions[lanes])
        return self._observations

    def step_batch(self, actions: np.ndarray) -> VecStepResult:
        """Advance every unfinished lane by one step (finished lanes freeze)."""
        active = np.flatnonzero(~self._done)
        if active.size == 0:
            raise RuntimeError(
                "step_batch called with every lane finished; call reset_batch() first"
            )
        act = np.asarray(actions, dtype=np.int64)[active]
        if act.min() < 0 or act.max() >= self.action_count:
            raise ValueError(f"action outside the action space of size {self.action_count}")
        previous = self._positions[active]
        candidate = previous + _ACTION_DELTAS[act]
        cell = self._grids[active, candidate[:, 0] + 1, candidate[:, 1] + 1]
        steps = self._steps[active] + 1
        crash = cell == int(CellType.HELL)
        goal = cell == int(CellType.GOAL)
        timeout = (steps >= self.max_steps) & ~crash & ~goal

        goal_rows = self._goals[active, 0]
        goal_cols = self._goals[active, 1]
        closer = (
            np.abs(candidate[:, 0] - goal_rows) + np.abs(candidate[:, 1] - goal_cols)
        ) < (np.abs(previous[:, 0] - goal_rows) + np.abs(previous[:, 1] - goal_cols))
        reward = np.where(
            crash,
            GridWorldEnv.REWARD_CRASH,
            np.where(
                goal,
                GridWorldEnv.REWARD_GOAL,
                np.where(closer, GridWorldEnv.REWARD_CLOSER, GridWorldEnv.REWARD_FARTHER),
            ),
        )

        self._steps[active] = steps
        moved = ~crash
        self._positions[active[moved]] = candidate[moved]
        finished = crash | goal | timeout
        self._done[active] = finished
        # Crashed lanes observe from where they stood; everyone else from the
        # committed candidate cell — exactly the serial branch structure.
        observe_at = np.where(crash[:, None], previous, candidate)
        self._observations[active] = self._observe_batch(active, observe_at)

        rewards = np.zeros(self.lane_count)
        rewards[active] = reward
        stepped = np.zeros(self.lane_count, dtype=bool)
        stepped[active] = True
        outcomes: List[Optional[str]] = [None] * self.lane_count
        for row, lane in enumerate(active):
            if crash[row]:
                outcomes[lane] = "crash"
            elif goal[row]:
                outcomes[lane] = "goal"
            elif timeout[row]:
                outcomes[lane] = "timeout"
            else:
                outcomes[lane] = "move"
        return VecStepResult(
            observations=self._observations,
            rewards=rewards,
            done=self._done.copy(),
            stepped=stepped,
            outcomes=outcomes,
        )

    def _observe_batch(self, lanes: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Vectorized image of :meth:`GridWorldEnv.observe` over ``lanes``."""
        observation = np.zeros((positions.shape[0],) + self.observation_shape)
        rows = positions[:, 0]
        cols = positions[:, 1]
        for index, (d_row, d_col) in enumerate(ACTIONS):
            cell = self._grids[lanes, rows + d_row + 1, cols + d_col + 1]
            observation[:, index] = np.where(
                cell == int(CellType.HELL),
                -1.0,
                np.where(cell == int(CellType.GOAL), 1.0, 0.0),
            )
        if self.observation_mode == "goal_direction":
            observation[:, 4] = np.sign(self._goals[lanes, 0] - rows)
            observation[:, 5] = np.sign(self._goals[lanes, 1] - cols)
        return observation


def make_gridworld_suite(
    agent_count: int = 12,
    size: int = 10,
    max_steps: int = 100,
    observation_mode: str = "goal_direction",
) -> List[GridWorldEnv]:
    """One GridWorld environment per agent, using the canonical layouts."""
    layouts = default_gridworld_layouts(count=agent_count, size=size)
    return [
        GridWorldEnv(layout, max_steps=max_steps, observation_mode=observation_mode)
        for layout in layouts
    ]


def enumerate_observations(observation_size: int = 4) -> np.ndarray:
    """All 3^N possible observations (used for consensus-policy statistics).

    ``observation_size=4`` enumerates the paper's 81 local states;
    ``observation_size=6`` covers the goal-direction extension (729 states).
    """
    if observation_size <= 0:
        raise ValueError(f"observation_size must be positive, got {observation_size}")
    values = (-1.0, 0.0, 1.0)
    grids = np.meshgrid(*([np.asarray(values)] * observation_size), indexing="ij")
    return np.stack([grid.reshape(-1) for grid in grids], axis=1)
