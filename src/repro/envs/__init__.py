"""Navigation environments.

Two workloads mirror the paper's evaluation:

* :class:`GridWorldEnv` — the 10×10 grid-maze navigation task (12 environment
  layouts combined into 4 grids); the small-scale workload.
* :class:`DroneNavEnv` — a synthetic substitute for the PEDRA/AirSim drone
  platform: a 2.5D obstacle world observed through a ray-cast front camera
  with a depth-shaped reward and the safe-flight-distance metric; the
  large-scale workload.
"""

from repro.envs.base import Environment, StepResult
from repro.envs.gridworld import (
    CellType,
    GridWorldEnv,
    GridWorldLayout,
    default_gridworld_layouts,
    make_gridworld_suite,
)
from repro.envs.dronenav import (
    DroneNavConfig,
    DroneNavEnv,
    DroneWorld,
    default_drone_worlds,
    make_dronenav_suite,
)

__all__ = [
    "Environment",
    "StepResult",
    "CellType",
    "GridWorldEnv",
    "GridWorldLayout",
    "default_gridworld_layouts",
    "make_gridworld_suite",
    "DroneNavConfig",
    "DroneNavEnv",
    "DroneWorld",
    "default_drone_worlds",
    "make_dronenav_suite",
]
