"""Deterministic random-number management.

Fault-injection campaigns repeat the same experiment hundreds of times; every
repetition must be reproducible and independent.  ``RngFactory`` derives
independent :class:`numpy.random.Generator` streams from a single seed using
``numpy``'s ``SeedSequence`` spawning, so an experiment can hand each agent,
each environment and each fault injector its own stream without the streams
ever colliding.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

RngLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, ``None`` (fresh entropy), an existing generator
    (returned unchanged) or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing independent seeds from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngFactory:
    """Hierarchical source of named, reproducible random streams.

    Streams are derived from the root seed and a string key, so the same
    (seed, key) pair always yields the same stream regardless of the order in
    which streams are requested.  This keeps multi-agent experiments
    reproducible even when the number of agents or the set of instrumented
    components changes.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    def stream(self, *key: Union[str, int]) -> np.random.Generator:
        """Return a generator uniquely determined by the root seed and ``key``."""
        digest = self._key_entropy(key)
        sequence = np.random.SeedSequence(entropy=self._root.entropy, spawn_key=digest)
        return np.random.default_rng(sequence)

    def streams(self, prefix: Union[str, int], count: int) -> List[np.random.Generator]:
        """Return ``count`` generators keyed ``(prefix, 0..count-1)``."""
        return [self.stream(prefix, index) for index in range(count)]

    @staticmethod
    def _key_entropy(key: Sequence[Union[str, int]]) -> tuple:
        parts: List[int] = []
        for item in key:
            if isinstance(item, int):
                parts.append(item & 0xFFFFFFFF)
            else:
                # Stable 32-bit hash of the string (Python's hash() is salted).
                acc = 2166136261
                for ch in str(item).encode("utf8"):
                    acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
                parts.append(acc)
        return tuple(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RngFactory(seed={self._seed!r})"


def choice_without_replacement(
    rng: np.random.Generator, population: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct indices from ``range(population)``.

    Small convenience wrapper used by the fault injector when selecting which
    elements of a flattened tensor receive bit flips.
    """
    if count > population:
        raise ValueError(
            f"cannot sample {count} distinct indices from a population of {population}"
        )
    return rng.choice(population, size=count, replace=False)


def split_evenly(items: Iterable, parts: int) -> List[list]:
    """Partition ``items`` into ``parts`` contiguous, near-equal chunks."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    materialized = list(items)
    length = len(materialized)
    base, extra = divmod(length, parts)
    chunks: List[list] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(materialized[start : start + size])
        start += size
    return chunks
