"""Statistics helpers for fault-injection campaigns.

The paper repeats each GridWorld fault-injection campaign 1000 times to reach a
95 % confidence level within a 1 % error margin.  These helpers provide the
matching machinery: proportion and mean confidence intervals, running
statistics, and the sample-size calculation that justifies a repetition count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

# Two-sided z critical values for common confidence levels; scipy is available
# but a lookup keeps the hot path free of distribution-object construction.
_Z_TABLE = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.98: 2.3263, 0.99: 2.5758}


def z_critical(confidence: float) -> float:
    """Two-sided z critical value for ``confidence`` in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    from scipy.stats import norm

    return float(norm.ppf(0.5 + confidence / 2.0))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    samples: int

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} ± {self.half_width:.4f} "
            f"({self.confidence:.0%} CI, n={self.samples})"
        )


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation confidence interval of the sample mean."""
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute a confidence interval of zero samples")
    mean = float(values.mean())
    if values.size == 1:
        return ConfidenceInterval(mean, mean, mean, confidence, 1)
    stderr = float(values.std(ddof=1)) / math.sqrt(values.size)
    half = z_critical(confidence) * stderr
    return ConfidenceInterval(mean, mean - half, mean + half, confidence, int(values.size))


def proportion_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion (robust near 0 and 1)."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be within [0, {trials}], got {successes}")
    z = z_critical(confidence)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (
        z * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials)) / denom
    )
    return ConfidenceInterval(phat, max(0.0, center - margin), min(1.0, center + margin), confidence, trials)


def required_sample_size(
    error_margin: float, confidence: float = 0.95, proportion: float = 0.5
) -> int:
    """Samples needed for a proportion estimate within ``error_margin``.

    With the paper's parameters (95 % confidence, 1 % margin, worst-case
    p=0.5) this evaluates to 9604; the paper's 1000 repetitions correspond to a
    success-rate proportion already close to 1, where far fewer samples
    suffice — both cases are expressible through ``proportion``.
    """
    if not 0.0 < error_margin < 1.0:
        raise ValueError(f"error_margin must be in (0, 1), got {error_margin}")
    if not 0.0 <= proportion <= 1.0:
        raise ValueError(f"proportion must be in [0, 1], got {proportion}")
    z = z_critical(confidence)
    return int(math.ceil(z * z * proportion * (1.0 - proportion) / (error_margin**2)))


class RunningStat:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def confidence_interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        if self._count == 0:
            raise ValueError("no samples recorded")
        if self._count == 1:
            return ConfidenceInterval(self._mean, self._mean, self._mean, confidence, 1)
        stderr = self.std / math.sqrt(self._count)
        half = z_critical(confidence) * stderr
        return ConfidenceInterval(
            self._mean, self._mean - half, self._mean + half, confidence, self._count
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RunningStat(count={self._count}, mean={self.mean:.4f}, std={self.std:.4f})"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot compute geometric mean of zero values")
    if (array <= 0).any():
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(array).mean()))


def improvement_factor(baseline: float, improved: float) -> float:
    """Ratio ``improved / baseline`` used for the paper's "up to 3.3×" claims."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return improved / baseline
