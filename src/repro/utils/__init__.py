"""Shared utilities for the FRL-FI reproduction.

This package provides the small, dependency-free building blocks used by every
other subsystem: deterministic random-number management, bit-level helpers for
integer tensor representations, statistics for fault-injection campaigns, and
plain-text rendering of tables and heatmaps.
"""

from repro.utils.rng import RngFactory, as_rng, spawn_rngs
from repro.utils.bitops import (
    count_ones,
    flip_bits,
    one_bit_fraction,
    random_bit_positions,
    set_bits,
)
from repro.utils.stats import (
    ConfidenceInterval,
    RunningStat,
    mean_confidence_interval,
    proportion_confidence_interval,
    required_sample_size,
)
from repro.utils.tables import Table, render_heatmap, render_table
from repro.utils.serialization import (
    load_json,
    save_json,
    state_dict_to_lists,
    state_dict_from_lists,
)

__all__ = [
    "RngFactory",
    "as_rng",
    "spawn_rngs",
    "count_ones",
    "flip_bits",
    "one_bit_fraction",
    "random_bit_positions",
    "set_bits",
    "ConfidenceInterval",
    "RunningStat",
    "mean_confidence_interval",
    "proportion_confidence_interval",
    "required_sample_size",
    "Table",
    "render_heatmap",
    "render_table",
    "load_json",
    "save_json",
    "state_dict_to_lists",
    "state_dict_from_lists",
]
