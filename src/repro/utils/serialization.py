"""Serialization helpers for model state and experiment results.

Model state dicts map parameter names to numpy arrays; JSON is the only format
required by the reproduction (results tables, experiment manifests) so the
helpers here convert between numpy-backed state and JSON-compatible builtins.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, Path]


def state_dict_to_lists(state: Dict[str, np.ndarray]) -> Dict[str, dict]:
    """Convert a ``{name: ndarray}`` state dict into JSON-serializable form."""
    encoded = {}
    for name, array in state.items():
        array = np.asarray(array)
        encoded[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "data": array.reshape(-1).tolist(),
        }
    return encoded


def state_dict_from_lists(encoded: Dict[str, dict]) -> Dict[str, np.ndarray]:
    """Inverse of :func:`state_dict_to_lists`."""
    state = {}
    for name, payload in encoded.items():
        array = np.asarray(payload["data"], dtype=np.dtype(payload["dtype"]))
        state[name] = array.reshape(payload["shape"])
    return state


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj):  # noqa: D102 - stdlib override
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(path: PathLike, payload: object, indent: int = 2) -> Path:
    """Write ``payload`` as JSON to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf8") as handle:
        json.dump(payload, handle, indent=indent, cls=_NumpyJSONEncoder)
    return path


def load_json(path: PathLike) -> object:
    """Read JSON from ``path``."""
    with Path(path).open("r", encoding="utf8") as handle:
        return json.load(handle)
