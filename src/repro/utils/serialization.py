"""Serialization helpers for model state and experiment results.

Model state dicts map parameter names to numpy arrays; JSON is the only format
required by the reproduction (results tables, experiment manifests) so the
helpers here convert between numpy-backed state and JSON-compatible builtins.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, Path]


def state_dict_to_lists(state: Dict[str, np.ndarray]) -> Dict[str, dict]:
    """Convert a ``{name: ndarray}`` state dict into JSON-serializable form."""
    encoded = {}
    for name, array in state.items():
        array = np.asarray(array)
        encoded[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "data": array.reshape(-1).tolist(),
        }
    return encoded


def state_dict_from_lists(encoded: Dict[str, dict]) -> Dict[str, np.ndarray]:
    """Inverse of :func:`state_dict_to_lists`."""
    state = {}
    for name, payload in encoded.items():
        array = np.asarray(payload["data"], dtype=np.dtype(payload["dtype"]))
        state[name] = array.reshape(payload["shape"])
    return state


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj):  # noqa: D102 - stdlib override
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(path: PathLike, payload: object, indent: int = 2) -> Path:
    """Write ``payload`` as JSON to ``path`` atomically and return the path.

    The payload is written to a same-directory temporary file and moved into
    place with :func:`os.replace`, so concurrent readers (e.g. pooled campaign
    workers sharing a policy cache) never observe a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # O_CREAT with mode 0o666 lets the kernel apply the process umask
    # atomically, so the final file gets ordinary (usually 0644) permissions
    # without mutating global state the way an os.umask() round trip would.
    tmp_name = f"{path}.{os.getpid()}.{id(payload):x}.tmp"
    fd = os.open(tmp_name, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
    try:
        with os.fdopen(fd, "w", encoding="utf8") as handle:
            json.dump(payload, handle, indent=indent, cls=NumpyJSONEncoder)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def load_json(path: PathLike) -> object:
    """Read JSON from ``path``."""
    with Path(path).open("r", encoding="utf8") as handle:
        return json.load(handle)
