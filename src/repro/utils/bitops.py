"""Bit-level helpers on integer numpy arrays.

The fault models in :mod:`repro.faults` operate on the *integer code words* of
quantized tensors (int8 affine quantization or Q(sign, int, frac) fixed point).
These helpers implement the low-level bit manipulation: flipping, setting and
counting bits across arbitrarily shaped arrays, always on an explicit unsigned
view so that sign bits behave like any other storage bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_UNSIGNED_FOR_WIDTH = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}
_SIGNED_FOR_WIDTH = {8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}


def unsigned_dtype_for(bit_width: int) -> np.dtype:
    """Smallest unsigned dtype that can store ``bit_width`` bits."""
    for width in (8, 16, 32, 64):
        if bit_width <= width:
            return np.dtype(_UNSIGNED_FOR_WIDTH[width])
    raise ValueError(f"bit widths above 64 are not supported, got {bit_width}")


def signed_dtype_for(bit_width: int) -> np.dtype:
    """Smallest signed dtype that can store ``bit_width`` bits."""
    for width in (8, 16, 32, 64):
        if bit_width <= width:
            return np.dtype(_SIGNED_FOR_WIDTH[width])
    raise ValueError(f"bit widths above 64 are not supported, got {bit_width}")


def _validate_positions(bit_positions: np.ndarray, bit_width: int) -> np.ndarray:
    positions = np.asarray(bit_positions, dtype=np.int64)
    if positions.size and (positions.min() < 0 or positions.max() >= bit_width):
        raise ValueError(
            f"bit positions must lie in [0, {bit_width}), got range "
            f"[{positions.min()}, {positions.max()}]"
        )
    return positions


def _checked_events(
    codes: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    bit_width: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate one batch of (element, bit) events against ``codes``.

    Returns the flattened unsigned working copy of ``codes`` plus the
    validated element indices and per-event single-bit masks.
    """
    positions = _validate_positions(bit_positions, bit_width)
    elements = np.asarray(element_indices, dtype=np.int64)
    if elements.shape != positions.shape:
        raise ValueError("element_indices and bit_positions must have the same shape")
    unsigned = unsigned_dtype_for(bit_width)
    flat = np.ascontiguousarray(codes).reshape(-1).astype(unsigned, copy=True)
    if elements.size and (elements.min() < 0 or elements.max() >= flat.size):
        raise IndexError("element index out of range for the given tensor")
    masks = (np.ones_like(positions, dtype=np.uint64) << positions.astype(np.uint64)).astype(
        unsigned
    )
    return flat, elements, masks


def flip_bits(
    codes: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    bit_width: int,
) -> np.ndarray:
    """Flip ``bit_positions`` of the flattened ``codes`` at ``element_indices``.

    ``codes`` is an integer array of code words; the function returns a new
    array of the same dtype and shape.  Multiple flips may target the same
    element (and even the same bit, in which case they cancel out, matching
    physical transient-fault behaviour of an even number of upsets).
    """
    flat, elements, masks = _checked_events(codes, element_indices, bit_positions, bit_width)
    if elements.size:
        # One batched XOR-accumulate over the whole event set; repeated
        # (element, bit) events cancel pairwise, as in hardware.
        np.bitwise_xor.at(flat, elements, masks)
    return flat.reshape(np.asarray(codes).shape).astype(codes.dtype, copy=False)


def set_bits(
    codes: np.ndarray,
    element_indices: np.ndarray,
    bit_positions: np.ndarray,
    bit_width: int,
    value: int,
) -> np.ndarray:
    """Force bits to ``value`` (0 or 1) — the stuck-at fault primitive."""
    if value not in (0, 1):
        raise ValueError(f"stuck-at value must be 0 or 1, got {value}")
    flat, elements, masks = _checked_events(codes, element_indices, bit_positions, bit_width)
    if elements.size:
        if value == 1:
            np.bitwise_or.at(flat, elements, masks)
        else:
            np.bitwise_and.at(flat, elements, (~masks).astype(flat.dtype))
    return flat.reshape(np.asarray(codes).shape).astype(codes.dtype, copy=False)


def count_ones(codes: np.ndarray, bit_width: int) -> int:
    """Total number of 1 bits in the low ``bit_width`` bits of every element."""
    unsigned_dtype_for(bit_width)  # reject widths above 64
    flat = np.ascontiguousarray(codes).reshape(-1).astype(np.uint64)
    mask = np.uint64((1 << bit_width) - 1) if bit_width < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    flat = flat & mask
    if flat.size == 0:
        return 0
    # Hardware popcount over the masked code words in one vectorized pass.
    return int(np.bitwise_count(flat).sum(dtype=np.int64))


def one_bit_fraction(codes: np.ndarray, bit_width: int) -> float:
    """Fraction of storage bits that are 1 — Fig. 3d's bit breakdown."""
    flat = np.ascontiguousarray(codes).reshape(-1)
    total_bits = flat.size * bit_width
    if total_bits == 0:
        return 0.0
    return count_ones(flat, bit_width) / total_bits


def random_bit_positions(
    rng: np.random.Generator, count: int, bit_width: int
) -> np.ndarray:
    """Uniformly random bit positions in ``[0, bit_width)``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return rng.integers(0, bit_width, size=count, dtype=np.int64)


def bit_planes(codes: np.ndarray, bit_width: int) -> np.ndarray:
    """Return an array of shape ``(bit_width, *codes.shape)`` with 0/1 planes."""
    flat = np.ascontiguousarray(codes).astype(np.uint64)
    positions = np.arange(bit_width, dtype=np.uint64).reshape((bit_width,) + (1,) * flat.ndim)
    return ((flat[np.newaxis, ...] >> positions) & np.uint64(1)).astype(np.uint8)


def faults_for_ber(total_bits: int, bit_error_rate: float, rng: np.random.Generator) -> int:
    """Number of bit faults for a given BER over ``total_bits`` storage bits.

    The paper reports fault counts as ``round(BER * bits)``; we sample a
    binomial to model the stochastic arrival of upsets and fall back to the
    deterministic rounding when the expected count is large (>30) where the
    binomial is sharply concentrated anyway.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError(f"bit_error_rate must be within [0, 1], got {bit_error_rate}")
    if total_bits < 0:
        raise ValueError(f"total_bits must be non-negative, got {total_bits}")
    expected = total_bits * bit_error_rate
    if expected == 0:
        return 0
    if expected > 30:
        return int(round(expected))
    return int(rng.binomial(total_bits, bit_error_rate))


def pack_unsigned(values: np.ndarray, bit_width: int) -> Tuple[np.ndarray, np.dtype]:
    """Mask ``values`` to ``bit_width`` bits and return them in the smallest dtype."""
    dtype = unsigned_dtype_for(bit_width)
    mask = (1 << bit_width) - 1
    return (np.asarray(values).astype(np.uint64) & np.uint64(mask)).astype(dtype), dtype
