"""Plain-text rendering of tables and heatmaps.

The paper's evaluation is presented as heatmaps (success rate / flight distance
over BER × injection episode) and small tables.  The benchmark harness prints
the same rows and series as text so the reproduction can be compared with the
paper without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Number = Union[int, float]


@dataclass
class Table:
    """A simple column-aligned table with an optional title."""

    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    title: Optional[str] = None

    def add_row(self, row: Sequence[object]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def to_dicts(self) -> List[dict]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def render(self, float_format: str = "{:.2f}") -> str:
        return render_table(self.headers, self.rows, title=self.title, float_format=float_format)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    formatted_rows = [[_format_cell(cell, float_format) for cell in row] for row in rows]
    header_cells = [str(header) for header in headers]
    widths = [len(cell) for cell in header_cells]
    for row in formatted_rows:
        if len(row) != len(header_cells):
            raise ValueError("all rows must have the same number of cells as the header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(cell.ljust(width) for cell, width in zip(header_cells, widths)))
    lines.append(separator)
    for row in formatted_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_heatmap(
    row_labels: Sequence[object],
    column_labels: Sequence[object],
    values: Sequence[Sequence[Number]],
    title: Optional[str] = None,
    value_format: str = "{:>6.1f}",
    row_axis: str = "rows",
    column_axis: str = "cols",
) -> str:
    """Render a matrix of values with labelled rows and columns.

    Mirrors the layout of the paper's Fig. 3/5/7 heatmaps: rows are bit-error
    rates, columns are fault-injection episodes and cells are the measured
    metric.
    """
    values = [list(row) for row in values]
    if len(values) != len(row_labels):
        raise ValueError("number of value rows must match number of row labels")
    for row in values:
        if len(row) != len(column_labels):
            raise ValueError("every value row must match the number of column labels")
    label_width = max([len(str(label)) for label in row_labels] + [len(row_axis)])
    cell_width = max(
        [len(value_format.format(float(v))) for row in values for v in row]
        + [len(str(label)) for label in column_labels]
        + [1]
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * label_width + " | " + " ".join(
        str(label).rjust(cell_width) for label in column_labels
    )
    lines.append(f"{row_axis} \\ {column_axis}".ljust(label_width) + " |")
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(row_labels, values):
        cells = " ".join(value_format.format(float(v)).rjust(cell_width) for v in row)
        lines.append(str(label).ljust(label_width) + " | " + cells)
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render one or more named series against a shared x-axis as a table."""
    headers = [x_label] + list(series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for name in series:
            row.append(series[name][index])
        rows.append(row)
    return render_table(headers, rows, title=title, float_format=float_format)
