"""Policy network constructors and state-dict helpers.

These factories build the two policy topologies evaluated in the paper: the
small MLP Q-network used for GridWorld (4-dimensional one-step observation,
4 actions) and the perception CNN used for drone navigation (front-camera
image, 25-action probabilistic head).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.activations import ReLU, Softmax
from repro.nn.conv import Conv2d, MaxPool2d
from repro.nn.layers import Flatten, Linear
from repro.nn.module import Module, Sequential
from repro.utils.rng import as_rng, spawn_rngs


def build_gridworld_q_network(
    observation_size: int = 4,
    action_count: int = 4,
    hidden_sizes: Sequence[int] = (32, 32),
    rng=None,
) -> Sequential:
    """MLP Q-network for the GridWorld navigation task.

    The observation is the 4-cell neighbourhood encoding (values in
    {-1, 0, 1}) and the output is one Q-value per action in
    {up, down, right, left}.
    """
    rng = as_rng(rng)
    layer_rngs = spawn_rngs(rng, len(hidden_sizes) + 1)
    layers = []
    previous = observation_size
    for index, hidden in enumerate(hidden_sizes):
        layers.append(Linear(previous, hidden, rng=layer_rngs[index]))
        layers.append(ReLU())
        previous = hidden
    layers.append(Linear(previous, action_count, rng=layer_rngs[-1]))
    return Sequential(*layers)


def build_drone_policy_network(
    input_shape: Sequence[int] = (3, 18, 32),
    action_count: int = 25,
    conv_channels: Sequence[int] = (8, 16, 16),
    fc_hidden: int = 64,
    rng=None,
) -> Sequential:
    """CNN policy for drone navigation (3 Conv layers + 2 FC layers).

    The paper's policy takes a 320x180 RGB frame; this reproduction uses a
    downsampled frame (default 32x18) from the synthetic ray-cast camera so the
    full federated fault-injection campaigns run on CPU.  The topology —
    three convolutions followed by two fully connected layers ending in a
    25-way softmax — matches the paper.
    """
    channels, height, width = (int(v) for v in input_shape)
    rng = as_rng(rng)
    conv_rngs = spawn_rngs(rng, len(conv_channels) + 2)
    layers = []
    previous_channels = channels
    current_h, current_w = height, width
    for index, out_channels in enumerate(conv_channels):
        layers.append(
            Conv2d(previous_channels, out_channels, kernel_size=3, stride=1, padding=1,
                   rng=conv_rngs[index])
        )
        layers.append(ReLU())
        layers.append(MaxPool2d(2))
        previous_channels = out_channels
        current_h //= 2
        current_w //= 2
        if current_h == 0 or current_w == 0:
            raise ValueError(
                f"input shape {tuple(input_shape)} is too small for {len(conv_channels)} "
                "conv+pool stages"
            )
    layers.append(Flatten())
    flat_features = previous_channels * current_h * current_w
    layers.append(Linear(flat_features, fc_hidden, rng=conv_rngs[-2]))
    layers.append(ReLU())
    layers.append(Linear(fc_hidden, action_count, rng=conv_rngs[-1]))
    layers.append(Softmax())
    return Sequential(*layers)


def state_dict(module: Module) -> Dict[str, np.ndarray]:
    """Copy of every named parameter value in ``module``."""
    return module.state_dict()


def load_state_dict(module: Module, state: Dict[str, np.ndarray]) -> None:
    """Load ``state`` into ``module`` (strict name matching)."""
    module.load_state_dict(state)


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Deep copy of a state dict."""
    return {name: np.array(value, copy=True) for name, value in state.items()}


def count_parameters(module: Module) -> int:
    """Total number of scalar parameters in ``module``."""
    return sum(parameter.size for parameter in module.parameters())


def flatten_state_dict(state: Dict[str, np.ndarray]) -> np.ndarray:
    """Concatenate every parameter into a single 1D vector (fixed name order)."""
    return np.concatenate([np.asarray(state[name]).reshape(-1) for name in sorted(state)])


def unflatten_state_dict(
    vector: np.ndarray, reference: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Inverse of :func:`flatten_state_dict` given a reference of shapes."""
    vector = np.asarray(vector, dtype=np.float64)
    result: Dict[str, np.ndarray] = {}
    cursor = 0
    for name in sorted(reference):
        shape = np.asarray(reference[name]).shape
        size = int(np.prod(shape)) if shape else 1
        result[name] = vector[cursor : cursor + size].reshape(shape)
        cursor += size
    if cursor != vector.size:
        raise ValueError(
            f"vector of size {vector.size} does not match reference with {cursor} elements"
        )
    return result
