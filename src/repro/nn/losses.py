"""Loss functions and probability helpers."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


class MSELoss:
    """Mean squared error over the batch."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
            )
        diff = predictions - targets
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad


class HuberLoss:
    """Huber (smooth L1) loss, used for stable Q-learning targets."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
            )
        diff = predictions - targets
        abs_diff = np.abs(diff)
        quadratic = abs_diff <= self.delta
        loss_values = np.where(
            quadratic, 0.5 * diff**2, self.delta * (abs_diff - 0.5 * self.delta)
        )
        loss = float(loss_values.mean())
        grad = np.where(quadratic, diff, self.delta * np.sign(diff)) / diff.size
        return loss, grad


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``__call__`` takes raw logits of shape ``(batch, classes)`` and integer
    labels of shape ``(batch,)``; it returns the mean loss and the gradient
    with respect to the logits.
    """

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2D (batch, classes), got shape {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError("labels must be a 1D array matching the batch size")
        if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
            raise ValueError("label value outside the number of classes")
        log_probs = log_softmax(logits, axis=1)
        batch = logits.shape[0]
        loss = float(-log_probs[np.arange(batch), labels].mean())
        grad = softmax(logits, axis=1)
        grad[np.arange(batch), labels] -= 1.0
        grad /= batch
        return loss, grad
