"""Module base class and sequential container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """Base class for all layers.

    Sub-classes implement :meth:`forward` and :meth:`backward`.  ``backward``
    receives the gradient of the loss with respect to the layer output and
    must return the gradient with respect to the layer input, accumulating
    parameter gradients along the way.
    """

    def __init__(self) -> None:
        self.training = True

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module (default: none)."""
        return []

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for index, parameter in enumerate(self.parameters()):
            name = parameter.name or f"param{index}"
            yield (f"{prefix}{name}", parameter)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self.training = True
        return self

    def eval(self) -> "Module":
        self.training = False
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.value.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            parameter.copy_(state[name])


class Sequential(Module):
    """Feed-forward chain of modules with automatic backpropagation."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules: List[Module] = list(modules)

    def append(self, module: Module) -> None:
        self.modules.append(module)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for module in self.modules:
            output = module.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        parameters: List[Parameter] = []
        for module in self.modules:
            parameters.extend(module.parameters())
        return parameters

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for index, module in enumerate(self.modules):
            yield from module.named_parameters(prefix=f"{prefix}{index}.")

    def train(self) -> "Sequential":
        super().train()
        for module in self.modules:
            module.train()
        return self

    def eval(self) -> "Sequential":
        super().eval()
        for module in self.modules:
            module.eval()
        return self

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)
