"""Lane-stacked forward passes over many same-topology policy networks.

The vectorized campaign path advances N independent rollouts ("lanes") in
lockstep; every lane owns its own policy weights, so a plain batched forward
through one network is not enough.  :class:`StackedPolicy` stacks the weights
of N networks along a leading lane axis and evaluates all lanes in single
numpy passes while preserving **bitwise identity** with calling each
network's own ``forward`` on its lane's observation.

The identity argument, layer by layer (each lane's row goes through exactly
the serial op sequence):

* ``Conv2d`` — ``im2col`` unfolds patches independently per batch item (pure
  strided slicing), so the stacked column block of lane *i* equals the serial
  columns.  The per-lane GEMM ``columns @ W.T`` then runs as a 2-D matrix
  product on views of the stacked operands — the *same* BLAS call on the
  *same* operand values and strides as the serial layer.  (A single batched
  ``np.matmul`` is NOT used: numpy's 3-D matmul may copy operands and pick a
  different GEMM kernel than the 2-D transposed-operand path, changing the
  floating-point reduction order for some shapes.)
* ``Linear`` — same per-lane 2-D GEMM on ``(1, F) @ (F, H)`` row views.
  Lanes are never folded into the GEMM ``M`` dimension, because that changes
  the BLAS kernel's blocking (and therefore the reduction order).
* ``ReLU`` / ``Softmax`` / ``MaxPool2d`` — elementwise or row-wise along the
  last contiguous axis, where numpy's reductions are shape-independent.

The speedup therefore comes from amortizing the python-level layer dispatch,
``im2col`` slicing, pooling and activation work across lanes — not from wider
GEMMs, which is exactly what makes byte-identity achievable.

``refresh()`` restacks the weights after any in-place mutation of the
underlying networks (policy-gradient steps, federated averaging, fault
injection); the stacked copies are never written back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.activations import ReLU, Softmax
from repro.nn.conv import Conv2d, MaxPool2d, _output_size, im2col
from repro.nn.layers import Flatten, Linear
from repro.nn.module import Module, Sequential

#: Layer types :class:`StackedPolicy` knows how to evaluate lane-stacked.
SUPPORTED_LAYERS = (Conv2d, MaxPool2d, ReLU, Flatten, Linear, Softmax)


def _layer_signature(module: Module) -> Tuple:
    """Hashable shape/hyperparameter summary used to check lane compatibility."""
    if isinstance(module, Conv2d):
        return (
            "conv",
            module.in_channels,
            module.out_channels,
            module.kernel_size,
            module.stride,
            module.padding,
            module.bias is not None,
        )
    if isinstance(module, MaxPool2d):
        return ("pool", module.kernel_size, module.stride)
    if isinstance(module, Linear):
        return ("linear", module.in_features, module.out_features, module.bias is not None)
    if isinstance(module, ReLU):
        return ("relu",)
    if isinstance(module, Flatten):
        return ("flatten",)
    if isinstance(module, Softmax):
        return ("softmax",)
    raise TypeError(
        f"unsupported layer for stacked forward: {type(module).__name__}; "
        f"supported: {[cls.__name__ for cls in SUPPORTED_LAYERS]}"
    )


class StackedPolicy:
    """Evaluate N same-topology :class:`Sequential` networks in lockstep.

    ``forward(observations, lanes)`` maps a ``(k, *obs_shape)`` stack of
    observations for lanes ``lanes`` (defaults to all lanes, in order) to the
    ``(k, out)`` stack of network outputs, where row ``j`` is bitwise equal to
    ``networks[lanes[j]].forward(observations[j][None])[0]``.
    """

    def __init__(self, networks: Sequence[Sequential]) -> None:
        self.networks: List[Sequential] = list(networks)
        if not self.networks:
            raise ValueError("StackedPolicy needs at least one network")
        first = self.networks[0]
        if not isinstance(first, Sequential):
            raise TypeError("StackedPolicy stacks Sequential networks")
        reference = [_layer_signature(module) for module in first.modules]
        for network in self.networks[1:]:
            if not isinstance(network, Sequential):
                raise TypeError("StackedPolicy stacks Sequential networks")
            signature = [_layer_signature(module) for module in network.modules]
            if signature != reference:
                raise ValueError(
                    "all stacked networks must share one topology; "
                    f"got {signature} vs {reference}"
                )
        self._weight_stacks: List[Optional[np.ndarray]] = []
        self._bias_stacks: List[Optional[np.ndarray]] = []
        self.refresh()

    @property
    def lane_count(self) -> int:
        """Number of stacked lanes (networks)."""
        return len(self.networks)

    def refresh(self) -> None:
        """Restack weights from the underlying networks.

        Call after any in-place weight mutation (policy-gradient step,
        ``load_state_dict``, fault injection) and before the next ``forward``.
        """
        weight_stacks: List[Optional[np.ndarray]] = []
        bias_stacks: List[Optional[np.ndarray]] = []
        for modules in zip(*(network.modules for network in self.networks)):
            head = modules[0]
            if isinstance(head, Conv2d):
                weight_stacks.append(
                    np.stack(
                        [m.weight.value.reshape(m.out_channels, -1) for m in modules]
                    )
                )
                bias_stacks.append(
                    np.stack([m.bias.value for m in modules])
                    if head.bias is not None
                    else None
                )
            elif isinstance(head, Linear):
                weight_stacks.append(np.stack([m.weight.value for m in modules]))
                bias_stacks.append(
                    np.stack([m.bias.value for m in modules])
                    if head.bias is not None
                    else None
                )
            else:
                weight_stacks.append(None)
                bias_stacks.append(None)
        self._weight_stacks = weight_stacks
        self._bias_stacks = bias_stacks

    def forward(
        self, observations: np.ndarray, lanes: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Forward a stack of per-lane observations through the lane weights.

        ``observations`` has shape ``(k, *obs_shape)``; ``lanes`` selects which
        stacked network evaluates each row (all lanes, in order, when omitted).
        """
        x = np.asarray(observations, dtype=np.float64)
        if lanes is None:
            if x.shape[0] != self.lane_count:
                raise ValueError(
                    f"expected {self.lane_count} observation rows, got {x.shape[0]}"
                )
            gather = slice(None)
        else:
            lanes = np.asarray(lanes, dtype=np.int64)
            if lanes.shape != (x.shape[0],):
                raise ValueError("lanes must align with the observation rows")
            gather = lanes
        for index, module in enumerate(self.networks[0].modules):
            weight = self._weight_stacks[index]
            bias = self._bias_stacks[index]
            if weight is not None:
                weight = weight[gather]
            if bias is not None:
                bias = bias[gather]
            if isinstance(module, Conv2d):
                x = self._conv_forward(module, x, weight, bias)
            elif isinstance(module, Linear):
                out = np.empty((x.shape[0], module.out_features))
                for row in range(x.shape[0]):
                    # Exact serial GEMM: (1, F) @ (F, H) on this lane's weights.
                    out[row] = (x[row : row + 1] @ weight[row])[0]
                if bias is not None:
                    out = out + bias
                x = out
            elif isinstance(module, MaxPool2d):
                x = self._pool_forward(module, x)
            elif isinstance(module, ReLU):
                x = x * (x > 0)
            elif isinstance(module, Flatten):
                x = x.reshape(x.shape[0], -1)
            elif isinstance(module, Softmax):
                shifted = x - x.max(axis=1, keepdims=True)
                exps = np.exp(shifted)
                x = exps / exps.sum(axis=1, keepdims=True)
            else:  # pragma: no cover - construction already rejects these
                raise TypeError(f"unsupported layer {type(module).__name__}")
        return x

    @staticmethod
    def _conv_forward(
        module: Conv2d, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> np.ndarray:
        """Per-lane conv: stacked im2col + batched matmul, serial op order."""
        lanes, channels, height, width = x.shape
        kernel = module.kernel_size
        stride = module.stride
        padding = module.padding
        out_h = _output_size(height, kernel, stride, padding)
        out_w = _output_size(width, kernel, stride, padding)
        padded = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
        # One vectorized im2col fill for all lanes (the expensive python
        # slicing loop runs once, not once per lane).
        columns = np.empty(
            (lanes, channels, kernel, kernel, out_h, out_w), dtype=x.dtype
        )
        for row in range(kernel):
            row_end = row + stride * out_h
            for col in range(kernel):
                col_end = col + stride * out_w
                columns[:, :, row, col, :, :] = padded[
                    :, :, row:row_end:stride, col:col_end:stride
                ]
        features = channels * kernel * kernel
        out = np.empty((lanes, out_h * out_w, module.out_channels))
        for lane in range(lanes):
            # ``columns[lane : lane + 1]`` has the same strides as the serial
            # batch-of-one im2col buffer, so this transpose/reshape yields a
            # byte-identical *memory layout*, not just identical values.  The
            # layout matters: BLAS picks its GEMM path (and therefore the
            # floating-point reduction order) from the operand strides.
            cols = columns[lane : lane + 1].transpose(0, 4, 5, 1, 2, 3).reshape(
                out_h * out_w, features
            )
            product = cols @ weight[lane].T
            if bias is not None:
                product = product + bias[lane]
            out[lane] = product
        return out.reshape(lanes, out_h, out_w, module.out_channels).transpose(0, 3, 1, 2)

    @staticmethod
    def _pool_forward(module: MaxPool2d, x: np.ndarray) -> np.ndarray:
        """Max pooling over the lane stack, mirroring the serial im2col path."""
        lanes, channels, height, width = x.shape
        out_h = _output_size(height, module.kernel_size, module.stride, 0)
        out_w = _output_size(width, module.kernel_size, module.stride, 0)
        columns, _ = im2col(
            x.reshape(lanes * channels, 1, height, width),
            module.kernel_size,
            module.kernel_size,
            module.stride,
            0,
        )
        return columns.max(axis=1).reshape(lanes, channels, out_h, out_w)


__all__ = ["StackedPolicy", "SUPPORTED_LAYERS"]
