"""Trainable parameter container."""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A named, trainable tensor with an accumulated gradient.

    The fault injector reads and rewrites ``value`` in place; optimizers
    consume ``grad`` and call :meth:`zero_grad` between steps.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.value.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name!r} of shape {self.value.shape}"
            )
        self.grad += grad

    def copy_(self, value: np.ndarray) -> None:
        """Overwrite the parameter value in place, keeping shape and dtype."""
        value = np.asarray(value, dtype=np.float64)
        if value.shape != self.value.shape:
            raise ValueError(
                f"cannot copy value of shape {value.shape} into parameter "
                f"{self.name!r} of shape {self.value.shape}"
            )
        np.copyto(self.value, value)

    def clone(self, name: Optional[str] = None) -> "Parameter":
        cloned = Parameter(self.value.copy(), name=name or self.name)
        cloned.grad = self.grad.copy()
        return cloned

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
