"""Convolution and pooling layers (im2col implementation).

The drone navigation policy in the paper uses three convolution layers and two
fully connected layers over front-camera images.  These layers implement the
forward and backward passes with an im2col/col2im formulation, which keeps the
hot loops inside numpy matrix products.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.init import he_uniform, zeros_init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import as_rng


def _output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size for input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col(
    inputs: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold image patches into columns.

    ``inputs`` has shape ``(batch, channels, height, width)``.  Returns an
    array of shape ``(batch * out_h * out_w, channels * kernel_h * kernel_w)``
    plus the output spatial size.
    """
    batch, channels, height, width = inputs.shape
    out_h = _output_size(height, kernel_h, stride, padding)
    out_w = _output_size(width, kernel_w, stride, padding)
    padded = np.pad(
        inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    columns = np.empty((batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=inputs.dtype)
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            columns[:, :, row, col, :, :] = padded[:, :, row:row_end:stride, col:col_end:stride]
    columns = columns.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w
    )
    return columns, (out_h, out_w)


def col2im(
    columns: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back into an image, summing overlapping contributions."""
    batch, channels, height, width = input_shape
    out_h = _output_size(height, kernel_h, stride, padding)
    out_w = _output_size(width, kernel_w, stride, padding)
    columns = columns.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            padded[:, :, row:row_end:stride, col:col_end:stride] += columns[:, :, row, col, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


class Conv2d(Module):
    """2D convolution over ``(batch, channels, height, width)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("channels and kernel_size must be positive")
        if stride <= 0 or padding < 0:
            raise ValueError("stride must be positive and padding non-negative")
        rng = as_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        weight_shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(he_uniform(weight_shape, rng=rng), name="weight")
        self.bias: Optional[Parameter] = (
            Parameter(zeros_init((out_channels,)), name="bias") if bias else None
        )
        self._cached_columns: Optional[np.ndarray] = None
        self._cached_input_shape: Optional[Tuple[int, int, int, int]] = None
        self._cached_output_size: Optional[Tuple[int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError(f"Conv2d expects 4D input, got shape {inputs.shape}")
        if inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {inputs.shape[1]}"
            )
        columns, (out_h, out_w) = im2col(
            inputs, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        self._cached_columns = columns
        self._cached_input_shape = inputs.shape
        self._cached_output_size = (out_h, out_w)
        weight_matrix = self.weight.value.reshape(self.out_channels, -1)
        output = columns @ weight_matrix.T
        if self.bias is not None:
            output = output + self.bias.value
        batch = inputs.shape[0]
        return output.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_columns is None or self._cached_input_shape is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch = self._cached_input_shape[0]
        out_h, out_w = self._cached_output_size
        grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(
            batch * out_h * out_w, self.out_channels
        )
        weight_matrix = self.weight.value.reshape(self.out_channels, -1)
        grad_weight = grad_matrix.T @ self._cached_columns
        self.weight.accumulate_grad(grad_weight.reshape(self.weight.value.shape))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_matrix.sum(axis=0))
        grad_columns = grad_matrix @ weight_matrix
        return col2im(
            grad_columns,
            self._cached_input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def parameters(self) -> List[Parameter]:
        if self.bias is None:
            return [self.weight]
        return [self.weight, self.bias]


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cached_input_shape: Optional[Tuple[int, int, int, int]] = None
        self._cached_argmax: Optional[np.ndarray] = None
        self._cached_output_size: Optional[Tuple[int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError(f"MaxPool2d expects 4D input, got shape {inputs.shape}")
        batch, channels, height, width = inputs.shape
        out_h = _output_size(height, self.kernel_size, self.stride, 0)
        out_w = _output_size(width, self.kernel_size, self.stride, 0)
        columns, _ = im2col(
            inputs.reshape(batch * channels, 1, height, width),
            self.kernel_size,
            self.kernel_size,
            self.stride,
            0,
        )
        self._cached_input_shape = inputs.shape
        self._cached_output_size = (out_h, out_w)
        self._cached_argmax = columns.argmax(axis=1)
        output = columns.max(axis=1)
        return output.reshape(batch, channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_argmax is None or self._cached_input_shape is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, channels, height, width = self._cached_input_shape
        out_h, out_w = self._cached_output_size
        window = self.kernel_size * self.kernel_size
        grad_columns = np.zeros((batch * channels * out_h * out_w, window))
        flat_grad = grad_output.reshape(-1)
        grad_columns[np.arange(grad_columns.shape[0]), self._cached_argmax] = flat_grad
        grad_input = col2im(
            grad_columns,
            (batch * channels, 1, height, width),
            self.kernel_size,
            self.kernel_size,
            self.stride,
            0,
        )
        return grad_input.reshape(batch, channels, height, width)
