"""Activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._cached_mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._cached_mask = inputs > 0
        return inputs * self._cached_mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_mask is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * self._cached_mask


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._cached_output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._cached_output = np.tanh(np.asarray(inputs, dtype=np.float64))
        return self._cached_output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_output is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._cached_output**2)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._cached_output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        # Numerically stable piecewise formulation.
        output = np.empty_like(inputs)
        positive = inputs >= 0
        output[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        output[~positive] = exp_x / (1.0 + exp_x)
        self._cached_output = output
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_output is None:
            raise RuntimeError("backward called before forward")
        sig = self._cached_output
        return np.asarray(grad_output, dtype=np.float64) * sig * (1.0 - sig)


class Softmax(Module):
    """Row-wise softmax layer.

    Used as the output head of the drone policy network, which produces a
    probability distribution over the 25-element action space.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cached_output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        shifted = inputs - inputs.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        self._cached_output = exps / exps.sum(axis=1, keepdims=True)
        return self._cached_output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_output is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.ndim == 1:
            grad_output = grad_output.reshape(1, -1)
        softmax = self._cached_output
        dot = np.sum(grad_output * softmax, axis=1, keepdims=True)
        return softmax * (grad_output - dot)
