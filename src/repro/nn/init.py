"""Weight initialization schemes."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.rng import as_rng


def xavier_uniform(shape: Sequence[int], rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for tanh/sigmoid/linear layers."""
    rng = as_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: Sequence[int], rng=None) -> np.ndarray:
    """He/Kaiming uniform initialization for ReLU layers."""
    rng = as_rng(rng)
    fan_in, _ = _fans(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape: Sequence[int], rng=None) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: Sequence[int]) -> tuple:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes."""
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        # Dense layer stored as (in_features, out_features).
        return shape[0], shape[1]
    # Convolution stored as (out_channels, in_channels, kh, kw).
    receptive = 1
    for dim in shape[2:]:
        receptive *= dim
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
