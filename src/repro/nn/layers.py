"""Dense and structural layers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.init import xavier_uniform, zeros_init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import as_rng


class Linear(Module):
    """Fully connected layer ``y = x @ W + b``.

    Weights are stored as ``(in_features, out_features)`` so a batch of row
    vectors maps directly onto a matrix product.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng=None,
        init=xavier_uniform,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init((in_features, out_features), rng=rng), name="weight")
        self.bias: Optional[Parameter] = (
            Parameter(zeros_init((out_features,)), name="bias") if bias else None
        )
        self._cached_input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {inputs.shape[1]}"
            )
        self._cached_input = inputs
        output = inputs @ self.weight.value
        if self.bias is not None:
            output = output + self.bias.value
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.ndim == 1:
            grad_output = grad_output.reshape(1, -1)
        self.weight.accumulate_grad(self._cached_input.T @ grad_output)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        if self.bias is None:
            return [self.weight]
        return [self.weight, self.bias]


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._cached_shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._cached_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64).reshape(self._cached_shape)


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float = 0.5, rng=None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = as_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
