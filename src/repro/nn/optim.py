"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer requires at least one parameter")

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.value) for p in self.parameters
        }

    def step(self) -> None:
        for parameter in self.parameters:
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            if self.momentum:
                velocity = self._velocity[id(parameter)]
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                parameter.value += velocity
            else:
                parameter.value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.value) for p in self.parameters
        }
        self._second_moment: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.value) for p in self.parameters
        }

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1**self._step_count
        bias_correction2 = 1.0 - self.beta2**self._step_count
        for parameter in self.parameters:
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            first = self._first_moment[id(parameter)]
            second = self._second_moment[id(parameter)]
            first *= self.beta1
            first += (1.0 - self.beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad**2
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.value -= (
                self.learning_rate * corrected_first / (np.sqrt(corrected_second) + self.epsilon)
            )
