"""Minimal pure-numpy neural-network substrate.

The paper's policies are small networks (an MLP for GridWorld, a three-Conv /
two-FC CNN for drone navigation) executed on edge accelerators.  This package
implements the complete substrate needed to train and run those policies —
layers, activations, losses, optimizers and (de)serializable parameter state —
without any external ML framework, so the fault-injection engine can corrupt
the exact tensors the policies compute with.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module, Sequential
from repro.nn.layers import Dropout, Flatten, Linear
from repro.nn.activations import ReLU, Sigmoid, Softmax, Tanh
from repro.nn.conv import Conv2d, MaxPool2d
from repro.nn.losses import (
    CrossEntropyLoss,
    HuberLoss,
    MSELoss,
    log_softmax,
    softmax,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.init import he_uniform, xavier_uniform, zeros_init
from repro.nn.network import (
    build_drone_policy_network,
    build_gridworld_q_network,
    clone_state_dict,
    count_parameters,
    load_state_dict,
    state_dict,
)

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Flatten",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Conv2d",
    "MaxPool2d",
    "MSELoss",
    "HuberLoss",
    "CrossEntropyLoss",
    "softmax",
    "log_softmax",
    "Optimizer",
    "SGD",
    "Adam",
    "xavier_uniform",
    "he_uniform",
    "zeros_init",
    "build_gridworld_q_network",
    "build_drone_policy_network",
    "state_dict",
    "load_state_dict",
    "clone_state_dict",
    "count_parameters",
]
