"""FRL-FI: transient fault analysis for federated reinforcement learning navigation.

A from-scratch reproduction of *FRL-FI: Transient Fault Analysis for Federated
Reinforcement Learning-Based Navigation Systems* (DATE 2022).  The package
provides the full stack the paper's evaluation depends on -- a numpy neural
network substrate, quantization codecs, a bit-level fault-injection engine,
GridWorld and drone navigation environments, Q-learning / REINFORCE agents, a
federated learning layer, the proposed mitigation schemes and an analytical
drone performance model -- plus one experiment function per paper figure and
table.

Quickstart::

    from repro.core import FaultCharacterizationFramework, GridWorldScale

    framework = FaultCharacterizationFramework(gridworld_scale=GridWorldScale.tiny())
    print(framework.run("fig9").render())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
