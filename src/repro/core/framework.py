"""The FRL-FI framework facade.

:class:`FaultCharacterizationFramework` bundles the experiment scales, the
policy cache and the per-figure experiment functions behind a single object,
so examples, benchmarks and downstream users can run any paper artifact by
its identifier (``"fig3a"``, ``"table1"``, ...) and collect the results into
an experiment report.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core import experiments
from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache, default_cache


class FaultCharacterizationFramework:
    """End-to-end driver for the paper's fault-characterization campaign."""

    def __init__(
        self,
        gridworld_scale: Optional[GridWorldScale] = None,
        drone_scale: Optional[DroneScale] = None,
        cache: Optional[PolicyCache] = None,
    ) -> None:
        self.gridworld_scale = gridworld_scale or GridWorldScale.fast()
        self.drone_scale = drone_scale or DroneScale.fast()
        self.cache = cache or default_cache()
        self.results: Dict[str, object] = {}
        self._registry: Dict[str, Callable[[], object]] = {
            "fig3a": lambda: experiments.gridworld_training_heatmap(
                "agent", scale=self.gridworld_scale
            ),
            "fig3b": lambda: experiments.gridworld_training_heatmap(
                "server", scale=self.gridworld_scale
            ),
            "fig3c": lambda: experiments.gridworld_training_heatmap(
                "single", scale=self.gridworld_scale
            ),
            "fig3d": lambda: experiments.weight_distribution(
                scale=self.gridworld_scale,
                consensus=self.cache.gridworld_policies(self.gridworld_scale)["consensus"],
            ),
            "fig3e": lambda: experiments.convergence_after_fault(scale=self.gridworld_scale),
            "table1": lambda: experiments.policy_std_table(
                scale=self.gridworld_scale, agent_counts=(1, 4, 8)
            ),
            "fig4": lambda: experiments.gridworld_inference_sweep(
                scale=self.gridworld_scale, cache=self.cache
            ),
            "fig5a": lambda: experiments.drone_training_heatmap(
                "agent", scale=self.drone_scale, cache=self.cache
            ),
            "fig5b": lambda: experiments.drone_training_heatmap(
                "server", scale=self.drone_scale, cache=self.cache
            ),
            "fig5c": lambda: experiments.drone_training_heatmap(
                "single", scale=self.drone_scale, cache=self.cache
            ),
            "fig6a": lambda: experiments.drone_count_sweep(
                scale=self.drone_scale, drone_counts=(2, 4), cache=self.cache
            ),
            "fig6b": lambda: experiments.communication_interval_study(
                scale=self.drone_scale, cache=self.cache
            ),
            "datatypes": lambda: experiments.datatype_study(
                scale=self.drone_scale, cache=self.cache
            ),
            "fig7a": lambda: experiments.training_mitigation_heatmap(
                "gridworld", "server", scale=self.gridworld_scale, cache=self.cache
            ),
            "fig7b": lambda: experiments.training_mitigation_heatmap(
                "drone", "server", scale=self.drone_scale, cache=self.cache
            ),
            "fig8a": lambda: experiments.inference_mitigation_sweep(
                "gridworld", scale=self.gridworld_scale, cache=self.cache
            ),
            "fig8b": lambda: experiments.inference_mitigation_sweep(
                "drone", scale=self.drone_scale, cache=self.cache
            ),
            "fig9": lambda: experiments.overhead_comparison(),
        }

    @property
    def experiment_ids(self) -> list:
        """Identifiers of every reproducible paper artifact."""
        return sorted(self._registry)

    def run(self, experiment_id: str):
        """Run one experiment by its paper-artifact identifier."""
        if experiment_id not in self._registry:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; available: {self.experiment_ids}"
            )
        result = self._registry[experiment_id]()
        self.results[experiment_id] = result
        return result

    def run_all(self, experiment_ids: Optional[list] = None) -> Dict[str, object]:
        """Run several experiments (default: all) and return the result map."""
        for experiment_id in experiment_ids or self.experiment_ids:
            self.run(experiment_id)
        return dict(self.results)

    def report(self) -> str:
        """Plain-text report of every result collected so far."""
        sections = []
        for experiment_id in sorted(self.results):
            result = self.results[experiment_id]
            rendered = result.render() if hasattr(result, "render") else str(result)
            sections.append(f"=== {experiment_id} ===\n{rendered}")
        return "\n\n".join(sections)
