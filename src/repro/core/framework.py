"""The FRL-FI framework facade.

:class:`FaultCharacterizationFramework` bundles the experiment scales, the
policy cache and the per-figure experiment functions behind a single object,
so examples, benchmarks and downstream users can run any paper artifact by
its identifier (``"fig3a"``, ``"table1"``, ...) and collect the results into
an experiment report.

Artifacts with a cell decomposition are resolved through the campaign plan
builders in :mod:`repro.runtime.plans` — the single source of truth for their
parameters — so ``run(experiment_id)`` and a parallel
:class:`~repro.runtime.runner.CampaignRunner` can never diverge.  Only the
artifacts without a decomposition (cheap or inherently sequential ones) keep
local registry entries here.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core import experiments
from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache, default_cache


class FaultCharacterizationFramework:
    """End-to-end driver for the paper's fault-characterization campaign."""

    def __init__(
        self,
        gridworld_scale: Optional[GridWorldScale] = None,
        drone_scale: Optional[DroneScale] = None,
        cache: Optional[PolicyCache] = None,
    ) -> None:
        self.gridworld_scale = gridworld_scale or GridWorldScale.fast()
        self.drone_scale = drone_scale or DroneScale.fast()
        self.cache = cache or default_cache()
        self.results: Dict[str, object] = {}
        # Whole-experiment entries for the artifacts without a cell
        # decomposition (fig3e's convergence loop is inherently sequential,
        # fig9 is a cheap static table); everything else routes through
        # repro.runtime.plans.
        self._registry: Dict[str, Callable[[], object]] = {
            "fig3e": lambda: experiments.convergence_after_fault(scale=self.gridworld_scale),
            "fig9": lambda: experiments.overhead_comparison(),
        }

    def _context(self):
        from repro.runtime.plans import CampaignContext

        return CampaignContext(
            gridworld_scale=self.gridworld_scale,
            drone_scale=self.drone_scale,
            cache=self.cache,
        )

    @property
    def experiment_ids(self) -> list:
        """Identifiers of every reproducible paper artifact."""
        from repro.runtime.plans import plannable_experiment_ids

        return sorted(set(self._registry) | set(plannable_experiment_ids()))

    def run(self, experiment_id: str, workers: Optional[int] = None):
        """Run one experiment by its paper-artifact identifier.

        ``workers`` > 1 decomposes the experiment into independent campaign
        cells and fans them out over a process pool through
        :class:`repro.runtime.CampaignRunner`; the merged result is
        byte-identical to the serial run.
        """
        if experiment_id not in self.experiment_ids:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; available: {self.experiment_ids}"
            )
        if workers is not None and workers > 1:
            result = self._campaign_runner(workers).run(experiment_id)
        elif experiment_id in self._registry:
            result = self._registry[experiment_id]()
        else:
            from repro.runtime.plans import build_plan

            result = build_plan(experiment_id, self._context()).run_serial()
        self.results[experiment_id] = result
        return result

    def run_all(
        self, experiment_ids: Optional[list] = None, workers: Optional[int] = None
    ) -> Dict[str, object]:
        """Run several experiments (default: all) and return the result map."""
        for experiment_id in experiment_ids or self.experiment_ids:
            self.run(experiment_id, workers=workers)
        return dict(self.results)

    def _campaign_runner(self, workers: int):
        """A campaign runner sharing this framework's scales and policy cache."""
        from repro.runtime.runner import CampaignRunner

        return CampaignRunner(
            gridworld_scale=self.gridworld_scale,
            drone_scale=self.drone_scale,
            cache=self.cache,
            workers=workers,
        )

    def report(self) -> str:
        """Plain-text report of every result collected so far."""
        sections = []
        for experiment_id in sorted(self.results):
            result = self.results[experiment_id]
            rendered = result.render() if hasattr(result, "render") else str(result)
            sections.append(f"=== {experiment_id} ===\n{rendered}")
        return "\n\n".join(sections)
