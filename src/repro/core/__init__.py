"""FRL-FI core: the end-to-end reliability-analysis framework.

This package ties the substrates together into the paper's experiments:
experiment scales (fast CI-sized and paper-sized), the fault-injection
training callback, workload builders for GridWorld and DroneNav FRL systems,
a disk cache of pre-trained policies, and one experiment function per paper
figure/table (see DESIGN.md §4 for the experiment index).
"""

from repro.core.config import DroneScale, GridWorldScale
from repro.core.results import HeatmapResult, SweepResult, TableResult
from repro.core.fault_callbacks import TrainingFaultCallback
from repro.core.workloads import (
    build_drone_frl_system,
    build_drone_single_system,
    build_gridworld_frl_system,
    build_gridworld_single_system,
)
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.framework import FaultCharacterizationFramework

from repro.core import experiments

__all__ = [
    "GridWorldScale",
    "DroneScale",
    "HeatmapResult",
    "SweepResult",
    "TableResult",
    "TrainingFaultCallback",
    "build_gridworld_frl_system",
    "build_gridworld_single_system",
    "build_drone_frl_system",
    "build_drone_single_system",
    "PolicyCache",
    "default_cache",
    "FaultCharacterizationFramework",
    "experiments",
]
