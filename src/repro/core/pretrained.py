"""Disk cache of pre-trained policies.

Inference-time fault experiments (Figs. 4, 8 and the data-type study) corrupt
a *trained* policy; training one from scratch for every benchmark cell would
dominate the runtime.  The :class:`PolicyCache` trains each workload once per
scale and stores the resulting state dicts as JSON under a cache directory
(``FRLFI_CACHE_DIR`` or ``<repo>/.frlfi_cache`` by default), keyed by the
scale's parameters, so repeated experiment runs reuse the same baseline
policy.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.core.config import DroneScale, GridWorldScale
from repro.core.workloads import (
    build_drone_frl_system,
    build_gridworld_frl_system,
    build_gridworld_single_system,
    drone_environments,
)
from repro.rl.pretrain import PretrainConfig, behaviour_clone
from repro.runtime.residency import PolicyRef
from repro.utils.serialization import load_json, save_json, state_dict_from_lists, state_dict_to_lists

StateDict = Dict[str, np.ndarray]


def _scale_key(prefix: str, scale) -> str:
    payload = json.dumps(asdict(scale), sort_keys=True, default=str)
    digest = hashlib.sha1(payload.encode("utf8")).hexdigest()[:16]
    return f"{prefix}-{digest}"


class PolicyCache:
    """Train-once, reuse-everywhere storage of baseline policies."""

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        if cache_dir is None:
            cache_dir = Path(os.environ.get("FRLFI_CACHE_DIR", Path.cwd() / ".frlfi_cache"))
        self.cache_dir = Path(cache_dir)

    # ------------------------------------------------------------------ storage
    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        path = self._path(key)
        if not path.exists():
            return None
        return load_json(path)

    def store(self, key: str, payload: dict) -> None:
        save_json(self._path(key), payload)

    def clear(self) -> int:
        """Delete every cached artefact; returns the number of files removed."""
        removed = 0
        if self.cache_dir.exists():
            # Deterministic deletion order (REP002): glob order is
            # filesystem-dependent, and a clear() interrupted midway should
            # leave the same survivors on every machine.
            for path in sorted(self.cache_dir.glob("*.json")):
                path.unlink()
                removed += 1
        return removed

    # ---------------------------------------------------------- policy references
    def _ref(self, key: str, field: str) -> PolicyRef:
        return PolicyRef(cache_dir=str(self.cache_dir), key=key, field=field)

    def gridworld_consensus_ref(self, scale: GridWorldScale) -> PolicyRef:
        """By-reference handle to the trained GridWorld consensus policy.

        Trains (and stores) the baseline if the cache entry is missing, so the
        returned ref always resolves.  Existence is probed by path — cache
        writes are atomic (``os.replace``), so a present file is a complete
        entry and the multi-MB JSON need not be parsed just to hand out a
        ref.  Campaign cells carry this handle instead of the state dict
        itself; pooled workers decode the cache entry once per process (see
        :mod:`repro.runtime.residency`).
        """
        key = _scale_key("gridworld", scale)
        if not self._path(key).exists():
            self.gridworld_policies(scale)
        return self._ref(key, "consensus")

    def gridworld_single_policy_ref(self, scale: GridWorldScale) -> PolicyRef:
        """By-reference handle to the trained single-agent GridWorld policy."""
        key = _scale_key("gridworld-single", scale)
        if not self._path(key).exists():
            self.gridworld_single_policy(scale)
        return self._ref(key, "policy")

    def drone_policy_ref(self, scale: DroneScale) -> PolicyRef:
        """By-reference handle to the behaviour-cloned drone policy."""
        key = _scale_key("drone", scale)
        if not self._path(key).exists():
            self.drone_policy(scale)
        return self._ref(key, "policy")

    # ------------------------------------------------------- GridWorld baseline
    def gridworld_policies(self, scale: GridWorldScale, refresh: bool = False) -> dict:
        """Trained GridWorld FRL policies for ``scale``.

        Returns a dict with the consensus policy, every agent's policy and the
        clean success rate measured right after training.
        """
        key = _scale_key("gridworld", scale)
        if not refresh:
            cached = self.load(key)
            if cached is not None:
                return {
                    "consensus": state_dict_from_lists(cached["consensus"]),
                    "agents": [state_dict_from_lists(state) for state in cached["agents"]],
                    "success_rate": cached["success_rate"],
                }
        system = build_gridworld_frl_system(scale)
        system.train(scale.episodes)
        consensus = system.consensus_state()
        agents = [agent.upload_state() for agent in system.agents]
        success_rate = system.average_success_rate(attempts=scale.evaluation_attempts)
        self.store(
            key,
            {
                "consensus": state_dict_to_lists(consensus),
                "agents": [state_dict_to_lists(state) for state in agents],
                "success_rate": success_rate,
            },
        )
        return {"consensus": consensus, "agents": agents, "success_rate": success_rate}

    def gridworld_single_policy(self, scale: GridWorldScale, refresh: bool = False) -> StateDict:
        """Trained single-agent GridWorld baseline policy for ``scale``.

        Used by the inference-time sweeps (Fig. 4's Single-Trans-M curve);
        caching it lets pooled campaign workers share one training run.  The
        JSON round trip is exact for float64, so a cached policy is
        bit-identical to a freshly trained one.
        """
        key = _scale_key("gridworld-single", scale)
        if not refresh:
            cached = self.load(key)
            if cached is not None:
                return state_dict_from_lists(cached["policy"])
        system = build_gridworld_single_system(scale, environment_count=1)
        system.train(scale.episodes)
        policy = system.consensus_state()
        self.store(key, {"policy": state_dict_to_lists(policy)})
        return policy

    # --------------------------------------------------------- DroneNav baseline
    def drone_policy(self, scale: DroneScale, refresh: bool = False) -> dict:
        """Offline pre-trained drone policy for ``scale``.

        The policy is behaviour-cloned from the depth-seeking expert pilot
        (with DAgger corrections) over the per-drone worlds; the returned dict
        carries the policy state, the cloning accuracy and the clean average
        flight distance.
        """
        key = _scale_key("drone", scale)
        if not refresh:
            cached = self.load(key)
            if cached is not None:
                return {
                    "policy": state_dict_from_lists(cached["policy"]),
                    "accuracy": cached["accuracy"],
                    "flight_distance": cached["flight_distance"],
                }
        system = build_drone_frl_system(scale)
        envs = [agent.env for agent in system.agents]
        reference_agent = system.agents[0].agent
        pretrain = PretrainConfig(
            collection_episodes=scale.pretrain_collection_episodes,
            epochs=scale.pretrain_epochs,
            dagger_iterations=scale.pretrain_dagger_iterations,
            max_samples=6000,
        )
        accuracy = behaviour_clone(reference_agent, envs, pretrain, rng=scale.seed)
        policy = reference_agent.state_dict()
        for agent in system.agents:
            agent.receive_state(policy)
        flight_distance = system.average_flight_distance(attempts=scale.evaluation_attempts)
        self.store(
            key,
            {
                "policy": state_dict_to_lists(policy),
                "accuracy": accuracy,
                "flight_distance": flight_distance,
            },
        )
        return {"policy": policy, "accuracy": accuracy, "flight_distance": flight_distance}


_DEFAULT_CACHE: Optional[PolicyCache] = None


def default_cache() -> PolicyCache:
    """The process-wide policy cache."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = PolicyCache()
    return _DEFAULT_CACHE


def drone_environments_for(scale: DroneScale):
    """Re-export of the per-drone environments (used by inference experiments)."""
    return drone_environments(scale)
