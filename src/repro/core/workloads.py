"""Workload builders: assemble FRL / single-agent systems for both tasks."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import DroneScale, GridWorldScale
from repro.envs import (
    DroneNavConfig,
    DroneNavEnv,
    GridWorldEnv,
    make_dronenav_suite,
    make_gridworld_suite,
)
from repro.federated import (
    CommunicationSchedule,
    FRLSystem,
    FederatedAgent,
    FederatedServer,
    SingleAgentSystem,
)
from repro.rl import QLearningAgent, QLearningConfig, ReinforceAgent, ReinforceConfig
from repro.utils.rng import RngFactory


# --------------------------------------------------------------------- GridWorld
def gridworld_environments(scale: GridWorldScale) -> Sequence[GridWorldEnv]:
    """The per-agent GridWorld environments for ``scale``."""
    return make_gridworld_suite(
        agent_count=scale.agent_count,
        size=scale.grid_size,
        max_steps=scale.max_steps,
        observation_mode=scale.observation_mode,
    )


def gridworld_agent_config(scale: GridWorldScale) -> QLearningConfig:
    observation_size = 4 if scale.observation_mode == "local" else 6
    return QLearningConfig(
        observation_size=observation_size,
        hidden_sizes=tuple(scale.hidden_sizes),
        learning_rate=scale.learning_rate,
        epsilon_decay_episodes=scale.epsilon_decay_episodes,
    )


def build_gridworld_frl_system(
    scale: GridWorldScale,
    seed_offset: int = 0,
    schedule: Optional[CommunicationSchedule] = None,
) -> FRLSystem:
    """A fresh FRL GridWorld system (untrained) at the requested scale."""
    rngs = RngFactory(scale.seed + seed_offset)
    envs = gridworld_environments(scale)
    config = gridworld_agent_config(scale)
    agents = [
        FederatedAgent(
            index=index,
            agent=QLearningAgent(config, rng=rngs.stream("gridworld-agent", index)),
            env=envs[index],
        )
        for index in range(scale.agent_count)
    ]
    schedule = schedule or CommunicationSchedule(base_interval=scale.communication_interval)
    return FRLSystem(agents, server=FederatedServer(), schedule=schedule)


def build_gridworld_single_system(
    scale: GridWorldScale, seed_offset: int = 0, environment_count: int = 1
) -> SingleAgentSystem:
    """The single-agent GridWorld baseline (no server, no sharing)."""
    rngs = RngFactory(scale.seed + seed_offset)
    envs = gridworld_environments(scale)[:environment_count]
    config = gridworld_agent_config(scale)
    agent = QLearningAgent(config, rng=rngs.stream("gridworld-single"))
    return SingleAgentSystem(agent, envs)


# ---------------------------------------------------------------------- DroneNav
def drone_env_config(scale: DroneScale) -> DroneNavConfig:
    return DroneNavConfig(
        image_width=scale.image_width,
        image_height=scale.image_height,
        max_steps=scale.max_steps,
    )


def drone_environments(scale: DroneScale) -> Sequence[DroneNavEnv]:
    """The per-drone corridor environments for ``scale``."""
    return make_dronenav_suite(
        drone_count=scale.drone_count,
        config=drone_env_config(scale),
        length=scale.corridor_length,
        half_width=scale.corridor_half_width,
        obstacle_density=scale.obstacle_density,
    )


def drone_agent_config(scale: DroneScale) -> ReinforceConfig:
    return ReinforceConfig(
        input_shape=scale.input_shape,
        conv_channels=tuple(scale.conv_channels),
        fc_hidden=scale.fc_hidden,
        learning_rate=scale.learning_rate,
        greedy_epsilon=0.0,
    )


def build_drone_frl_system(
    scale: DroneScale,
    seed_offset: int = 0,
    schedule: Optional[CommunicationSchedule] = None,
    initial_state: Optional[dict] = None,
) -> FRLSystem:
    """A DroneNav FRL system; ``initial_state`` seeds every drone's policy."""
    rngs = RngFactory(scale.seed + seed_offset)
    envs = drone_environments(scale)
    config = drone_agent_config(scale)
    agents = []
    for index in range(scale.drone_count):
        agent = ReinforceAgent(config, rng=rngs.stream("drone-agent", index))
        if initial_state is not None:
            agent.load_state_dict(initial_state)
        agents.append(FederatedAgent(index=index, agent=agent, env=envs[index]))
    schedule = schedule or CommunicationSchedule(base_interval=scale.communication_interval)
    return FRLSystem(agents, server=FederatedServer(), schedule=schedule)


def build_drone_single_system(
    scale: DroneScale,
    seed_offset: int = 0,
    initial_state: Optional[dict] = None,
    environment_count: int = 1,
) -> SingleAgentSystem:
    """The single-drone baseline (no server, no sharing)."""
    rngs = RngFactory(scale.seed + seed_offset)
    envs = drone_environments(scale)[:environment_count]
    agent = ReinforceAgent(drone_agent_config(scale), rng=rngs.stream("drone-single"))
    if initial_state is not None:
        agent.load_state_dict(initial_state)
    return SingleAgentSystem(agent, envs)
