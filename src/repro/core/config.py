"""Experiment scales.

Every experiment function takes a *scale* object describing the workload size
(agents, episodes, evaluation attempts, repetition counts...).  Three presets
are provided:

* ``tiny()``   — seconds-scale, used by the test suite,
* ``fast()``   — tens-of-seconds scale, the default for the benchmark harness,
* ``paper()``  — the sizes reported in the paper (12 GridWorld agents trained
  for 1000 episodes with 1000-repetition fault campaigns, 4 drones fine-tuned
  for thousands of episodes with 100 repetitions).  Paper scale is provided
  for completeness; running it requires hours of CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class GridWorldScale:
    """Sizing of GridWorld FRL experiments."""

    agent_count: int = 4
    grid_size: int = 10
    episodes: int = 150
    max_steps: int = 80
    hidden_sizes: Tuple[int, ...] = (24, 24)
    learning_rate: float = 1e-2
    epsilon_decay_episodes: int = 100
    communication_interval: int = 2
    evaluation_attempts: int = 10
    repeats: int = 1
    observation_mode: str = "goal_direction"
    datatype: str = "Q(1,2,5)"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.agent_count <= 0 or self.episodes <= 0 or self.evaluation_attempts <= 0:
            raise ValueError("agent_count, episodes and evaluation_attempts must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")

    def with_agents(self, agent_count: int) -> "GridWorldScale":
        return replace(self, agent_count=agent_count)

    def with_seed(self, seed: int) -> "GridWorldScale":
        return replace(self, seed=seed)

    @classmethod
    def tiny(cls) -> "GridWorldScale":
        """Seconds-scale configuration for unit/integration tests."""
        return cls(
            agent_count=2,
            episodes=50,
            max_steps=50,
            hidden_sizes=(16, 16),
            epsilon_decay_episodes=30,
            evaluation_attempts=5,
        )

    @classmethod
    def fast(cls) -> "GridWorldScale":
        """Default benchmark configuration (tens of seconds per experiment)."""
        return cls()

    @classmethod
    def paper(cls) -> "GridWorldScale":
        """The sizes used in the paper (hours of CPU time)."""
        return cls(
            agent_count=12,
            episodes=1000,
            max_steps=100,
            hidden_sizes=(32, 32),
            epsilon_decay_episodes=500,
            communication_interval=1,
            evaluation_attempts=1000,
            repeats=1000,
        )


@dataclass(frozen=True)
class DroneScale:
    """Sizing of DroneNav FRL experiments."""

    drone_count: int = 2
    image_height: int = 8
    image_width: int = 16
    conv_channels: Tuple[int, ...] = (4, 8, 8)
    fc_hidden: int = 32
    corridor_length: float = 900.0
    corridor_half_width: float = 25.0
    obstacle_density: float = 0.0015
    max_steps: int = 450
    fine_tune_episodes: int = 8
    communication_interval: int = 2
    learning_rate: float = 5e-4
    evaluation_attempts: int = 2
    repeats: int = 1
    datatype: str = "Q(1,7,8)"
    seed: int = 0
    pretrain_collection_episodes: int = 3
    pretrain_epochs: int = 8
    pretrain_dagger_iterations: int = 3

    def __post_init__(self) -> None:
        if self.drone_count <= 0 or self.fine_tune_episodes < 0:
            raise ValueError("drone_count must be positive and fine_tune_episodes non-negative")
        if self.evaluation_attempts <= 0 or self.repeats <= 0:
            raise ValueError("evaluation_attempts and repeats must be positive")

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (3, self.image_height, self.image_width)

    def with_drones(self, drone_count: int) -> "DroneScale":
        return replace(self, drone_count=drone_count)

    def with_seed(self, seed: int) -> "DroneScale":
        return replace(self, seed=seed)

    @classmethod
    def tiny(cls) -> "DroneScale":
        """Seconds-scale configuration for unit/integration tests."""
        return cls(
            drone_count=2,
            max_steps=120,
            corridor_length=300.0,
            fine_tune_episodes=2,
            evaluation_attempts=1,
            pretrain_collection_episodes=2,
            pretrain_epochs=3,
            pretrain_dagger_iterations=1,
        )

    @classmethod
    def fast(cls) -> "DroneScale":
        """Default benchmark configuration (tens of seconds per experiment)."""
        return cls()

    @classmethod
    def paper(cls) -> "DroneScale":
        """The sizes used in the paper (Unreal/AirSim scale; days of CPU time)."""
        return cls(
            drone_count=4,
            image_height=180,
            image_width=320,
            conv_channels=(32, 64, 64),
            fc_hidden=256,
            corridor_length=2000.0,
            max_steps=3000,
            fine_tune_episodes=6000,
            evaluation_attempts=100,
            repeats=100,
        )
