"""Result containers for experiments (heatmaps, sweeps, tables)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.tables import render_heatmap, render_series, render_table


@dataclass
class HeatmapResult:
    """A metric measured over a (row × column) grid of parameters.

    Mirrors the paper's Fig. 3/5/7 heatmaps: rows are bit-error rates, columns
    are fault-injection episodes, cells hold the measured metric.
    """

    title: str
    metric: str
    row_axis: str
    column_axis: str
    row_labels: List[object]
    column_labels: List[object]
    values: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.shape != (len(self.row_labels), len(self.column_labels)):
            raise ValueError(
                f"values shape {self.values.shape} does not match "
                f"{len(self.row_labels)} rows x {len(self.column_labels)} columns"
            )

    def cell(self, row_label: object, column_label: object) -> float:
        row = self.row_labels.index(row_label)
        column = self.column_labels.index(column_label)
        return float(self.values[row, column])

    def row(self, row_label: object) -> np.ndarray:
        return self.values[self.row_labels.index(row_label)].copy()

    def render(self, value_format: str = "{:>6.1f}") -> str:
        return render_heatmap(
            self.row_labels,
            self.column_labels,
            self.values,
            title=f"{self.title} [{self.metric}]",
            value_format=value_format,
            row_axis=self.row_axis,
            column_axis=self.column_axis,
        )

    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "metric": self.metric,
            "row_axis": self.row_axis,
            "column_axis": self.column_axis,
            "row_labels": list(self.row_labels),
            "column_labels": list(self.column_labels),
            "values": self.values.tolist(),
            "metadata": dict(self.metadata),
        }

    def __str__(self) -> str:
        return self.render()


@dataclass
class SweepResult:
    """One or more named series measured against a shared x-axis."""

    title: str
    metric: str
    x_axis: str
    x_values: List[object]
    series: Dict[str, List[float]]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} points but there are "
                    f"{len(self.x_values)} x values"
                )

    def value(self, series_name: str, x_value: object) -> float:
        return float(self.series[series_name][self.x_values.index(x_value)])

    def render(self, float_format: str = "{:.2f}") -> str:
        return render_series(
            self.x_axis,
            self.x_values,
            self.series,
            title=f"{self.title} [{self.metric}]",
            float_format=float_format,
        )

    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "metric": self.metric,
            "x_axis": self.x_axis,
            "x_values": list(self.x_values),
            "series": {name: list(values) for name, values in self.series.items()},
            "metadata": dict(self.metadata),
        }

    def __str__(self) -> str:
        return self.render()


@dataclass
class TableResult:
    """A small table of scalar results (e.g. paper Table I)."""

    title: str
    headers: List[str]
    rows: List[Sequence[object]]
    metadata: dict = field(default_factory=dict)

    def column(self, header: str) -> List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def render(self, float_format: str = "{:.3f}") -> str:
        return render_table(self.headers, self.rows, title=self.title, float_format=float_format)

    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "metadata": dict(self.metadata),
        }

    def __str__(self) -> str:
        return self.render()


def summarize_improvement(result: SweepResult, baseline: str, improved: str) -> Optional[float]:
    """Largest ratio improved/baseline across the sweep (the paper's 'up to N×')."""
    if baseline not in result.series or improved not in result.series:
        return None
    ratios = []
    for base_value, better_value in zip(result.series[baseline], result.series[improved]):
        if base_value > 0:
            ratios.append(better_value / base_value)
    return max(ratios) if ratios else None
