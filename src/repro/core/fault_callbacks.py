"""Training-time fault injection as an FRL training callback.

A :class:`TrainingFaultCallback` materializes a :class:`repro.faults.FaultSpec`
during federated training: at the specified injection episode it corrupts
either one agent's policy parameters (agent fault — the data the server
receives from that agent) or the server's consensus parameters as received by
every agent (server fault).  Activation faults attach transient hooks to the
targeted policy network for the duration of the injection episode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.faults.hooks import attach_activation_faults, detach_activation_faults
from repro.faults.injector import FaultInjector
from repro.faults.locations import FaultLocation, FaultTarget
from repro.faults.spec import FaultSpec
from repro.federated.callbacks import TrainingCallback
from repro.utils.rng import as_rng

StateDict = Dict[str, np.ndarray]


class TrainingFaultCallback(TrainingCallback):
    """Inject one fault scenario into FRL (or single-agent) training."""

    def __init__(
        self,
        spec: FaultSpec,
        injector: Optional[FaultInjector] = None,
        datatype: str = "int8",
        rng=None,
    ) -> None:
        self.spec = spec
        self._rng = as_rng(rng)
        self.injector = injector or FaultInjector(
            datatype=datatype, model=spec.model, rng=self._rng
        )
        self.injections: List[dict] = []
        self._active_hooks = []

    # ------------------------------------------------------------------ helpers
    def _should_inject(self, episode: int) -> bool:
        if not self.spec.is_enabled:
            return False
        if self.spec.injection_episode is None:
            return True
        return episode == self.spec.injection_episode

    def _target_agent_index(self, system) -> int:
        if self.spec.agent_index is not None:
            return self.spec.agent_index % system.agent_count
        return int(self._rng.integers(0, system.agent_count))

    def _record(self, episode: int, where: str, agent_index: Optional[int] = None) -> None:
        self.injections.append(
            {
                "episode": episode,
                "where": where,
                "agent_index": agent_index,
                "ber": self.spec.bit_error_rate.rate,
                "model": self.spec.model.name,
            }
        )

    # --------------------------------------------------------------- weight path
    def on_episode_start(self, system, episode: int) -> None:
        if not self._should_inject(episode):
            return
        if self.spec.target != FaultTarget.ACTIVATIONS:
            return
        # Activation faults: wrap the targeted policy network for this episode.
        if self.spec.analysis_class == "agent":
            agent_index = self._target_agent_index(system)
            network = system.agents[agent_index].agent.network
            self._active_hooks = attach_activation_faults(
                network, self.injector, self.spec.bit_error_rate
            )
            self._record(episode, "agent_activations", agent_index)
        else:
            # Server-side activations: every agent consumes server-produced
            # data, so all agents' networks observe corrupted activations.
            self._active_hooks = []
            for agent in system.agents:
                self._active_hooks.extend(
                    attach_activation_faults(
                        agent.agent.network, self.injector, self.spec.bit_error_rate
                    )
                )
            self._record(episode, "server_activations", None)

    def on_round_end(self, system, episode: int, communicated: bool) -> None:
        # Remove any transient activation hooks installed for this episode.
        if self._active_hooks:
            for agent in system.agents:
                detach_activation_faults(agent.agent.network)
            self._active_hooks = []
        if not self._should_inject(episode):
            return
        if self.spec.target == FaultTarget.ACTIVATIONS:
            return
        if self.spec.analysis_class == "agent":
            agent_index = self._target_agent_index(system)
            clean = system.agents[agent_index].upload_state()
            corrupted = self.injector.corrupt_state_dict(clean, self.spec.bit_error_rate)
            system.corrupt_agent(agent_index, corrupted)
            self._record(episode, "agent_weights", agent_index)
        else:
            consensus = system.consensus_state()
            corrupted = self.injector.corrupt_state_dict(consensus, self.spec.bit_error_rate)
            if hasattr(system, "server"):
                system.server.set_consensus(corrupted)
            for agent_index in range(system.agent_count):
                system.corrupt_agent(
                    agent_index,
                    {name: np.array(value, copy=True) for name, value in corrupted.items()},
                )
            self._record(episode, "server_weights", None)

    @property
    def injection_count(self) -> int:
        return len(self.injections)


def make_training_fault(
    location: Union[str, FaultLocation],
    bit_error_rate: float,
    injection_episode: Optional[int],
    model: str = "transient",
    target: Union[str, FaultTarget] = "weights",
    agent_index: Optional[int] = None,
    datatype: str = "int8",
    rng=None,
) -> TrainingFaultCallback:
    """Convenience constructor used by the experiment functions."""
    spec = FaultSpec(
        location=location,
        target=target,
        bit_error_rate=bit_error_rate,
        model=model,
        injection_episode=injection_episode,
        agent_index=agent_index,
    )
    return TrainingFaultCallback(spec, datatype=datatype, rng=rng)
