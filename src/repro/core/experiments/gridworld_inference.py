"""GridWorld inference-time experiments (paper Fig. 4)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import GridWorldScale
from repro.core.experiments.inference_utils import (
    gridworld_agent_with_state,
    single_step_fault_success_rate,
    success_rate_over_envs,
)
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.results import SweepResult
from repro.core.workloads import build_gridworld_single_system, gridworld_environments
from repro.faults import FaultInjector
from repro.utils.rng import RngFactory

StateDict = Dict[str, np.ndarray]

DEFAULT_INFERENCE_BERS = (0.0, 0.005, 0.01, 0.02)
DEFAULT_VARIANTS = ("Multi-Trans-M", "Multi-Trans-1", "Single-Trans-M", "Stuck-at-0", "Stuck-at-1")


def evaluate_gridworld_policy(
    state: StateDict,
    scale: Optional[GridWorldScale] = None,
    attempts_per_env: int = 5,
    rng=None,
) -> float:
    """Average success rate of ``state`` over the canonical GridWorld suite."""
    scale = scale or GridWorldScale.fast()
    envs = gridworld_environments(scale)
    agent = gridworld_agent_with_state(scale, state, rng=rng)
    return success_rate_over_envs(agent, envs, attempts_per_env)


def _single_agent_policy(scale: GridWorldScale) -> StateDict:
    """Train the single-agent baseline policy used by the Single-Trans-M curve."""
    system = build_gridworld_single_system(scale, environment_count=1)
    system.train(scale.episodes)
    return system.consensus_state()


def gridworld_inference_sweep(
    scale: Optional[GridWorldScale] = None,
    ber_values: Sequence[float] = DEFAULT_INFERENCE_BERS,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    cache: Optional[PolicyCache] = None,
    repeats: int = 3,
) -> SweepResult:
    """Success rate vs BER for the paper's inference fault variants (Fig. 4).

    * ``Multi-Trans-M``  — persistent memory fault in the unified FRL policy,
    * ``Multi-Trans-1``  — register fault affecting a single action step,
    * ``Single-Trans-M`` — persistent memory fault in the single-agent policy,
    * ``Stuck-at-0`` / ``Stuck-at-1`` — persistent stuck-at faults in the FRL
      policy (the Fig. 4 inset comparison).
    """
    scale = scale or GridWorldScale.fast()
    cache = cache or default_cache()
    rngs = RngFactory(scale.seed)
    trained = cache.gridworld_policies(scale)
    multi_policy = trained["consensus"]
    envs = gridworld_environments(scale)
    single_policy = _single_agent_policy(scale) if "Single-Trans-M" in variants else None
    single_envs = envs[:1]

    series: Dict[str, list] = {variant: [] for variant in variants}
    attempts = max(2, scale.evaluation_attempts // 2)
    for ber_index, ber in enumerate(ber_values):
        accumulators = {variant: [] for variant in variants}
        for repeat in range(repeats):
            stream = rngs.stream("inference", ber_index, repeat)
            injector = FaultInjector(datatype=scale.datatype, model="transient", rng=stream)
            for variant in variants:
                if variant == "Multi-Trans-M":
                    corrupted = injector.corrupt_state_dict(multi_policy, ber)
                    agent = gridworld_agent_with_state(scale, corrupted, rng=stream)
                    accumulators[variant].append(
                        success_rate_over_envs(agent, envs, attempts)
                    )
                elif variant == "Multi-Trans-1":
                    corrupted = injector.corrupt_state_dict(multi_policy, ber)
                    accumulators[variant].append(
                        single_step_fault_success_rate(
                            scale, multi_policy, corrupted, envs, attempts, rng=stream
                        )
                    )
                elif variant == "Single-Trans-M":
                    corrupted = injector.corrupt_state_dict(single_policy, ber)
                    agent = gridworld_agent_with_state(scale, corrupted, rng=stream)
                    accumulators[variant].append(
                        success_rate_over_envs(agent, single_envs, attempts)
                    )
                elif variant in ("Stuck-at-0", "Stuck-at-1"):
                    model = "stuck-at-0" if variant == "Stuck-at-0" else "stuck-at-1"
                    stuck_injector = FaultInjector(datatype=scale.datatype, model=model, rng=stream)
                    corrupted = stuck_injector.corrupt_state_dict(multi_policy, ber)
                    agent = gridworld_agent_with_state(scale, corrupted, rng=stream)
                    accumulators[variant].append(
                        success_rate_over_envs(agent, envs, attempts)
                    )
                else:
                    raise ValueError(f"unknown inference variant {variant!r}")
        for variant in variants:
            series[variant].append(float(np.mean(accumulators[variant])) * 100.0)
    return SweepResult(
        title="GridWorld inference under transient faults (Fig. 4)",
        metric="success rate (%)",
        x_axis="BER",
        x_values=[f"{ber:.3%}" for ber in ber_values],
        series=series,
        metadata={"clean_success_rate": trained["success_rate"] * 100.0, "repeats": repeats},
    )
