"""GridWorld inference-time experiments (paper Fig. 4)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import GridWorldScale
from repro.core.experiments.inference_utils import (
    gridworld_agent_with_state,
    single_step_fault_success_rate,
    success_rate_over_envs,
)
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.results import SweepResult
from repro.core.workloads import gridworld_environments
from repro.faults import FaultInjector
from repro.runtime.cells import CampaignPlan, CellTask
from repro.utils.rng import RngFactory

StateDict = Dict[str, np.ndarray]

DEFAULT_INFERENCE_BERS = (0.0, 0.005, 0.01, 0.02)
DEFAULT_VARIANTS = ("Multi-Trans-M", "Multi-Trans-1", "Single-Trans-M", "Stuck-at-0", "Stuck-at-1")


def evaluate_gridworld_policy(
    state: StateDict,
    scale: Optional[GridWorldScale] = None,
    attempts_per_env: int = 5,
    rng=None,
) -> float:
    """Average success rate of ``state`` over the canonical GridWorld suite."""
    scale = scale or GridWorldScale.fast()
    envs = gridworld_environments(scale)
    agent = gridworld_agent_with_state(scale, state, rng=rng)
    return success_rate_over_envs(agent, envs, attempts_per_env)


def gridworld_inference_cell(
    scale: GridWorldScale,
    ber: float,
    ber_index: int,
    repeat: int,
    variants: Sequence[str],
    multi_policy: StateDict,
    single_policy: Optional[StateDict],
    attempts: int,
) -> list:
    """One (BER, repeat) draw of the Fig. 4 sweep, all variants in order.

    The variants share one RNG stream keyed by (ber_index, repeat), exactly as
    the historical serial loop did, so decomposed execution reproduces the
    same values bit for bit.
    """
    envs = gridworld_environments(scale)
    single_envs = envs[:1]
    stream = RngFactory(scale.seed).stream("inference", ber_index, repeat)
    injector = FaultInjector(datatype=scale.datatype, model="transient", rng=stream)
    outputs = []
    for variant in variants:
        if variant == "Multi-Trans-M":
            corrupted = injector.corrupt_state_dict(multi_policy, ber)
            agent = gridworld_agent_with_state(scale, corrupted, rng=stream)
            outputs.append(success_rate_over_envs(agent, envs, attempts))
        elif variant == "Multi-Trans-1":
            corrupted = injector.corrupt_state_dict(multi_policy, ber)
            outputs.append(
                single_step_fault_success_rate(
                    scale, multi_policy, corrupted, envs, attempts, rng=stream
                )
            )
        elif variant == "Single-Trans-M":
            corrupted = injector.corrupt_state_dict(single_policy, ber)
            agent = gridworld_agent_with_state(scale, corrupted, rng=stream)
            outputs.append(success_rate_over_envs(agent, single_envs, attempts))
        elif variant in ("Stuck-at-0", "Stuck-at-1"):
            model = "stuck-at-0" if variant == "Stuck-at-0" else "stuck-at-1"
            stuck_injector = FaultInjector(datatype=scale.datatype, model=model, rng=stream)
            corrupted = stuck_injector.corrupt_state_dict(multi_policy, ber)
            agent = gridworld_agent_with_state(scale, corrupted, rng=stream)
            outputs.append(success_rate_over_envs(agent, envs, attempts))
        else:
            raise ValueError(f"unknown inference variant {variant!r}")
    return outputs


def gridworld_inference_plan(
    scale: Optional[GridWorldScale] = None,
    ber_values: Sequence[float] = DEFAULT_INFERENCE_BERS,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    cache: Optional[PolicyCache] = None,
    repeats: int = 3,
) -> CampaignPlan:
    """Decompose the Fig. 4 sweep into independent (BER, repeat) cells.

    The trained baselines are resolved through the disk-backed policy cache at
    plan time (training them once in the parent process); cells carry
    :class:`~repro.runtime.residency.PolicyRef` handles, so pooled workers
    never retrain a baseline and decode each referenced policy only once.
    """
    scale = scale or GridWorldScale.fast()
    cache = cache or default_cache()
    ber_values = tuple(ber_values)
    variants = tuple(variants)
    trained = cache.gridworld_policies(scale)
    clean_success_rate = trained["success_rate"] * 100.0
    multi_policy = cache.gridworld_consensus_ref(scale)
    single_policy = (
        cache.gridworld_single_policy_ref(scale) if "Single-Trans-M" in variants else None
    )
    attempts = max(2, scale.evaluation_attempts // 2)
    cells = [
        CellTask(
            experiment_id="fig4",
            key=("ber", ber_index, "repeat", repeat),
            fn=gridworld_inference_cell,
            kwargs={
                "scale": scale,
                "ber": ber,
                "ber_index": ber_index,
                "repeat": repeat,
                "variants": variants,
                "multi_policy": multi_policy,
                "single_policy": single_policy,
                "attempts": attempts,
            },
        )
        for ber_index, ber in enumerate(ber_values)
        for repeat in range(repeats)
    ]

    def merge(outputs):
        series: Dict[str, list] = {variant: [] for variant in variants}
        for ber_index in range(len(ber_values)):
            cell_outputs = outputs[ber_index * repeats : (ber_index + 1) * repeats]
            for variant_index, variant in enumerate(variants):
                accumulator = [cell[variant_index] for cell in cell_outputs]
                series[variant].append(float(np.mean(accumulator)) * 100.0)
        return SweepResult(
            title="GridWorld inference under transient faults (Fig. 4)",
            metric="success rate (%)",
            x_axis="BER",
            x_values=[f"{ber:.3%}" for ber in ber_values],
            series=series,
            metadata={"clean_success_rate": clean_success_rate, "repeats": repeats},
        )

    return CampaignPlan(experiment_id="fig4", cells=cells, merge=merge)


def gridworld_inference_sweep(
    scale: Optional[GridWorldScale] = None,
    ber_values: Sequence[float] = DEFAULT_INFERENCE_BERS,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    cache: Optional[PolicyCache] = None,
    repeats: int = 3,
) -> SweepResult:
    """Success rate vs BER for the paper's inference fault variants (Fig. 4).

    * ``Multi-Trans-M``  — persistent memory fault in the unified FRL policy,
    * ``Multi-Trans-1``  — register fault affecting a single action step,
    * ``Single-Trans-M`` — persistent memory fault in the single-agent policy,
    * ``Stuck-at-0`` / ``Stuck-at-1`` — persistent stuck-at faults in the FRL
      policy (the Fig. 4 inset comparison).

    The sweep is the serial execution of :func:`gridworld_inference_plan`, so
    it matches the parallel campaign runner bit for bit.
    """
    return gridworld_inference_plan(scale, ber_values, variants, cache, repeats).run_serial()
