"""GridWorld training-time experiments (paper Fig. 3 and Table I)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import GridWorldScale
from repro.core.fault_callbacks import make_training_fault
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.results import HeatmapResult, SweepResult, TableResult
from repro.core.workloads import build_gridworld_frl_system, build_gridworld_single_system
from repro.quant.bitstats import bit_breakdown
from repro.quant.datatypes import resolve_datatype
from repro.rl.policy import consensus_policy_std
from repro.runtime.cells import CampaignPlan, CellTask, accumulate_heatmap, grid_merge_order
from repro.utils.bitops import count_ones
from repro.utils.rng import RngFactory

DEFAULT_BERS = (0.0, 0.005, 0.01, 0.02)
DEFAULT_EPISODE_FRACTIONS = (0.3, 0.6, 0.9)


def _injection_episodes(scale: GridWorldScale, fractions: Sequence[float]) -> list:
    return sorted({max(0, min(scale.episodes - 1, int(round(scale.episodes * f)))) for f in fractions})


def _build_system(scale: GridWorldScale, location: str, seed_offset: int):
    if location == "single":
        return build_gridworld_single_system(scale, seed_offset=seed_offset)
    return build_gridworld_frl_system(scale, seed_offset=seed_offset)


def gridworld_training_cell(
    location: str,
    scale: GridWorldScale,
    ber: float,
    injection_episode: int,
    repeat: int,
    row: int,
    column: int,
) -> float:
    """One (repeat, BER, injection-episode) cell of the Fig. 3 heatmaps.

    Builds a fresh system, trains it with the fault callback and returns the
    evaluated success rate.  All randomness comes from streams keyed by the
    cell coordinates, so the cell yields the same value no matter which
    process executes it.
    """
    system = _build_system(scale, location, seed_offset=repeat)
    fault_location = "server" if location == "server" else "agent"
    callback = make_training_fault(
        location=fault_location,
        bit_error_rate=ber,
        injection_episode=injection_episode,
        datatype=scale.datatype,
        rng=RngFactory(scale.seed).stream("fi", repeat, row, column),
    )
    system.train(scale.episodes, callbacks=[callback])
    return system.average_success_rate(attempts=scale.evaluation_attempts)


def gridworld_training_plan(
    location: str = "server",
    scale: Optional[GridWorldScale] = None,
    ber_values: Sequence[float] = DEFAULT_BERS,
    episode_fractions: Sequence[float] = DEFAULT_EPISODE_FRACTIONS,
) -> CampaignPlan:
    """Decompose a Fig. 3 heatmap into independent campaign cells."""
    scale = scale or GridWorldScale.fast()
    if location not in ("agent", "server", "single"):
        raise ValueError(f"location must be 'agent', 'server' or 'single', got {location!r}")
    ber_values = tuple(ber_values)
    episodes = _injection_episodes(scale, episode_fractions)
    experiment_id = {"agent": "fig3a", "server": "fig3b", "single": "fig3c"}[location]
    cells = [
        CellTask(
            experiment_id=experiment_id,
            key=("repeat", repeat, "ber", row, "episode", column),
            fn=gridworld_training_cell,
            kwargs={
                "location": location,
                "scale": scale,
                "ber": ber_values[row],
                "injection_episode": episodes[column],
                "repeat": repeat,
                "row": row,
                "column": column,
            },
        )
        for repeat, row, column in grid_merge_order(scale.repeats, len(ber_values), len(episodes))
    ]

    def merge(outputs):
        values = accumulate_heatmap(outputs, scale.repeats, len(ber_values), len(episodes))
        values = values / scale.repeats * 100.0
        title = {
            "agent": "GridWorld training, agent faults (Fig. 3a)",
            "server": "GridWorld training, server faults (Fig. 3b)",
            "single": "GridWorld training, single-agent system (Fig. 3c)",
        }[location]
        return HeatmapResult(
            title=title,
            metric="success rate (%)",
            row_axis="BER",
            column_axis="episode",
            row_labels=[f"{ber:.3%}" for ber in ber_values],
            column_labels=list(episodes),
            values=values,
            metadata={
                "location": location,
                "scale": "fast" if scale == GridWorldScale.fast() else "custom",
            },
        )

    return CampaignPlan(experiment_id=experiment_id, cells=cells, merge=merge)


def gridworld_training_heatmap(
    location: str = "server",
    scale: Optional[GridWorldScale] = None,
    ber_values: Sequence[float] = DEFAULT_BERS,
    episode_fractions: Sequence[float] = DEFAULT_EPISODE_FRACTIONS,
) -> HeatmapResult:
    """Success rate over (BER × fault-injection episode) during FRL training.

    ``location`` selects the paper's three panels: ``"agent"`` (Fig. 3a),
    ``"server"`` (Fig. 3b) and ``"single"`` — the single-agent system with
    the fault applied directly to its policy (Fig. 3c).  Internally the sweep
    is the serial execution of :func:`gridworld_training_plan`, so its output
    is bit-identical to the parallel campaign runner's.
    """
    return gridworld_training_plan(location, scale, ber_values, episode_fractions).run_serial()


def convergence_after_fault(
    scale: Optional[GridWorldScale] = None,
    ber_values: Sequence[float] = (0.005, 0.01, 0.02),
    injection_fraction: float = 0.9,
    recovery_success_rate: float = 0.96,
    evaluation_interval: int = 10,
    max_extra_episodes: Optional[int] = None,
) -> SweepResult:
    """Episodes needed to recover after a late fault (paper Fig. 3e).

    A fault is injected near the end of training (default: the 90 % episode);
    training then continues and the unified policy is evaluated every
    ``evaluation_interval`` episodes until its success rate exceeds
    ``recovery_success_rate``.  The reported value is the total number of
    episodes (injection episode + recovery episodes), one series per fault
    location.
    """
    scale = scale or GridWorldScale.fast()
    max_extra_episodes = max_extra_episodes or scale.episodes
    injection_episode = max(0, min(scale.episodes - 1, int(round(scale.episodes * injection_fraction))))
    series = {"agent": [], "server": []}
    for location in ("agent", "server"):
        for ber in ber_values:
            system = build_gridworld_frl_system(scale)
            callback = make_training_fault(
                location=location,
                bit_error_rate=ber,
                injection_episode=injection_episode,
                datatype=scale.datatype,
                rng=RngFactory(scale.seed).stream("conv", location, int(ber * 1e6)),
            )
            system.train(scale.episodes, callbacks=[callback])
            episodes_to_converge = scale.episodes
            extra = 0
            while extra < max_extra_episodes:
                success = system.average_success_rate(attempts=scale.evaluation_attempts)
                if success >= recovery_success_rate:
                    break
                system.train(evaluation_interval, start_episode=scale.episodes + extra)
                extra += evaluation_interval
            episodes_to_converge += extra
            series[location].append(float(episodes_to_converge))
    return SweepResult(
        title="Episodes to converge after late fault (Fig. 3e)",
        metric="episodes",
        x_axis="BER",
        x_values=[f"{ber:.3%}" for ber in ber_values],
        series=series,
        metadata={
            "injection_episode": injection_episode,
            "recovery_success_rate": recovery_success_rate,
        },
    )


def policy_std_cell(scale: GridWorldScale, agent_count: int) -> list:
    """One Table I row: train a system of ``agent_count`` agents, report std."""
    if agent_count == 1:
        system = build_gridworld_single_system(scale, environment_count=1)
        system.train(scale.episodes)
        label = "Single-agent"
    else:
        system = build_gridworld_frl_system(scale.with_agents(agent_count))
        system.train(scale.episodes)
        label = f"Multi-agent (n={agent_count})"
    return [label, consensus_policy_std(system.consensus_state())]


def policy_std_plan(
    scale: Optional[GridWorldScale] = None,
    agent_counts: Sequence[int] = (1, 4, 8, 12),
) -> CampaignPlan:
    """Decompose Table I into one cell per system size."""
    scale = scale or GridWorldScale.fast()
    agent_counts = tuple(agent_counts)
    if any(count <= 0 for count in agent_counts):
        raise ValueError("agent counts must be positive")
    cells = [
        CellTask(
            experiment_id="table1",
            key=("agents", count),
            fn=policy_std_cell,
            kwargs={"scale": scale, "agent_count": count},
        )
        for count in agent_counts
    ]

    def merge(outputs):
        return TableResult(
            title="Std of the consensus policy (Table I)",
            headers=["system", "policy std"],
            rows=list(outputs),
            metadata={"episodes": scale.episodes},
        )

    return CampaignPlan(experiment_id="table1", cells=cells, merge=merge)


def policy_std_table(
    scale: Optional[GridWorldScale] = None,
    agent_counts: Sequence[int] = (1, 4, 8, 12),
) -> TableResult:
    """Standard deviation of the consensus policy (paper Table I)."""
    return policy_std_plan(scale, agent_counts).run_serial()


def weight_bits_cell(consensus: dict, names: Optional[list], datatype: str) -> list:
    """Bit statistics of the named parameter tensors (all of them for ``None``).

    Returns ``[min, max, one_bit_count, value_count]`` — integer bit counts
    rather than fractions, so per-parameter outputs merge back into the
    whole-policy breakdown without floating-point error.
    """
    selected = consensus if names is None else {name: consensus[name] for name in names}
    flat = np.concatenate(
        [np.asarray(value, dtype=np.float64).reshape(-1) for value in selected.values()]
    )
    resolved = resolve_datatype(datatype)
    codes, _context = resolved.encode(flat)
    return [
        float(flat.min()),
        float(flat.max()),
        count_ones(codes, resolved.bit_width),
        int(flat.size),
    ]


def weight_distribution_plan(
    scale: Optional[GridWorldScale] = None,
    datatype: Optional[str] = None,
    cache: Optional[PolicyCache] = None,
) -> CampaignPlan:
    """Decompose Fig. 3d into one cell per parameter tensor of the policy.

    The fixed-point Q formats encode elementwise, so per-parameter bit counts
    sum exactly to the whole-policy breakdown.  The int8 affine codec derives
    its scale from the *whole* tensor being encoded — slicing would change the
    encoding — so int8 keeps a single whole-policy cell.
    """
    scale = scale or GridWorldScale.fast()
    datatype = datatype or scale.datatype
    cache = cache or default_cache()
    # Training (when needed) happens here, in the parent; cells only read.
    parameter_names = sorted(cache.gridworld_policies(scale)["consensus"])
    consensus_ref = cache.gridworld_consensus_ref(scale)
    resolved = resolve_datatype(datatype)
    slices = (
        [None] if resolved.name == "int8" else [[name] for name in parameter_names]
    )
    cells = [
        CellTask(
            experiment_id="fig3d",
            key=("parameters", "all" if names is None else names[0]),
            fn=weight_bits_cell,
            kwargs={"consensus": consensus_ref, "names": names, "datatype": datatype},
        )
        for names in slices
    ]

    def merge(outputs):
        minimum = min(output[0] for output in outputs)
        maximum = max(output[1] for output in outputs)
        ones = sum(int(output[2]) for output in outputs)
        total_bits = sum(int(output[3]) for output in outputs) * resolved.bit_width
        one_fraction = ones / total_bits if total_bits else 0.0
        rows = [
            ["min weight", minimum],
            ["max weight", maximum],
            ["0 bits (%)", (1.0 - one_fraction) * 100.0],
            ["1 bits (%)", one_fraction * 100.0],
            ["total bits", float(total_bits)],
        ]
        return TableResult(
            title=f"Policy weight distribution under {datatype} storage (Fig. 3d)",
            headers=["quantity", "value"],
            rows=rows,
            metadata={"datatype": datatype},
        )

    return CampaignPlan(experiment_id="fig3d", cells=cells, merge=merge)


def weight_distribution(
    scale: Optional[GridWorldScale] = None,
    datatype: Optional[str] = None,
    consensus: Optional[dict] = None,
) -> TableResult:
    """Weight range and 0/1 bit breakdown of the trained policy (Fig. 3d).

    ``consensus`` may carry an already-trained policy state dict (e.g. from
    the policy cache); otherwise a fresh FRL system is trained at ``scale``.
    """
    scale = scale or GridWorldScale.fast()
    datatype = datatype or scale.datatype
    if consensus is None:
        system = build_gridworld_frl_system(scale)
        system.train(scale.episodes)
        consensus = system.consensus_state()
    breakdown = bit_breakdown(consensus, datatype=datatype)
    rows = [
        ["min weight", breakdown.min_value],
        ["max weight", breakdown.max_value],
        ["0 bits (%)", breakdown.zero_bit_fraction * 100.0],
        ["1 bits (%)", breakdown.one_bit_fraction * 100.0],
        ["total bits", float(breakdown.total_bits)],
    ]
    return TableResult(
        title=f"Policy weight distribution under {datatype} storage (Fig. 3d)",
        headers=["quantity", "value"],
        rows=rows,
        metadata={"datatype": datatype},
    )
