"""Shared helpers for inference-time fault experiments."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.config import DroneScale, GridWorldScale
from repro.core.workloads import drone_agent_config, gridworld_agent_config
from repro.envs.base import Environment
from repro.rl import QLearningAgent, ReinforceAgent
from repro.utils.rng import as_rng

StateDict = Dict[str, np.ndarray]


def gridworld_agent_with_state(scale: GridWorldScale, state: StateDict, rng=None) -> QLearningAgent:
    """A GridWorld agent whose Q-network holds ``state`` (greedy inference)."""
    agent = QLearningAgent(gridworld_agent_config(scale), rng=as_rng(rng))
    agent.load_state_dict(state)
    return agent


def drone_agent_with_state(scale: DroneScale, state: StateDict, rng=None) -> ReinforceAgent:
    """A DroneNav agent whose CNN policy holds ``state`` (greedy inference)."""
    agent = ReinforceAgent(drone_agent_config(scale), rng=as_rng(rng))
    agent.load_state_dict(state)
    return agent


def success_rate_over_envs(
    agent, envs: Sequence[Environment], attempts_per_env: int
) -> float:
    """Average GridWorld success rate over ``envs`` with a greedy policy."""
    from repro.rl.rollout import evaluate_success_rate

    rates = [evaluate_success_rate(agent, env, attempts=attempts_per_env) for env in envs]
    return float(np.mean(rates))


def flight_distance_over_envs(
    agent, envs: Sequence[Environment], attempts_per_env: int
) -> float:
    """Average DroneNav safe flight distance over ``envs`` with a greedy policy."""
    from repro.rl.rollout import evaluate_flight_distance

    distances = [
        evaluate_flight_distance(agent, env, attempts=attempts_per_env) for env in envs
    ]
    return float(np.mean(distances))


def single_step_fault_success_rate(
    scale: GridWorldScale,
    clean_state: StateDict,
    corrupted_state: StateDict,
    envs: Sequence[Environment],
    attempts_per_env: int,
    rng=None,
) -> float:
    """Success rate when the fault affects only one action step (Trans-1).

    For every attempt one step index is drawn at random; at that step the
    action is computed with the corrupted policy (a faulty read register),
    every other step uses the clean policy (memory is intact).
    """
    rng = as_rng(rng)
    clean_agent = gridworld_agent_with_state(scale, clean_state, rng=rng)
    faulty_agent = gridworld_agent_with_state(scale, corrupted_state, rng=rng)
    successes = 0
    total = 0
    for env in envs:
        for _attempt in range(attempts_per_env):
            faulty_step = int(rng.integers(0, scale.max_steps))
            observation = env.reset()
            done = False
            step = 0
            outcome = ""
            while not done:
                actor = faulty_agent if step == faulty_step else clean_agent
                action = actor.select_action(observation, explore=False)
                result = env.step(action)
                observation = result.observation
                done = result.done
                outcome = str(result.info.get("outcome", ""))
                step += 1
            successes += int(outcome == "goal")
            total += 1
    return successes / total if total else 0.0
