"""Experiment functions — one per paper figure/table (DESIGN.md §4)."""

from repro.core.experiments.gridworld_training import (
    convergence_after_fault,
    gridworld_training_heatmap,
    policy_std_table,
    weight_distribution,
)
from repro.core.experiments.gridworld_inference import (
    evaluate_gridworld_policy,
    gridworld_inference_sweep,
)
from repro.core.experiments.drone_training import (
    communication_interval_study,
    drone_count_sweep,
    drone_training_heatmap,
)
from repro.core.experiments.drone_inference import datatype_study, evaluate_drone_policy
from repro.core.experiments.mitigation_experiments import (
    inference_mitigation_sweep,
    training_mitigation_heatmap,
)
from repro.core.experiments.overhead import overhead_comparison

__all__ = [
    "gridworld_training_heatmap",
    "convergence_after_fault",
    "policy_std_table",
    "weight_distribution",
    "gridworld_inference_sweep",
    "evaluate_gridworld_policy",
    "drone_training_heatmap",
    "drone_count_sweep",
    "communication_interval_study",
    "datatype_study",
    "evaluate_drone_policy",
    "training_mitigation_heatmap",
    "inference_mitigation_sweep",
    "overhead_comparison",
]
