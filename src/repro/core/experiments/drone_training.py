"""DroneNav training-time experiments (paper Fig. 5 and Fig. 6)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import DroneScale
from repro.core.fault_callbacks import make_training_fault
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.results import HeatmapResult, SweepResult
from repro.core.workloads import build_drone_frl_system, build_drone_single_system
from repro.federated import CommunicationSchedule
from repro.federated.lockstep import (
    average_flight_distance_group_lockstep,
    lockstep_compatible,
    train_group_lockstep,
)
from repro.runtime.cells import CampaignPlan, CellTask, accumulate_heatmap, grid_merge_order
from repro.runtime.vectorize import register_group_runner
from repro.utils.rng import RngFactory

DEFAULT_DRONE_BERS = (0.0, 1e-3, 1e-2, 1e-1)
DEFAULT_EPISODE_FRACTIONS = (0.25, 0.75)


def _injection_episodes(scale: DroneScale, fractions: Sequence[float]) -> list:
    total = max(1, scale.fine_tune_episodes)
    return sorted({max(0, min(total - 1, int(round(total * f)))) for f in fractions})


def _build_system(scale: DroneScale, location: str, initial_state, seed_offset: int):
    if location == "single":
        return build_drone_single_system(
            scale, seed_offset=seed_offset, initial_state=initial_state, environment_count=1
        )
    return build_drone_frl_system(scale, seed_offset=seed_offset, initial_state=initial_state)


def drone_training_cell(
    location: str,
    scale: DroneScale,
    pretrained: dict,
    ber: float,
    injection_episode: int,
    repeat: int,
    row: int,
    column: int,
) -> float:
    """One (repeat, BER, injection-episode) cell of the Fig. 5 heatmaps."""
    system = _build_system(scale, location, pretrained, seed_offset=repeat)
    fault_location = "server" if location == "server" else "agent"
    callback = make_training_fault(
        location=fault_location,
        bit_error_rate=ber,
        injection_episode=injection_episode,
        datatype=scale.datatype,
        rng=RngFactory(scale.seed).stream("drone-fi", repeat, row, column),
    )
    system.train(scale.fine_tune_episodes, callbacks=[callback])
    return system.average_flight_distance(attempts=scale.evaluation_attempts)


def drone_training_plan(
    location: str = "server",
    scale: Optional[DroneScale] = None,
    ber_values: Sequence[float] = DEFAULT_DRONE_BERS,
    episode_fractions: Sequence[float] = DEFAULT_EPISODE_FRACTIONS,
    cache: Optional[PolicyCache] = None,
) -> CampaignPlan:
    """Decompose a Fig. 5 heatmap into independent campaign cells.

    The behaviour-cloned baseline policy is trained (or found) in the
    disk-backed policy cache once, at plan time; cells reference it by
    :class:`~repro.runtime.residency.PolicyRef`, so each pooled worker decodes
    it once instead of unpickling it per cell.
    """
    scale = scale or DroneScale.fast()
    if location not in ("agent", "server", "single"):
        raise ValueError(f"location must be 'agent', 'server' or 'single', got {location!r}")
    cache = cache or default_cache()
    ber_values = tuple(ber_values)
    pretrained = cache.drone_policy_ref(scale)
    episodes = _injection_episodes(scale, episode_fractions)
    experiment_id = {"agent": "fig5a", "server": "fig5b", "single": "fig5c"}[location]
    cells = [
        CellTask(
            experiment_id=experiment_id,
            key=("repeat", repeat, "ber", row, "episode", column),
            fn=drone_training_cell,
            kwargs={
                "location": location,
                "scale": scale,
                "pretrained": pretrained,
                "ber": ber_values[row],
                "injection_episode": episodes[column],
                "repeat": repeat,
                "row": row,
                "column": column,
            },
        )
        for repeat, row, column in grid_merge_order(scale.repeats, len(ber_values), len(episodes))
    ]

    def merge(outputs):
        values = accumulate_heatmap(outputs, scale.repeats, len(ber_values), len(episodes))
        values /= scale.repeats
        title = {
            "agent": "DroneNav fine-tuning, agent faults (Fig. 5a)",
            "server": "DroneNav fine-tuning, server faults (Fig. 5b)",
            "single": "DroneNav fine-tuning, single-drone system (Fig. 5c)",
        }[location]
        return HeatmapResult(
            title=title,
            metric="safe flight distance (m)",
            row_axis="BER",
            column_axis="episode",
            row_labels=[f"{ber:g}" for ber in ber_values],
            column_labels=list(episodes),
            values=values,
            metadata={"location": location},
        )

    return CampaignPlan(experiment_id=experiment_id, cells=cells, merge=merge)


def drone_training_heatmap(
    location: str = "server",
    scale: Optional[DroneScale] = None,
    ber_values: Sequence[float] = DEFAULT_DRONE_BERS,
    episode_fractions: Sequence[float] = DEFAULT_EPISODE_FRACTIONS,
    cache: Optional[PolicyCache] = None,
) -> HeatmapResult:
    """Safe flight distance over (BER × injection episode) during fine-tuning.

    ``location`` selects the paper's panels: ``"agent"`` (Fig. 5a),
    ``"server"`` (Fig. 5b) and ``"single"`` (Fig. 5c).  Fine-tuning starts
    from the offline pre-trained policy, matching the paper's transfer-learning
    setup.  Implemented as the serial execution of :func:`drone_training_plan`.
    """
    return drone_training_plan(location, scale, ber_values, episode_fractions, cache).run_serial()


def drone_count_cell(
    scale: DroneScale,
    count: int,
    location: str,
    ber: float,
    ber_index: int,
    pretrained: dict,
) -> float:
    """One (drone count, fault location, BER) point of the Fig. 6a sweep."""
    count_scale = scale.with_drones(count)
    system = build_drone_frl_system(count_scale, initial_state=pretrained)
    callback = make_training_fault(
        location=location,
        bit_error_rate=ber,
        injection_episode=max(0, scale.fine_tune_episodes // 2),
        datatype=scale.datatype,
        rng=RngFactory(scale.seed).stream("count", count, location, ber_index),
    )
    system.train(scale.fine_tune_episodes, callbacks=[callback])
    return system.average_flight_distance(attempts=scale.evaluation_attempts)


def drone_count_plan(
    scale: Optional[DroneScale] = None,
    drone_counts: Sequence[int] = (2, 4, 6),
    ber_values: Sequence[float] = (0.0, 1e-2, 1e-1),
    cache: Optional[PolicyCache] = None,
) -> CampaignPlan:
    """Decompose the Fig. 6a sweep into one cell per (count, location, BER).

    Every swarm size gets its own behaviour-cloned baseline, trained (or
    found) in the policy cache at plan time and referenced from the cells, so
    a pool spreads the per-point fine-tuning runs without ever retraining a
    baseline in a worker.
    """
    scale = scale or DroneScale.fast()
    cache = cache or default_cache()
    drone_counts = tuple(drone_counts)
    ber_values = tuple(ber_values)
    pretrained_refs = {
        count: cache.drone_policy_ref(scale.with_drones(count)) for count in drone_counts
    }
    locations = ("server", "agent")
    cells = [
        CellTask(
            experiment_id="fig6a",
            key=("drones", count, "location", location, "ber", ber_index),
            fn=drone_count_cell,
            kwargs={
                "scale": scale,
                "count": count,
                "location": location,
                "ber": ber,
                "ber_index": ber_index,
                "pretrained": pretrained_refs[count],
            },
        )
        for count in drone_counts
        for location in locations
        for ber_index, ber in enumerate(ber_values)
    ]

    def merge(outputs):
        series: Dict[str, list] = {}
        cursor = iter(outputs)
        for count in drone_counts:
            for location in locations:
                series[f"({count},{location})"] = [next(cursor) for _ in ber_values]
        return SweepResult(
            title="Resilience vs number of drones (Fig. 6a)",
            metric="safe flight distance (m)",
            x_axis="BER",
            x_values=[f"{ber:g}" for ber in ber_values],
            series=series,
            metadata={"drone_counts": list(drone_counts)},
        )

    return CampaignPlan(experiment_id="fig6a", cells=cells, merge=merge)


def drone_count_sweep(
    scale: Optional[DroneScale] = None,
    drone_counts: Sequence[int] = (2, 4, 6),
    ber_values: Sequence[float] = (0.0, 1e-2, 1e-1),
    cache: Optional[PolicyCache] = None,
) -> SweepResult:
    """Flight distance vs BER for different swarm sizes and fault locations.

    Reproduces Fig. 6a: one series per (drone count, fault location) pair.
    More drones smooth agent faults more strongly and generalize better under
    server faults.  Implemented as the serial execution of
    :func:`drone_count_plan`, so it matches the parallel campaign runner bit
    for bit.
    """
    return drone_count_plan(scale, drone_counts, ber_values, cache).run_serial()


_INTERVAL_SCENARIOS = ("no_fault", "agent_fault", "server_fault")


def communication_interval_cell(
    scale: DroneScale,
    multiplier: int,
    scenario: str,
    fault_ber: float,
    switch_episode: int,
    injection_episode: int,
    pretrained: dict,
) -> tuple:
    """One (interval multiplier, fault scenario) run of the Fig. 6b study.

    Returns ``(flight_distance, communication_rounds)``; the merge step only
    uses the round count from the ``no_fault`` scenario, matching the
    historical serial loop.
    """
    schedule = CommunicationSchedule(
        base_interval=scale.communication_interval,
        multiplier=multiplier,
        switch_episode=switch_episode,
    )
    system = build_drone_frl_system(scale, initial_state=pretrained, schedule=schedule)
    callbacks = []
    if scenario != "no_fault":
        location = "agent" if scenario == "agent_fault" else "server"
        callbacks.append(
            make_training_fault(
                location=location,
                bit_error_rate=fault_ber,
                injection_episode=injection_episode,
                datatype=scale.datatype,
                rng=RngFactory(scale.seed).stream("interval", multiplier, scenario),
            )
        )
    log = system.train(scale.fine_tune_episodes, callbacks=callbacks)
    distance = system.average_flight_distance(attempts=scale.evaluation_attempts)
    return distance, float(log.communication_count)


def communication_interval_plan(
    scale: Optional[DroneScale] = None,
    interval_multipliers: Sequence[int] = (1, 2, 3),
    fault_ber: float = 1e-2,
    cache: Optional[PolicyCache] = None,
) -> CampaignPlan:
    """Decompose the Fig. 6b study into one cell per (multiplier, scenario)."""
    scale = scale or DroneScale.fast()
    cache = cache or default_cache()
    interval_multipliers = tuple(interval_multipliers)
    pretrained = cache.drone_policy_ref(scale)
    switch_episode = max(1, scale.fine_tune_episodes // 3)
    injection_episode = max(switch_episode, scale.fine_tune_episodes - 2)
    cells = [
        CellTask(
            experiment_id="fig6b",
            key=("multiplier", multiplier, "scenario", scenario),
            fn=communication_interval_cell,
            kwargs={
                "scale": scale,
                "multiplier": multiplier,
                "scenario": scenario,
                "fault_ber": fault_ber,
                "switch_episode": switch_episode,
                "injection_episode": injection_episode,
                "pretrained": pretrained,
            },
        )
        for multiplier in interval_multipliers
        for scenario in _INTERVAL_SCENARIOS
    ]

    def merge(outputs):
        series: Dict[str, list] = {
            "no_fault": [],
            "agent_fault": [],
            "server_fault": [],
            "communication_rounds": [],
        }
        cursor = iter(outputs)
        for _multiplier in interval_multipliers:
            for scenario in _INTERVAL_SCENARIOS:
                distance, rounds = next(cursor)
                series[scenario].append(distance)
                if scenario == "no_fault":
                    series["communication_rounds"].append(rounds)
        return SweepResult(
            title="Communication interval trade-off (Fig. 6b)",
            metric="safe flight distance (m) / rounds",
            x_axis="interval multiplier",
            x_values=[f"{m}x" for m in interval_multipliers],
            series=series,
            metadata={"fault_ber": fault_ber, "switch_episode": switch_episode},
        )

    return CampaignPlan(experiment_id="fig6b", cells=cells, merge=merge)


def communication_interval_study(
    scale: Optional[DroneScale] = None,
    interval_multipliers: Sequence[int] = (1, 2, 3),
    fault_ber: float = 1e-2,
    cache: Optional[PolicyCache] = None,
) -> SweepResult:
    """Resilience / communication-cost trade-off of the interval (Fig. 6b).

    The communication interval is multiplied by each factor after one third of
    the fine-tuning episodes (the paper switches after the 2000th episode).
    For every multiplier the no-fault, agent-fault and server-fault flight
    distances are measured along with the number of communication rounds.
    Implemented as the serial execution of :func:`communication_interval_plan`.
    """
    return communication_interval_plan(scale, interval_multipliers, fault_ber, cache).run_serial()


# ------------------------------------------------------------ vectorized groups
# Each group runner rebuilds every cell's system and fault callback with the
# exact serial prologue (independent SeedSequence streams make build order
# irrelevant), then trains and evaluates all cells as lanes of one lockstep
# pass.  If the group cannot run in lockstep (mixed env configs or network
# topologies, activation-target faults), it falls back to the serial cell
# function — construction is side-effect free, so the discarded systems cost
# nothing but time.


def _training_cell_parts(kwargs: dict) -> tuple:
    """The (system, callbacks) pair :func:`drone_training_cell` would build."""
    scale = kwargs["scale"]
    system = _build_system(
        scale, kwargs["location"], kwargs["pretrained"], seed_offset=kwargs["repeat"]
    )
    fault_location = "server" if kwargs["location"] == "server" else "agent"
    callback = make_training_fault(
        location=fault_location,
        bit_error_rate=kwargs["ber"],
        injection_episode=kwargs["injection_episode"],
        datatype=scale.datatype,
        rng=RngFactory(scale.seed).stream(
            "drone-fi", kwargs["repeat"], kwargs["row"], kwargs["column"]
        ),
    )
    return system, [callback]


def _count_cell_parts(kwargs: dict) -> tuple:
    """The (system, callbacks) pair :func:`drone_count_cell` would build."""
    scale = kwargs["scale"]
    count_scale = scale.with_drones(kwargs["count"])
    system = build_drone_frl_system(count_scale, initial_state=kwargs["pretrained"])
    callback = make_training_fault(
        location=kwargs["location"],
        bit_error_rate=kwargs["ber"],
        injection_episode=max(0, scale.fine_tune_episodes // 2),
        datatype=scale.datatype,
        rng=RngFactory(scale.seed).stream(
            "count", kwargs["count"], kwargs["location"], kwargs["ber_index"]
        ),
    )
    return system, [callback]


def _interval_cell_parts(kwargs: dict) -> tuple:
    """The (system, callbacks) pair :func:`communication_interval_cell` builds."""
    scale = kwargs["scale"]
    schedule = CommunicationSchedule(
        base_interval=scale.communication_interval,
        multiplier=kwargs["multiplier"],
        switch_episode=kwargs["switch_episode"],
    )
    system = build_drone_frl_system(
        scale, initial_state=kwargs["pretrained"], schedule=schedule
    )
    callbacks = []
    if kwargs["scenario"] != "no_fault":
        location = "agent" if kwargs["scenario"] == "agent_fault" else "server"
        callbacks.append(
            make_training_fault(
                location=location,
                bit_error_rate=kwargs["fault_ber"],
                injection_episode=kwargs["injection_episode"],
                datatype=scale.datatype,
                rng=RngFactory(scale.seed).stream(
                    "interval", kwargs["multiplier"], kwargs["scenario"]
                ),
            )
        )
    return system, callbacks


def _run_group(kwargs_list, build_parts, serial_fn, with_rounds: bool = False):
    """Train and evaluate a group of cells in lockstep (or fall back serially)."""
    systems, callbacks = [], []
    for kwargs in kwargs_list:
        system, cell_callbacks = build_parts(kwargs)
        systems.append(system)
        callbacks.append(cell_callbacks)
    attempts = {kwargs["scale"].evaluation_attempts for kwargs in kwargs_list}
    if len(attempts) != 1 or not lockstep_compatible(systems, callbacks):
        return [serial_fn(**kwargs) for kwargs in kwargs_list]
    episodes = [kwargs["scale"].fine_tune_episodes for kwargs in kwargs_list]
    logs = train_group_lockstep(systems, callbacks, episodes)
    distances = average_flight_distance_group_lockstep(systems, attempts=attempts.pop())
    if with_rounds:
        return [
            (distance, float(log.communication_count))
            for distance, log in zip(distances, logs)
        ]
    return distances


def _drone_training_group(kwargs_list):
    """Vectorized evaluator for a group of :func:`drone_training_cell` cells."""
    return _run_group(kwargs_list, _training_cell_parts, drone_training_cell)


def _drone_count_group(kwargs_list):
    """Vectorized evaluator for a group of :func:`drone_count_cell` cells."""
    return _run_group(kwargs_list, _count_cell_parts, drone_count_cell)


def _communication_interval_group(kwargs_list):
    """Vectorized evaluator for :func:`communication_interval_cell` groups."""
    return _run_group(
        kwargs_list, _interval_cell_parts, communication_interval_cell, with_rounds=True
    )


register_group_runner(drone_training_cell, _drone_training_group)
register_group_runner(drone_count_cell, _drone_count_group)
register_group_runner(communication_interval_cell, _communication_interval_group)
