"""DroneNav inference-time experiments (paper §IV-B-3 data-type study)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import DroneScale
from repro.core.experiments.inference_utils import (
    drone_agent_with_state,
    flight_distance_over_envs,
)
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.results import SweepResult
from repro.core.workloads import drone_environments
from repro.faults import FaultInjector
from repro.utils.rng import RngFactory

StateDict = Dict[str, np.ndarray]

DEFAULT_DATATYPES = ("Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)")
DEFAULT_DATATYPE_BERS = (0.0, 1e-3, 1e-2)


def evaluate_drone_policy(
    state: StateDict,
    scale: Optional[DroneScale] = None,
    attempts_per_env: int = 1,
    rng=None,
) -> float:
    """Average safe flight distance of ``state`` over the canonical drone worlds."""
    scale = scale or DroneScale.fast()
    envs = drone_environments(scale)
    agent = drone_agent_with_state(scale, state, rng=rng)
    return flight_distance_over_envs(agent, envs, attempts_per_env)


def datatype_study(
    scale: Optional[DroneScale] = None,
    datatypes: Sequence[str] = DEFAULT_DATATYPES,
    ber_values: Sequence[float] = DEFAULT_DATATYPE_BERS,
    cache: Optional[PolicyCache] = None,
    repeats: int = 2,
) -> SweepResult:
    """Inference resilience of fixed-point data types (paper §IV-B-3).

    The policy weights are stored in each Q(sign, integer, fraction) format
    and corrupted at increasing BER; a format whose range barely covers the
    parameter distribution (Q(1,4,11)) limits the damage a high-order bit flip
    can do, while an unnecessarily wide format (Q(1,10,5)) produces large
    outliers.
    """
    scale = scale or DroneScale.fast()
    cache = cache or default_cache()
    policy = cache.drone_policy(scale)["policy"]
    envs = drone_environments(scale)
    rngs = RngFactory(scale.seed)
    series: Dict[str, list] = {name: [] for name in datatypes}
    attempts = scale.evaluation_attempts
    for ber_index, ber in enumerate(ber_values):
        for datatype in datatypes:
            distances = []
            for repeat in range(repeats):
                stream = rngs.stream("datatype", datatype, ber_index, repeat)
                injector = FaultInjector(datatype=datatype, model="transient", rng=stream)
                corrupted = injector.corrupt_state_dict(policy, ber)
                agent = drone_agent_with_state(scale, corrupted, rng=stream)
                distances.append(flight_distance_over_envs(agent, envs, attempts))
            series[datatype].append(float(np.mean(distances)))
    return SweepResult(
        title="Data-type resilience study (paper §IV-B-3)",
        metric="safe flight distance (m)",
        x_axis="BER",
        x_values=[f"{ber:g}" for ber in ber_values],
        series=series,
        metadata={"repeats": repeats},
    )
