"""DroneNav inference-time experiments (paper §IV-B-3 data-type study)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import DroneScale
from repro.core.experiments.inference_utils import (
    drone_agent_with_state,
    flight_distance_over_envs,
)
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.results import SweepResult
from repro.core.workloads import drone_environments
from repro.faults import FaultInjector
from repro.runtime.cells import CampaignPlan, CellTask
from repro.utils.rng import RngFactory

StateDict = Dict[str, np.ndarray]

DEFAULT_DATATYPES = ("Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)")
DEFAULT_DATATYPE_BERS = (0.0, 1e-3, 1e-2)


def evaluate_drone_policy(
    state: StateDict,
    scale: Optional[DroneScale] = None,
    attempts_per_env: int = 1,
    rng=None,
) -> float:
    """Average safe flight distance of ``state`` over the canonical drone worlds."""
    scale = scale or DroneScale.fast()
    envs = drone_environments(scale)
    agent = drone_agent_with_state(scale, state, rng=rng)
    return flight_distance_over_envs(agent, envs, attempts_per_env)


def datatype_cell(
    scale: DroneScale,
    datatype: str,
    ber: float,
    ber_index: int,
    repeat: int,
    policy: StateDict,
    attempts: int,
) -> float:
    """One (datatype, BER, repeat) draw of the data-type study.

    The injector and the evaluation share one RNG stream keyed by the cell
    coordinates, exactly as the historical serial loop did, so decomposed
    execution reproduces the same flight distances bit for bit.
    """
    envs = drone_environments(scale)
    stream = RngFactory(scale.seed).stream("datatype", datatype, ber_index, repeat)
    injector = FaultInjector(datatype=datatype, model="transient", rng=stream)
    corrupted = injector.corrupt_state_dict(policy, ber)
    agent = drone_agent_with_state(scale, corrupted, rng=stream)
    return flight_distance_over_envs(agent, envs, attempts)


def datatype_study_plan(
    scale: Optional[DroneScale] = None,
    datatypes: Sequence[str] = DEFAULT_DATATYPES,
    ber_values: Sequence[float] = DEFAULT_DATATYPE_BERS,
    cache: Optional[PolicyCache] = None,
    repeats: int = 2,
) -> CampaignPlan:
    """Decompose the data-type study into one cell per (BER, datatype, repeat)."""
    scale = scale or DroneScale.fast()
    cache = cache or default_cache()
    datatypes = tuple(datatypes)
    ber_values = tuple(ber_values)
    policy = cache.drone_policy_ref(scale)
    attempts = scale.evaluation_attempts
    cells = [
        CellTask(
            experiment_id="datatypes",
            key=("ber", ber_index, "datatype", datatype, "repeat", repeat),
            fn=datatype_cell,
            kwargs={
                "scale": scale,
                "datatype": datatype,
                "ber": ber,
                "ber_index": ber_index,
                "repeat": repeat,
                "policy": policy,
                "attempts": attempts,
            },
        )
        for ber_index, ber in enumerate(ber_values)
        for datatype in datatypes
        for repeat in range(repeats)
    ]

    def merge(outputs):
        series: Dict[str, list] = {name: [] for name in datatypes}
        cursor = iter(outputs)
        for _ber_index in range(len(ber_values)):
            for datatype in datatypes:
                distances = [next(cursor) for _ in range(repeats)]
                series[datatype].append(float(np.mean(distances)))
        return SweepResult(
            title="Data-type resilience study (paper §IV-B-3)",
            metric="safe flight distance (m)",
            x_axis="BER",
            x_values=[f"{ber:g}" for ber in ber_values],
            series=series,
            metadata={"repeats": repeats},
        )

    return CampaignPlan(experiment_id="datatypes", cells=cells, merge=merge)


def datatype_study(
    scale: Optional[DroneScale] = None,
    datatypes: Sequence[str] = DEFAULT_DATATYPES,
    ber_values: Sequence[float] = DEFAULT_DATATYPE_BERS,
    cache: Optional[PolicyCache] = None,
    repeats: int = 2,
) -> SweepResult:
    """Inference resilience of fixed-point data types (paper §IV-B-3).

    The policy weights are stored in each Q(sign, integer, fraction) format
    and corrupted at increasing BER; a format whose range barely covers the
    parameter distribution (Q(1,4,11)) limits the damage a high-order bit flip
    can do, while an unnecessarily wide format (Q(1,10,5)) produces large
    outliers.  Implemented as the serial execution of
    :func:`datatype_study_plan`.
    """
    return datatype_study_plan(scale, datatypes, ber_values, cache, repeats).run_serial()
