"""Mitigation experiments: checkpoint recovery and anomaly detection (Figs. 7-8)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import DroneScale, GridWorldScale
from repro.core.experiments.drone_training import (
    DEFAULT_DRONE_BERS,
    _injection_episodes as _drone_injection_episodes,
)
from repro.core.experiments.gridworld_training import (
    DEFAULT_BERS,
    DEFAULT_EPISODE_FRACTIONS,
    _injection_episodes as _gridworld_injection_episodes,
)
from repro.core.experiments.inference_utils import (
    drone_agent_with_state,
    flight_distance_over_envs,
    gridworld_agent_with_state,
    success_rate_over_envs,
)
from repro.core.fault_callbacks import make_training_fault
from repro.core.pretrained import PolicyCache, default_cache
from repro.core.results import HeatmapResult, SweepResult, summarize_improvement
from repro.core.workloads import (
    build_drone_frl_system,
    build_gridworld_frl_system,
    drone_environments,
    gridworld_environments,
)
from repro.faults import FaultInjector
from repro.mitigation import RangeAnomalyDetector, ServerCheckpointCallback
from repro.runtime.cells import CampaignPlan, CellTask, accumulate_heatmap, grid_merge_order
from repro.utils.rng import RngFactory


def training_mitigation_cell(
    workload: str,
    location: str,
    scale,
    pretrained: Optional[dict],
    ber: float,
    injection_episode: int,
    total_episodes: int,
    detection_k: int,
    drop_percent: float,
    checkpoint_interval: int,
    repeat: int,
    row: int,
    column: int,
) -> float:
    """One (repeat, BER, injection-episode) cell of the Fig. 7 heatmaps."""
    if workload == "gridworld":
        system = build_gridworld_frl_system(scale, seed_offset=repeat)
    else:
        system = build_drone_frl_system(scale, seed_offset=repeat, initial_state=pretrained)
    fault = make_training_fault(
        location=location,
        bit_error_rate=ber,
        injection_episode=injection_episode,
        datatype=scale.datatype,
        rng=RngFactory(scale.seed).stream("mitig", repeat, row, column),
    )
    protection = ServerCheckpointCallback(
        agent_count=system.agent_count,
        drop_percent=drop_percent,
        consecutive_episodes=detection_k,
        checkpoint_interval=checkpoint_interval,
    )
    system.train(total_episodes, callbacks=[fault, protection])
    if workload == "gridworld":
        return system.average_success_rate(attempts=scale.evaluation_attempts)
    return system.average_flight_distance(attempts=scale.evaluation_attempts)


def training_mitigation_plan(
    workload: str = "gridworld",
    location: str = "server",
    scale=None,
    ber_values: Optional[Sequence[float]] = None,
    episode_fractions: Sequence[float] = DEFAULT_EPISODE_FRACTIONS,
    drop_percent: float = 25.0,
    consecutive_episodes: Optional[int] = None,
    checkpoint_interval: int = 5,
    cache: Optional[PolicyCache] = None,
) -> CampaignPlan:
    """Decompose a Fig. 7 checkpoint-recovery heatmap into campaign cells."""
    if workload not in ("gridworld", "drone"):
        raise ValueError(f"workload must be 'gridworld' or 'drone', got {workload!r}")
    if location not in ("agent", "server"):
        raise ValueError(f"location must be 'agent' or 'server', got {location!r}")
    cache = cache or default_cache()
    pretrained = None
    if workload == "gridworld":
        scale = scale or GridWorldScale.fast()
        ber_values = tuple(ber_values) if ber_values is not None else DEFAULT_BERS
        episodes = _gridworld_injection_episodes(scale, episode_fractions)
        total_episodes = scale.episodes
        detection_k = consecutive_episodes or max(3, scale.episodes // 30)
        metric = "success rate (%)"
    else:
        scale = scale or DroneScale.fast()
        ber_values = tuple(ber_values) if ber_values is not None else DEFAULT_DRONE_BERS
        episodes = _drone_injection_episodes(scale, episode_fractions)
        total_episodes = scale.fine_tune_episodes
        detection_k = consecutive_episodes or max(1, scale.fine_tune_episodes // 6)
        metric = "safe flight distance (m)"
        pretrained = cache.drone_policy_ref(scale)

    experiment_id = "fig7a" if workload == "gridworld" else "fig7b"
    cells = [
        CellTask(
            experiment_id=experiment_id,
            key=("repeat", repeat, "ber", row, "episode", column),
            fn=training_mitigation_cell,
            kwargs={
                "workload": workload,
                "location": location,
                "scale": scale,
                "pretrained": pretrained,
                "ber": ber_values[row],
                "injection_episode": episodes[column],
                "total_episodes": total_episodes,
                "detection_k": detection_k,
                "drop_percent": drop_percent,
                "checkpoint_interval": checkpoint_interval,
                "repeat": repeat,
                "row": row,
                "column": column,
            },
        )
        for repeat, row, column in grid_merge_order(scale.repeats, len(ber_values), len(episodes))
    ]

    def merge(outputs):
        values = accumulate_heatmap(outputs, scale.repeats, len(ber_values), len(episodes))
        values /= scale.repeats
        if workload == "gridworld":
            values *= 100.0
        return HeatmapResult(
            title=f"Training with server checkpointing, {workload}, {location} faults (Fig. 7)",
            metric=metric,
            row_axis="BER",
            column_axis="episode",
            row_labels=[f"{ber:g}" for ber in ber_values],
            column_labels=list(episodes),
            values=values,
            metadata={
                "workload": workload,
                "location": location,
                "drop_percent": drop_percent,
                "consecutive_episodes": detection_k,
                "checkpoint_interval": checkpoint_interval,
            },
        )

    return CampaignPlan(experiment_id=experiment_id, cells=cells, merge=merge)


def training_mitigation_heatmap(
    workload: str = "gridworld",
    location: str = "server",
    scale=None,
    ber_values: Optional[Sequence[float]] = None,
    episode_fractions: Sequence[float] = DEFAULT_EPISODE_FRACTIONS,
    drop_percent: float = 25.0,
    consecutive_episodes: Optional[int] = None,
    checkpoint_interval: int = 5,
    cache: Optional[PolicyCache] = None,
) -> HeatmapResult:
    """Training-time fault recovery with server checkpointing (paper Fig. 7).

    Identical sweep to the unprotected training heatmaps, but the
    :class:`ServerCheckpointCallback` monitors reward drops and restores the
    checkpointed consensus policy.  ``consecutive_episodes`` (the paper's
    ``k``) defaults to a value proportional to the scaled-down episode count.
    """
    return training_mitigation_plan(
        workload,
        location,
        scale,
        ber_values,
        episode_fractions,
        drop_percent,
        consecutive_episodes,
        checkpoint_interval,
        cache,
    ).run_serial()


def inference_mitigation_cell(
    workload: str,
    scale,
    policy: dict,
    margin: float,
    ber: float,
    ber_index: int,
    repeat: int,
    attempts: int,
) -> tuple:
    """One (BER, repeat) draw of the Fig. 8 sweep.

    Returns ``(no_mitigation, mitigation, repaired_count)``.  The range
    detector is recalibrated on the clean policy inside the cell — calibration
    is deterministic, so this matches the historical calibrate-once loop.
    """
    stream = RngFactory(0).stream(workload, ber_index, repeat)
    injector = FaultInjector(datatype=scale.datatype, model="transient", rng=stream)
    corrupted = injector.corrupt_state_dict(policy, ber)
    detector = RangeAnomalyDetector(margin=margin)
    detector.calibrate(policy)
    if workload == "gridworld":
        envs = gridworld_environments(scale)

        def evaluate(state, rng):
            agent = gridworld_agent_with_state(scale, state, rng=rng)
            return success_rate_over_envs(agent, envs, attempts) * 100.0

    else:
        envs = drone_environments(scale)

        def evaluate(state, rng):
            agent = drone_agent_with_state(scale, state, rng=rng)
            return flight_distance_over_envs(agent, envs, attempts)

    plain = evaluate(corrupted, stream)
    repaired, repaired_count = detector.repair(corrupted)
    protected = evaluate(repaired, stream)
    return plain, protected, repaired_count


def inference_mitigation_plan(
    workload: str = "gridworld",
    scale=None,
    ber_values: Optional[Sequence[float]] = None,
    margin: float = 0.10,
    cache: Optional[PolicyCache] = None,
    repeats: int = 3,
) -> CampaignPlan:
    """Decompose a Fig. 8 anomaly-detection sweep into campaign cells."""
    if workload not in ("gridworld", "drone"):
        raise ValueError(f"workload must be 'gridworld' or 'drone', got {workload!r}")
    cache = cache or default_cache()
    if workload == "gridworld":
        scale = scale or GridWorldScale.fast()
        ber_values = tuple(ber_values) if ber_values is not None else (0.0, 0.005, 0.01, 0.02)
        policy = cache.gridworld_consensus_ref(scale)
        attempts = max(2, scale.evaluation_attempts // 2)
        metric = "success rate (%)"
    else:
        scale = scale or DroneScale.fast()
        ber_values = tuple(ber_values) if ber_values is not None else (0.0, 1e-3, 1e-2, 1e-1)
        policy = cache.drone_policy_ref(scale)
        attempts = scale.evaluation_attempts
        metric = "safe flight distance (m)"

    experiment_id = "fig8a" if workload == "gridworld" else "fig8b"
    cells = [
        CellTask(
            experiment_id=experiment_id,
            key=("ber", ber_index, "repeat", repeat),
            fn=inference_mitigation_cell,
            kwargs={
                "workload": workload,
                "scale": scale,
                "policy": policy,
                "margin": margin,
                "ber": ber,
                "ber_index": ber_index,
                "repeat": repeat,
                "attempts": attempts,
            },
        )
        for ber_index, ber in enumerate(ber_values)
        for repeat in range(repeats)
    ]

    def merge(outputs):
        series: Dict[str, list] = {"no_mitigation": [], "mitigation": []}
        repaired_counts = []
        for ber_index in range(len(ber_values)):
            cell_outputs = outputs[ber_index * repeats : (ber_index + 1) * repeats]
            plain = [cell[0] for cell in cell_outputs]
            protected = [cell[1] for cell in cell_outputs]
            repaired_counts.extend(cell[2] for cell in cell_outputs)
            series["no_mitigation"].append(float(np.mean(plain)))
            series["mitigation"].append(float(np.mean(protected)))
        result = SweepResult(
            title=f"Inference anomaly detection, {workload} (Fig. 8)",
            metric=metric,
            x_axis="BER",
            x_values=[f"{ber:g}" for ber in ber_values],
            series=series,
            metadata={"margin": margin, "repeats": repeats,
                      "total_repaired_values": int(np.sum(repaired_counts))},
        )
        improvement = summarize_improvement(result, "no_mitigation", "mitigation")
        result.metadata["max_improvement_factor"] = improvement
        return result

    return CampaignPlan(experiment_id=experiment_id, cells=cells, merge=merge)


def inference_mitigation_sweep(
    workload: str = "gridworld",
    scale=None,
    ber_values: Optional[Sequence[float]] = None,
    margin: float = 0.10,
    cache: Optional[PolicyCache] = None,
    repeats: int = 3,
) -> SweepResult:
    """Range-based anomaly detection during inference (paper Fig. 8).

    The detector is calibrated on the clean trained policy; for each BER the
    corrupted policy is evaluated with and without the repair step.  The
    metadata records the largest mitigation/no-mitigation improvement factor
    (the paper reports up to 3.3× for GridWorld and 1.4× for DroneNav).
    """
    return inference_mitigation_plan(
        workload, scale, ber_values, margin, cache, repeats
    ).run_serial()
