"""End-to-end protection-overhead comparison (paper Fig. 9)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.results import TableResult
from repro.droneperf import AIRSIM_DRONE, DJI_SPARK, DronePlatform, evaluate_protection_overheads


def overhead_comparison(
    platforms: Optional[Sequence[DronePlatform]] = None,
    schemes: Sequence[str] = ("baseline", "detection", "dmr", "tmr"),
) -> TableResult:
    """Flight-distance cost of DMR/TMR versus the proposed detection scheme.

    For each platform and protection scheme the analytical performance model
    estimates the safe flight distance; the table also reports the degradation
    relative to the proposed low-overhead detection scheme (paper Fig. 9).
    """
    platforms = list(platforms) if platforms is not None else [AIRSIM_DRONE, DJI_SPARK]
    rows = []
    for platform in platforms:
        result = evaluate_protection_overheads(platform, schemes=schemes)
        reference = result.estimates["detection"].flight_distance_m
        for scheme in schemes:
            estimate = result.estimates[scheme]
            degradation_vs_detection = (
                (reference - estimate.flight_distance_m) / reference * 100.0 if reference else 0.0
            )
            rows.append(
                [
                    platform.name,
                    scheme,
                    estimate.flight_distance_m,
                    estimate.flight_time_s / 60.0,
                    estimate.total_power_w,
                    degradation_vs_detection,
                ]
            )
    return TableResult(
        title="Protection-scheme overhead comparison (Fig. 9)",
        headers=[
            "platform",
            "scheme",
            "flight distance (m)",
            "flight time (min)",
            "total power (W)",
            "distance loss vs detection (%)",
        ],
        rows=rows,
        metadata={"schemes": list(schemes)},
    )
