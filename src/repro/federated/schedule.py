"""Communication-interval scheduling.

Agents upload their policies every ``base_interval`` episodes.  The paper's
Fig. 6b study multiplies the interval by 2x or 3x after a switch-over episode
(the 2000th) once drones mostly exploit, trading resilience against
communication cost.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CommunicationSchedule:
    """Episode-indexed communication policy."""

    base_interval: int = 1
    multiplier: int = 1
    switch_episode: int = 0

    def __post_init__(self) -> None:
        if self.base_interval <= 0:
            raise ValueError(f"base_interval must be positive, got {self.base_interval}")
        if self.multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {self.multiplier}")
        if self.switch_episode < 0:
            raise ValueError(f"switch_episode must be non-negative, got {self.switch_episode}")

    def interval_at(self, episode: int) -> int:
        """Communication interval in effect at ``episode``."""
        if episode < 0:
            raise ValueError(f"episode must be non-negative, got {episode}")
        if self.multiplier > 1 and episode >= self.switch_episode:
            return self.base_interval * self.multiplier
        return self.base_interval

    def should_communicate(self, episode: int) -> bool:
        """True when a communication round happens at the end of ``episode``."""
        interval = self.interval_at(episode)
        return (episode + 1) % interval == 0

    def communications_until(self, episodes: int) -> int:
        """Total number of communication rounds over ``episodes`` episodes."""
        return sum(1 for episode in range(episodes) if self.should_communicate(episode))
