"""A federated agent: a learning agent bound to its own environment."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.envs.base import Environment
from repro.rl.base import Agent, EpisodeStats
from repro.rl.rollout import evaluate_flight_distance, evaluate_success_rate


class FederatedAgent:
    """Pairs an RL agent with its local environment and reward history.

    The reward history is what the training-time fault detector monitors: a
    sustained drop in an agent's cumulative episode reward signals a fault in
    that agent (or, if most agents drop simultaneously, in the server).
    """

    def __init__(self, index: int, agent: Agent, env: Environment, name: Optional[str] = None) -> None:
        self.index = index
        self.agent = agent
        self.env = env
        self.name = name or f"agent-{index}"
        self.reward_history: List[float] = []
        self.episode_stats: List[EpisodeStats] = []

    def run_training_episode(self, episode_index: int) -> EpisodeStats:
        """One local training episode; records the cumulative reward."""
        self.agent.begin_episode(episode_index)
        stats = self.agent.run_episode(self.env, train=True)
        self.reward_history.append(stats.total_reward)
        self.episode_stats.append(stats)
        return stats

    # ------------------------------------------------------------- parameters
    def upload_state(self) -> Dict[str, np.ndarray]:
        """Parameters the agent shares with the server."""
        return self.agent.state_dict()

    def receive_state(self, state: Dict[str, np.ndarray]) -> None:
        """Install parameters received from the server."""
        self.agent.load_state_dict(state)

    # ------------------------------------------------------------- evaluation
    def success_rate(self, attempts: int = 20) -> float:
        """This agent's evaluation success rate on its own environment."""
        return evaluate_success_rate(self.agent, self.env, attempts=attempts)

    def flight_distance(self, attempts: int = 5) -> float:
        """This agent's mean evaluation flight distance on its own environment."""
        return evaluate_flight_distance(self.agent, self.env, attempts=attempts)

    def recent_average_reward(self, window: int = 20) -> float:
        """Mean reward over the last ``window`` episodes (0 if none yet)."""
        if not self.reward_history:
            return 0.0
        recent = self.reward_history[-window:]
        return float(np.mean(recent))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FederatedAgent(index={self.index}, name={self.name!r})"
