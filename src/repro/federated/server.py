"""The federated server: parameter aggregation and consensus tracking."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.federated.aggregation import AlphaSchedule, average_states, smoothing_average

StateDict = Dict[str, np.ndarray]


class FederatedServer:
    """Aggregates agent policies with a smoothing average.

    The server keeps the latest uploads, the consensus (plain average) policy
    and a running count of communication rounds, which drives the decay of
    the smoothing weight toward ``1/n``.
    """

    def __init__(self, alpha_schedule: Optional[AlphaSchedule] = None) -> None:
        self.alpha_schedule = alpha_schedule or AlphaSchedule()
        self.round_index = 0
        self._last_uploads: Optional[List[StateDict]] = None
        self._consensus: Optional[StateDict] = None

    @property
    def consensus(self) -> Optional[StateDict]:
        """The current consensus (plain average) policy, if any round happened."""
        return self._consensus

    def set_consensus(self, state: StateDict) -> None:
        """Overwrite the server's consensus policy (used by checkpoint recovery)."""
        self._consensus = {name: np.array(value, copy=True) for name, value in state.items()}

    def aggregate(self, uploads: Sequence[StateDict]) -> List[StateDict]:
        """One aggregation round; returns the personalized broadcast states."""
        uploads = [dict(state) for state in uploads]
        if not uploads:
            raise ValueError("aggregate requires at least one upload")
        alpha = self.alpha_schedule.alpha(self.round_index, len(uploads))
        broadcasts = smoothing_average(uploads, alpha)
        self._last_uploads = uploads
        self._consensus = average_states(uploads)
        self.round_index += 1
        return broadcasts

    def broadcast_from_consensus(self, agent_count: int) -> List[StateDict]:
        """Broadcast the stored consensus policy to every agent.

        Used after checkpoint recovery, when the server replaces faulty
        parameters with the checkpointed consensus rather than re-aggregating.
        """
        if self._consensus is None:
            raise RuntimeError("server has no consensus policy yet")
        return [
            {name: np.array(value, copy=True) for name, value in self._consensus.items()}
            for _ in range(agent_count)
        ]

    def reset(self) -> None:
        """Forget all rounds, uploads and consensus state (fresh training run)."""
        self.round_index = 0
        self._last_uploads = None
        self._consensus = None
