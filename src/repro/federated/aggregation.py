"""Smoothing-average parameter aggregation (paper Eq. 4 context).

After each communication round every agent ``i`` uploads its policy
``theta_i``; the server produces a personalized new parameter set

    theta_i_plus = alpha * theta_i + beta * sum_{j != i} theta_j,

with ``beta = (1 - alpha) / (n - 1)``.  As training proceeds the smoothing
constants converge to ``alpha = beta = 1/n``, at which point every agent
receives the plain average (consensus) policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

StateDict = Dict[str, np.ndarray]


def _check_states(states: Sequence[StateDict]) -> None:
    if not states:
        raise ValueError("need at least one agent state to aggregate")
    reference = set(states[0])
    for index, state in enumerate(states[1:], start=1):
        if set(state) != reference:
            raise KeyError(f"agent {index} state keys do not match agent 0")


def average_states(states: Sequence[StateDict]) -> StateDict:
    """Plain element-wise average of agent states (the consensus policy)."""
    _check_states(states)
    result: StateDict = {}
    for name in states[0]:
        result[name] = np.mean([np.asarray(state[name], dtype=np.float64) for state in states], axis=0)
    return result


def smoothing_average(states: Sequence[StateDict], alpha: float) -> List[StateDict]:
    """Personalized smoothing average for every agent.

    Returns one new state per agent: ``alpha`` weight on the agent's own
    upload and ``(1 - alpha) / (n - 1)`` on every other agent's upload.  For a
    single agent the upload is returned unchanged (there is nothing to mix).
    """
    _check_states(states)
    n = len(states)
    if n == 1:
        return [{name: np.array(value, copy=True) for name, value in states[0].items()}]
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    beta = (1.0 - alpha) / (n - 1)
    totals = {
        name: np.sum([np.asarray(state[name], dtype=np.float64) for state in states], axis=0)
        for name in states[0]
    }
    new_states: List[StateDict] = []
    for state in states:
        mixed: StateDict = {}
        for name in state:
            own = np.asarray(state[name], dtype=np.float64)
            others = totals[name] - own
            mixed[name] = alpha * own + beta * others
        new_states.append(mixed)
    return new_states


@dataclass(frozen=True)
class AlphaSchedule:
    """Decay of the smoothing weight ``alpha_k`` toward the consensus ``1/n``.

    ``alpha_k = 1/n + (alpha_0 - 1/n) * decay^k`` where ``k`` counts
    communication rounds, so early rounds favour each agent's own policy and
    late rounds approach plain averaging (the guaranteed limit in the paper).
    """

    initial_alpha: float = 0.7
    decay: float = 0.97

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_alpha <= 1.0:
            raise ValueError(f"initial_alpha must be in (0, 1], got {self.initial_alpha}")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")

    def alpha(self, round_index: int, agent_count: int) -> float:
        """The server mixing weight for ``round_index`` with ``agent_count`` agents."""
        if agent_count <= 0:
            raise ValueError(f"agent_count must be positive, got {agent_count}")
        if round_index < 0:
            raise ValueError(f"round_index must be non-negative, got {round_index}")
        limit = 1.0 / agent_count
        start = max(self.initial_alpha, limit)
        return limit + (start - limit) * (self.decay**round_index)
