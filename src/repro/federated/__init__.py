"""Federated reinforcement learning substrate.

Multiple agents interact with their own environments and periodically share
policy parameters with a designated server, which performs a smoothing
average and returns a new parameter set to every agent (paper §III-A).  This
package provides the agents, the server, the communication channel (with
fault hooks), the communication-interval schedule and the training
orchestrators for both the FRL system and the single-agent baseline.
"""

from repro.federated.aggregation import AlphaSchedule, smoothing_average
from repro.federated.agent import FederatedAgent
from repro.federated.server import FederatedServer
from repro.federated.communication import CommunicationChannel, CommunicationStats
from repro.federated.schedule import CommunicationSchedule
from repro.federated.callbacks import CallbackList, TrainingCallback
from repro.federated.system import FRLSystem, TrainingLog
from repro.federated.single_agent import SingleAgentSystem

__all__ = [
    "smoothing_average",
    "AlphaSchedule",
    "FederatedAgent",
    "FederatedServer",
    "CommunicationChannel",
    "CommunicationStats",
    "CommunicationSchedule",
    "TrainingCallback",
    "CallbackList",
    "FRLSystem",
    "TrainingLog",
    "SingleAgentSystem",
]
