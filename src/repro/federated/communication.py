"""Agent-server communication channel with optional fault injection.

Transient faults on the wireless link (interference, distortion,
synchronization errors) corrupt the shared parameters in transit.  The channel
models both directions (agent-to-server uplink and server-to-agent downlink)
and counts messages/bytes so communication-cost trade-offs (paper Fig. 6b)
can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.faults.ber import BitErrorRate
from repro.faults.injector import FaultInjector

StateDict = Dict[str, np.ndarray]


@dataclass
class CommunicationStats:
    """Message and parameter-volume counters for one channel."""

    uplink_messages: int = 0
    downlink_messages: int = 0
    uplink_parameters: int = 0
    downlink_parameters: int = 0
    corrupted_messages: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        """Uplink plus downlink message count."""
        return self.uplink_messages + self.downlink_messages

    @property
    def total_parameters(self) -> int:
        """Uplink plus downlink transferred-parameter count."""
        return self.uplink_parameters + self.downlink_parameters


class CommunicationChannel:
    """Bidirectional parameter channel between agents and the server."""

    def __init__(
        self,
        uplink_injector: Optional[FaultInjector] = None,
        downlink_injector: Optional[FaultInjector] = None,
        uplink_ber: Union[float, BitErrorRate] = 0.0,
        downlink_ber: Union[float, BitErrorRate] = 0.0,
    ) -> None:
        self.uplink_injector = uplink_injector
        self.downlink_injector = downlink_injector
        self.uplink_ber = (
            uplink_ber if isinstance(uplink_ber, BitErrorRate) else BitErrorRate(float(uplink_ber))
        )
        self.downlink_ber = (
            downlink_ber
            if isinstance(downlink_ber, BitErrorRate)
            else BitErrorRate(float(downlink_ber))
        )
        self.stats = CommunicationStats()

    @staticmethod
    def _parameter_count(state: StateDict) -> int:
        return int(sum(np.asarray(value).size for value in state.values()))

    def uplink(self, state: StateDict) -> StateDict:
        """Transmit ``state`` from an agent to the server."""
        self.stats.uplink_messages += 1
        self.stats.uplink_parameters += self._parameter_count(state)
        if self.uplink_injector is not None and self.uplink_ber.rate > 0.0:
            self.stats.corrupted_messages += 1
            return self.uplink_injector.corrupt_state_dict(state, self.uplink_ber)
        return state

    def downlink(self, state: StateDict) -> StateDict:
        """Transmit ``state`` from the server to an agent."""
        self.stats.downlink_messages += 1
        self.stats.downlink_parameters += self._parameter_count(state)
        if self.downlink_injector is not None and self.downlink_ber.rate > 0.0:
            self.stats.corrupted_messages += 1
            return self.downlink_injector.corrupt_state_dict(state, self.downlink_ber)
        return state

    def reset_stats(self) -> None:
        """Zero the transfer counters (a fresh :class:`CommunicationStats`)."""
        self.stats = CommunicationStats()
