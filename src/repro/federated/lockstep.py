"""Lockstep training and evaluation of a *group* of independent systems.

The vectorized campaign path runs every cell of a ``--batch-cells`` group as
one lane bundle: the (system, agent) pairs of all cells become lanes of one
vector environment plus one :class:`~repro.nn.batched.StackedPolicy`, and each
global episode advances every live system by one local episode.  Per-episode
bookkeeping — reward histories, logs, callbacks, communication rounds — runs
in serial system order with the *real* serial code, so the group's side
effects and results are bitwise identical to training each system on its own.

Interleaving episodes across systems is safe because systems share no state:
every agent and callback owns an independent ``SeedSequence`` stream, and each
stream's draw *order* is untouched by the interleaving (see
``rl/lockstep.py``).  :func:`lockstep_compatible` gates the path: it requires
identical environment configs and network topologies across lanes, and
rejects activation-target fault callbacks (their hooks wrap the serial
``network.forward``, which the stacked forward does not call).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.faults.locations import FaultTarget
from repro.federated.callbacks import CallbackList, TrainingCallback
from repro.federated.system import TrainingLog
from repro.nn.batched import StackedPolicy
from repro.rl.lockstep import build_vec_env, train_episodes_lockstep
from repro.rl.rollout import evaluate_episodes_lockstep


def _is_frl(system) -> bool:
    """FRL systems have a communication schedule; single-agent baselines don't."""
    return hasattr(system, "schedule")


def _callback_lockstep_safe(callback: TrainingCallback) -> bool:
    """Whether a callback is safe under the stacked (hook-free) forward path."""
    if isinstance(callback, CallbackList):
        return all(_callback_lockstep_safe(inner) for inner in callback.callbacks)
    spec = getattr(callback, "spec", None)
    if spec is None:
        # Unknown callback type: be conservative — it may wrap network.forward
        # (activation hooks) or depend on the serial per-agent episode order.
        return False
    return spec.target != FaultTarget.ACTIVATIONS


def lockstep_compatible(
    systems: Sequence, callbacks_per_system: Sequence[Sequence[TrainingCallback]]
) -> bool:
    """Whether ``systems`` (with their callbacks) can train/evaluate in lockstep.

    Checks are structural and side-effect free: every environment must share
    one vector-env family and config, every policy network one topology, and
    every callback must be a weights-target fault callback (or none).
    """
    try:
        envs = [env for system in systems for env in _system_envs(system)]
        build_vec_env(envs)
        StackedPolicy([fed.agent.network for system in systems for fed in system.agents])
    except (TypeError, ValueError):
        return False
    for callbacks in callbacks_per_system:
        if not all(_callback_lockstep_safe(callback) for callback in callbacks):
            return False
    return True


def _system_envs(system) -> List:
    """Every environment a system touches during training or evaluation."""
    if _is_frl(system):
        return [fed.env for fed in system.agents]
    return list(system.envs)


def train_group_lockstep(
    systems: Sequence,
    callbacks_per_system: Sequence[Sequence[TrainingCallback]],
    episodes_per_system: Sequence[int],
) -> List[TrainingLog]:
    """Train each system for its episode count, interleaved in lockstep.

    Equivalent — bitwise, including logs, reward histories and callback
    records — to ``systems[i].train(episodes_per_system[i],
    callbacks=callbacks_per_system[i])`` run one system at a time.  Systems
    with fewer episodes simply drop out of the live set early (masked, like
    terminated lanes within an episode).
    """
    if not (len(systems) == len(callbacks_per_system) == len(episodes_per_system)):
        raise ValueError("systems, callbacks and episode counts must align")
    for episodes in episodes_per_system:
        if episodes < 0:
            raise ValueError(f"episodes must be non-negative, got {episodes}")
    wrapped = [
        callbacks if isinstance(callbacks, CallbackList) else CallbackList(callbacks or [])
        for callbacks in callbacks_per_system
    ]
    # One stacked policy over every agent in group order; refreshed per episode
    # after all weight-mutating hooks (faults, communication) have run.
    all_wrappers = [fed for system in systems for fed in system.agents]
    policy = StackedPolicy([fed.agent.network for fed in all_wrappers])
    policy_lane = {id(fed): lane for lane, fed in enumerate(all_wrappers)}
    for system, callback in zip(systems, wrapped):
        callback.on_training_start(system)
    total = max(episodes_per_system, default=0)
    for episode in range(total):
        live = [i for i in range(len(systems)) if episode < episodes_per_system[i]]
        for i in live:
            wrapped[i].on_episode_start(systems[i], episode)
        # Collect this episode's lanes: every FRL agent, plus each single-agent
        # baseline on its rotated environment (the serial cursor semantics).
        lane_wrappers, lane_envs, lane_systems = [], [], []
        for i in live:
            system = systems[i]
            if _is_frl(system):
                for fed in system.agents:
                    lane_wrappers.append(fed)
                    lane_envs.append(fed.env)
                    lane_systems.append(i)
            else:
                system.wrapper.env = system._next_env()
                lane_wrappers.append(system.wrapper)
                lane_envs.append(system.wrapper.env)
                lane_systems.append(i)
        for fed in lane_wrappers:
            fed.agent.begin_episode(episode)
        policy.refresh()
        vec_env = build_vec_env(lane_envs)
        lanes = np.asarray([policy_lane[id(fed)] for fed in lane_wrappers], dtype=np.int64)
        stats = train_episodes_lockstep(
            [fed.agent for fed in lane_wrappers], vec_env, policy, policy_lanes=lanes
        )
        # Serial-order bookkeeping: exactly what each system's own train()
        # would have run after its episodes, system by system.
        for i in live:
            system = systems[i]
            callback = wrapped[i]
            rows = [k for k, owner in enumerate(lane_systems) if owner == i]
            for k in rows:
                lane_wrappers[k].reward_history.append(stats[k].total_reward)
                lane_wrappers[k].episode_stats.append(stats[k])
            if _is_frl(system):
                rewards = [stats[k].total_reward for k in rows]
                for k in rows:
                    callback.on_agent_episode_end(
                        system, episode, lane_wrappers[k].index, stats[k]
                    )
                system.log.episode_rewards.append(rewards)
                communicated = False
                if system.schedule.should_communicate(episode) and system.agent_count > 1:
                    system.communication_round(episode, callback)
                    communicated = True
                callback.on_round_end(system, episode, communicated)
            else:
                (k,) = rows
                system.log.episode_rewards.append([stats[k].total_reward])
                callback.on_agent_episode_end(system, episode, 0, stats[k])
                callback.on_round_end(system, episode, False)
    for system, callback in zip(systems, wrapped):
        callback.on_training_end(system)
    return [system.log for system in systems]


def average_flight_distance_group_lockstep(
    systems: Sequence, attempts: int = 3, policy: Optional[StackedPolicy] = None
) -> List[float]:
    """Per-system mean safe flight distance, evaluated in lockstep.

    Value ``i`` is bitwise identical to
    ``systems[i].average_flight_distance(attempts=attempts)``: drone
    evaluation is greedy and draw-free, so lanes may freely share streams.
    """
    lane_agents, lane_envs, lane_systems = [], [], []
    for i, system in enumerate(systems):
        if _is_frl(system):
            for fed in system.agents:
                lane_agents.append(fed.agent)
                lane_envs.append(fed.env)
                lane_systems.append(i)
        else:
            for env in system.envs:
                lane_agents.append(system.agent)
                lane_envs.append(env)
                lane_systems.append(i)
    vec_env = build_vec_env(lane_envs)
    if policy is None:
        policy = StackedPolicy([agent.network for agent in lane_agents])
    per_lane = evaluate_episodes_lockstep(
        lane_agents, vec_env, policy, attempts=attempts, epsilon=0.0
    )
    means = [
        float(np.mean([stats.flight_distance for stats in lane])) for lane in per_lane
    ]
    return [
        float(np.mean([means[k] for k, owner in enumerate(lane_systems) if owner == i]))
        for i in range(len(systems))
    ]


__all__ = [
    "average_flight_distance_group_lockstep",
    "lockstep_compatible",
    "train_group_lockstep",
]
