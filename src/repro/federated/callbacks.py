"""Training callbacks: the hook points for fault injection and mitigation.

The FRL trainer calls these hooks at well-defined points of every episode and
communication round.  Fault injectors implement the ``transform_*`` hooks to
corrupt parameters at the corresponding location; mitigation schemes implement
``on_round_end`` to detect reward drops and restore checkpoints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

import numpy as np

from repro.rl.base import EpisodeStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.federated.system import FRLSystem

StateDict = Dict[str, np.ndarray]


class TrainingCallback:
    """No-op base class; override only the hooks you need."""

    def on_training_start(self, system: "FRLSystem") -> None:
        """Called once before the first episode."""

    def on_episode_start(self, system: "FRLSystem", episode: int) -> None:
        """Called before agents run their local episodes."""

    def on_agent_episode_end(
        self, system: "FRLSystem", episode: int, agent_index: int, stats: EpisodeStats
    ) -> None:
        """Called after each agent's local episode."""

    def transform_upload(
        self, system: "FRLSystem", episode: int, agent_index: int, state: StateDict
    ) -> StateDict:
        """Transform parameters the server receives from ``agent_index``."""
        return state

    def transform_server_state(
        self, system: "FRLSystem", episode: int, state: StateDict
    ) -> StateDict:
        """Transform the server's aggregated (consensus) parameters."""
        return state

    def transform_broadcast(
        self, system: "FRLSystem", episode: int, agent_index: int, state: StateDict
    ) -> StateDict:
        """Transform parameters ``agent_index`` receives from the server."""
        return state

    def on_round_end(self, system: "FRLSystem", episode: int, communicated: bool) -> None:
        """Called at the very end of every episode (after any communication)."""

    def on_training_end(self, system: "FRLSystem") -> None:
        """Called once after the last episode."""


class CallbackList(TrainingCallback):
    """Compose multiple callbacks; transforms are applied in order."""

    def __init__(self, callbacks: Sequence[TrainingCallback] = ()) -> None:
        self.callbacks: List[TrainingCallback] = list(callbacks)

    def append(self, callback: TrainingCallback) -> None:
        """Add ``callback`` to the dispatch list (fires after existing ones)."""
        self.callbacks.append(callback)

    def on_training_start(self, system) -> None:
        """Fan ``on_training_start`` out to every callback, in registration order."""
        for callback in self.callbacks:
            callback.on_training_start(system)

    def on_episode_start(self, system, episode) -> None:
        """Fan ``on_episode_start`` out to every callback, in registration order."""
        for callback in self.callbacks:
            callback.on_episode_start(system, episode)

    def on_agent_episode_end(self, system, episode, agent_index, stats) -> None:
        """Fan ``on_agent_episode_end`` out to every callback, in registration order."""
        for callback in self.callbacks:
            callback.on_agent_episode_end(system, episode, agent_index, stats)

    def transform_upload(self, system, episode, agent_index, state):
        """Thread one agent's upload state through every callback's transform."""
        for callback in self.callbacks:
            state = callback.transform_upload(system, episode, agent_index, state)
        return state

    def transform_server_state(self, system, episode, state):
        """Thread the server's aggregated state through every callback's transform."""
        for callback in self.callbacks:
            state = callback.transform_server_state(system, episode, state)
        return state

    def transform_broadcast(self, system, episode, agent_index, state):
        """Thread one agent's broadcast state through every callback's transform."""
        for callback in self.callbacks:
            state = callback.transform_broadcast(system, episode, agent_index, state)
        return state

    def on_round_end(self, system, episode, communicated) -> None:
        """Fan ``on_round_end`` out to every callback, in registration order."""
        for callback in self.callbacks:
            callback.on_round_end(system, episode, communicated)

    def on_training_end(self, system) -> None:
        """Fan ``on_training_end`` out to every callback, in registration order."""
        for callback in self.callbacks:
            callback.on_training_end(system)
