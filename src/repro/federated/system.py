"""The FRL training orchestrator.

One :class:`FRLSystem` owns ``n`` federated agents (each with its own
environment), the server, the communication channel and the communication
schedule.  Every episode each agent trains locally; at the end of episodes
selected by the schedule the agents upload their parameters, the server
aggregates them with the smoothing average and the new parameters are
broadcast back.  Fault injection and mitigation plug in through
:class:`repro.federated.callbacks.TrainingCallback` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.federated.agent import FederatedAgent
from repro.federated.callbacks import CallbackList, TrainingCallback
from repro.federated.communication import CommunicationChannel
from repro.federated.schedule import CommunicationSchedule
from repro.federated.server import FederatedServer

StateDict = Dict[str, np.ndarray]


@dataclass
class TrainingLog:
    """Per-episode records collected during FRL training."""

    episode_rewards: List[List[float]] = field(default_factory=list)
    communication_episodes: List[int] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)

    @property
    def episodes(self) -> int:
        """Number of episodes recorded so far."""
        return len(self.episode_rewards)

    @property
    def communication_count(self) -> int:
        """Number of communication rounds recorded so far."""
        return len(self.communication_episodes)

    def mean_reward(self, episode: int) -> float:
        """The episode's reward averaged over agents (0.0 when empty)."""
        rewards = self.episode_rewards[episode]
        return float(np.mean(rewards)) if rewards else 0.0

    def agent_rewards(self, agent_index: int) -> List[float]:
        """One agent's reward trajectory across every recorded episode."""
        return [rewards[agent_index] for rewards in self.episode_rewards]

    def record_event(self, episode: int, kind: str, **details) -> None:
        """Append a structured event (communication, fault, recovery) to the log."""
        self.events.append({"episode": episode, "kind": kind, **details})


class FRLSystem:
    """Federated reinforcement learning system (agents + server + channel)."""

    def __init__(
        self,
        agents: Sequence[FederatedAgent],
        server: Optional[FederatedServer] = None,
        channel: Optional[CommunicationChannel] = None,
        schedule: Optional[CommunicationSchedule] = None,
    ) -> None:
        if not agents:
            raise ValueError("an FRL system needs at least one agent")
        self.agents: List[FederatedAgent] = list(agents)
        self.server = server or FederatedServer()
        self.channel = channel or CommunicationChannel()
        self.schedule = schedule or CommunicationSchedule()
        self.log = TrainingLog()

    @property
    def agent_count(self) -> int:
        """Number of federated agents in the system."""
        return len(self.agents)

    # ---------------------------------------------------------------- training
    def train(
        self,
        episodes: int,
        callbacks: Optional[Sequence[TrainingCallback]] = None,
        start_episode: int = 0,
    ) -> TrainingLog:
        """Run ``episodes`` federated training episodes.

        ``start_episode`` offsets the episode index seen by schedules and
        callbacks, so training can be resumed (e.g. fine-tuning after offline
        pre-training, or continuing after a fault-recovery experiment).
        """
        if episodes < 0:
            raise ValueError(f"episodes must be non-negative, got {episodes}")
        callback = callbacks if isinstance(callbacks, CallbackList) else CallbackList(callbacks or [])
        callback.on_training_start(self)
        for offset in range(episodes):
            episode = start_episode + offset
            callback.on_episode_start(self, episode)
            rewards: List[float] = []
            for agent in self.agents:
                stats = agent.run_training_episode(episode)
                rewards.append(stats.total_reward)
                callback.on_agent_episode_end(self, episode, agent.index, stats)
            self.log.episode_rewards.append(rewards)
            communicated = False
            if self.schedule.should_communicate(episode) and self.agent_count > 1:
                self.communication_round(episode, callback)
                communicated = True
            callback.on_round_end(self, episode, communicated)
        callback.on_training_end(self)
        return self.log

    def communication_round(self, episode: int, callback: Optional[TrainingCallback] = None) -> None:
        """One upload → aggregate → broadcast round with fault hooks."""
        callback = callback or CallbackList()
        uploads: List[StateDict] = []
        for agent in self.agents:
            state = self.channel.uplink(agent.upload_state())
            state = callback.transform_upload(self, episode, agent.index, state)
            uploads.append(state)
        broadcasts = self.server.aggregate(uploads)
        consensus = callback.transform_server_state(self, episode, self.server.consensus)
        if consensus is not self.server.consensus:
            # A server fault (or recovery) replaced the consensus: rebuild the
            # per-agent broadcasts from the corrupted/restored consensus so the
            # fault reaches every agent, as in the paper's server-fault model.
            self.server.set_consensus(consensus)
            broadcasts = self.server.broadcast_from_consensus(self.agent_count)
        for agent, broadcast in zip(self.agents, broadcasts):
            state = self.channel.downlink(broadcast)
            state = callback.transform_broadcast(self, episode, agent.index, state)
            agent.receive_state(state)
        self.log.communication_episodes.append(episode)

    # -------------------------------------------------------------- evaluation
    def average_success_rate(self, attempts: int = 20) -> float:
        """Mean GridWorld success rate across agents (paper's SR metric)."""
        return float(np.mean([agent.success_rate(attempts=attempts) for agent in self.agents]))

    def average_flight_distance(self, attempts: int = 3) -> float:
        """Mean DroneNav safe flight distance across agents (metres)."""
        return float(np.mean([agent.flight_distance(attempts=attempts) for agent in self.agents]))

    def consensus_state(self) -> StateDict:
        """The server's consensus policy (averaging current agents if needed)."""
        if self.server.consensus is not None:
            return self.server.consensus
        from repro.federated.aggregation import average_states

        return average_states([agent.upload_state() for agent in self.agents])

    # -------------------------------------------------------------- fault entry
    def corrupt_agent(self, agent_index: int, corrupted_state: StateDict) -> None:
        """Overwrite one agent's policy with externally corrupted parameters."""
        self.agents[agent_index].receive_state(corrupted_state)

    def corrupt_all_agents(self, corrupted_states: Sequence[StateDict]) -> None:
        """Overwrite every agent's policy (server-fault propagation)."""
        if len(corrupted_states) != self.agent_count:
            raise ValueError("need one corrupted state per agent")
        for agent, state in zip(self.agents, corrupted_states):
            agent.receive_state(state)
