"""Single-agent baseline (no server, no parameter sharing).

The paper contrasts the FRL system against a single-agent system trained only
on the states its own environment exposes; the comparison underpins the
multi-agent-resilience observation.  The baseline reuses the same agent,
environment and callback machinery, but parameters never leave the agent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.envs.base import Environment
from repro.federated.agent import FederatedAgent
from repro.federated.callbacks import CallbackList, TrainingCallback
from repro.federated.system import TrainingLog
from repro.rl.base import Agent

StateDict = Dict[str, np.ndarray]


class SingleAgentSystem:
    """A single learning agent evaluated across one or more environments."""

    def __init__(self, agent: Agent, envs: Sequence[Environment]) -> None:
        if not envs:
            raise ValueError("single-agent system needs at least one environment")
        self.agent = agent
        self.envs: List[Environment] = list(envs)
        # Mirror the FRL wrapper so callbacks and mitigation treat both alike.
        self.wrapper = FederatedAgent(index=0, agent=agent, env=self.envs[0])
        self.agents = [self.wrapper]
        self.log = TrainingLog()
        self._env_cursor = 0

    @property
    def agent_count(self) -> int:
        """Always 1 — the single-agent baseline of the paper's comparisons."""
        return 1

    def _next_env(self) -> Environment:
        env = self.envs[self._env_cursor % len(self.envs)]
        self._env_cursor += 1
        return env

    def train(
        self,
        episodes: int,
        callbacks: Optional[Sequence[TrainingCallback]] = None,
        start_episode: int = 0,
    ) -> TrainingLog:
        """Train the single agent, cycling through its environments."""
        if episodes < 0:
            raise ValueError(f"episodes must be non-negative, got {episodes}")
        callback = callbacks if isinstance(callbacks, CallbackList) else CallbackList(callbacks or [])
        callback.on_training_start(self)
        for offset in range(episodes):
            episode = start_episode + offset
            callback.on_episode_start(self, episode)
            self.wrapper.env = self._next_env()
            stats = self.wrapper.run_training_episode(episode)
            self.log.episode_rewards.append([stats.total_reward])
            callback.on_agent_episode_end(self, episode, 0, stats)
            callback.on_round_end(self, episode, False)
        callback.on_training_end(self)
        return self.log

    # -------------------------------------------------------------- evaluation
    def average_success_rate(self, attempts: int = 20) -> float:
        """The agent's mean success rate across every configured environment."""
        from repro.rl.rollout import evaluate_success_rate

        rates = [evaluate_success_rate(self.agent, env, attempts=attempts) for env in self.envs]
        return float(np.mean(rates))

    def average_flight_distance(self, attempts: int = 3) -> float:
        """The agent's mean flight distance across every configured environment."""
        from repro.rl.rollout import evaluate_flight_distance

        distances = [
            evaluate_flight_distance(self.agent, env, attempts=attempts) for env in self.envs
        ]
        return float(np.mean(distances))

    def consensus_state(self) -> StateDict:
        """The agent's own state dict (mirrors :meth:`FRLSystem.consensus_state`)."""
        return self.agent.state_dict()

    def corrupt_agent(self, agent_index: int, corrupted_state: StateDict) -> None:
        """Replace agent 0's state with ``corrupted_state`` (fault-injection seam)."""
        if agent_index != 0:
            raise IndexError("single-agent system only has agent 0")
        self.agent.load_state_dict(corrupted_state)
