"""The lint engine: file walking, rule dispatch, pragma suppression.

One :func:`lint_paths` call walks the requested files (directories expand to
their ``*.py`` contents in **sorted** order — the engine obeys its own REP002
rule), parses each file once, runs every in-scope rule over the shared
:class:`FileContext`, and filters the findings through the file's
suppression pragmas.  Unparsable files and malformed pragmas become findings
themselves (under :data:`~repro.lint.pragmas.MALFORMED_PRAGMA_ID`) instead of
being skipped: a lint pass that silently ignores what it cannot read is a
lint pass that can be silently defeated.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.pragmas import MALFORMED_PRAGMA_ID, Pragma, parse_pragmas


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position.

    Ordered by ``(path, line, column, rule_id)`` so reports are deterministic
    regardless of rule execution order.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        """The JSON-output form of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    suppressed: int = 0

    def render_text(self) -> str:
        """Human-readable report: one finding per line plus a summary."""
        lines = [finding.render() for finding in self.findings]
        noun = "file" if self.checked_files == 1 else "files"
        summary = (
            f"{len(self.findings)} finding(s) in {self.checked_files} {noun}"
            + (f" ({self.suppressed} suppressed by pragma)" if self.suppressed else "")
        )
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report (stable key order) for CI artifacts."""
        payload = {
            "findings": [finding.to_dict() for finding in self.findings],
            "checked_files": self.checked_files,
            "suppressed": self.suppressed,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


class _ImportMap(ast.NodeVisitor):
    """Map local names to the fully qualified names their imports bind.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy.random import
    default_rng`` binds ``default_rng -> numpy.random.default_rng``.  Rules
    resolve attribute chains against this map so aliasing cannot hide a
    flagged call (``import numpy.random as nr; nr.rand()`` still resolves to
    ``numpy.random.rand``).
    """

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.names[local] = alias.name if alias.asname else alias.name.split(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never bind the stdlib/numpy names rules track
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str]
    parents: Dict[ast.AST, ast.AST]

    def resolve(self, node: ast.expr) -> Optional[str]:
        """The dotted import-qualified name ``node`` refers to, or ``None``.

        Resolves ``Name`` and ``Attribute`` chains whose root is an imported
        name: with ``import numpy as np``, ``np.random.rand`` resolves to
        ``"numpy.random.rand"``.  Chains rooted in anything else (locals,
        ``self`` attributes, call results) resolve to ``None`` — rules only
        make claims about names they can trace to an import.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        qualified_root = self.imports.get(current.id)
        if qualified_root is None:
            return None
        return ".".join([qualified_root, *reversed(parts)])

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (``None`` for the module root)."""
        return self.parents.get(node)


def _build_parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def make_file_context(path: Path, source: str, display_path: Optional[str] = None) -> FileContext:
    """Parse ``source`` into the shared per-file rule context."""
    tree = ast.parse(source)
    imports = _ImportMap()
    imports.visit(tree)
    return FileContext(
        path=Path(path),
        display_path=display_path or str(path),
        source=source,
        tree=tree,
        imports=imports.names,
        parents=_build_parent_map(tree),
    )


def iter_python_files(paths: Sequence) -> List[Path]:
    """Expand ``paths`` to the sorted list of ``*.py`` files they cover.

    Directories recurse; explicit files are taken as-is (even without a
    ``.py`` suffix, so scripts can be linted by name).  Sorted, deduplicated
    output keeps reports byte-stable across filesystems.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    unique: List[Path] = []
    for path in sorted(files):
        if path not in unique[-1:]:
            unique.append(path)
    return unique


def lint_source(
    source: str,
    *,
    path: Path = Path("<string>"),
    display_path: Optional[str] = None,
    rules: Optional[Sequence] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint one in-memory source string (the fixture/property-test seam)."""
    report = LintReport(checked_files=1)
    _lint_one(source, Path(path), display_path or str(path), rules, config, report)
    report.findings.sort()
    return report


def lint_paths(
    paths: Sequence,
    *,
    rules: Optional[Sequence] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint every python file under ``paths`` and return the merged report."""
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf8")
        except OSError as error:
            report.findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    column=1,
                    rule_id=MALFORMED_PRAGMA_ID,
                    message=f"cannot read file: {error}",
                )
            )
            continue
        report.checked_files += 1
        _lint_one(source, path, str(path), rules, config, report)
    report.findings.sort()
    return report


def _lint_one(
    source: str,
    path: Path,
    display_path: str,
    rules: Optional[Sequence],
    config: Optional[LintConfig],
    report: LintReport,
) -> None:
    if rules is None:
        from repro.lint.rules import RULES

        rules = RULES
    if config is None:
        config = LintConfig()
    try:
        context = make_file_context(path, source, display_path)
    except SyntaxError as error:
        report.findings.append(
            Finding(
                path=display_path,
                line=error.lineno or 1,
                column=(error.offset or 1),
                rule_id=MALFORMED_PRAGMA_ID,
                message=f"file does not parse: {error.msg}",
            )
        )
        return
    pragmas, malformed = parse_pragmas(source)
    for bad in malformed:
        report.findings.append(
            Finding(
                path=display_path,
                line=bad.line,
                column=1,
                rule_id=MALFORMED_PRAGMA_ID,
                message=bad.problem,
            )
        )
    for rule in rules:
        if not config.rule_applies(rule.id, path):
            continue
        for finding in rule.check(context):
            pragma: Optional[Pragma] = pragmas.get(finding.line)
            if pragma is not None and pragma.suppresses(finding.rule_id):
                report.suppressed += 1
                continue
            report.findings.append(finding)


__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "make_file_context",
]
