"""REP003 — wall-clock time in determinism-critical modules.

A ``time.time()`` or ``datetime.now()`` value that reaches a fingerprinted or
journaled structure makes the artifact different on every run by
construction, defeating resume validation and byte-identity diffs.  The rule
flags wall-clock reads in the modules scoped via ``[tool.repro-lint]``
(journal, store, sharding, cells, residency, plans — the layers whose output
participates in fingerprints); monotonic/perf counters for *durations* are
not flagged, and genuinely intentional provenance timestamps (the store's
``ingested_at`` column) carry an explicit pragma with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, register

#: Wall-clock reads.  ``time.monotonic``/``time.perf_counter`` are fine:
#: they measure durations and never pretend to be reproducible values.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """Flag wall-clock reads where they can flow into journaled artifacts."""

    id = "REP003"
    title = "wall-clock time in fingerprinted/journaled structures"
    rationale = (
        "Journals, plan fingerprints, and store rows must be functions of the plan "
        "alone — a wall-clock read embedded in them makes every run's bytes unique, "
        "so resume validation and identity diffs break.  Durations belong to "
        "time.monotonic()/time.perf_counter(); provenance timestamps that are "
        "deliberately non-reproducible (e.g. the store's ingested_at column) must "
        "carry a pragma with a reason, which is the documented audit trail."
    )
    example_bad = (
        "header = {'experiment_id': plan.experiment_id,\n"
        "          'written_at': time.time()}        # journal bytes now unique per run"
    )
    example_fix = (
        "header = {'experiment_id': plan.experiment_id}  # content-addressed only\n"
        "# ...or, for deliberate provenance metadata kept out of fingerprints:\n"
        "row = (path, time.time())  # repro-lint: disable=REP003 -- ingest provenance, never fingerprinted"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield a finding for every wall-clock call in the file."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = context.resolve(node.func)
            if qualified in _WALL_CLOCK:
                yield self.finding(
                    context,
                    node,
                    f"{qualified}() is wall-clock: journaled/fingerprinted structures "
                    "must not depend on when a run happened (use time.monotonic() for "
                    "durations, or pragma a deliberate provenance timestamp)",
                )


__all__ = ["WallClockRule"]
