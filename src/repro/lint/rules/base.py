"""Rule base class and the registration decorator.

A rule is a small object with identity (``id``, ``title``), the house
rationale (``rationale`` — what ``--explain`` prints), worked examples
(``example_bad`` / ``example_fix``), and one method::

    def check(self, context: FileContext) -> Iterator[Finding]

Rules register themselves with the :func:`register` class decorator at import
time; :data:`repro.lint.rules.RULES` is the resulting ordered registry.
Keeping the registry declarative (rather than hand-maintained lists) means a
new rule module only has to exist and be imported to take effect — the same
import-time self-registration idiom :mod:`repro.runtime.vectorize` uses for
group runners.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Type

from repro.lint.engine import FileContext, Finding

#: Populated by :func:`register`; re-exported as ``repro.lint.rules.RULES``.
REGISTRY: List["Rule"] = []


class Rule:
    """Base class for lint rules.  Subclasses set the class attributes."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    example_bad: str = ""
    example_fix: str = ""

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``context``'s file."""
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for ``node`` under this rule's id."""
        return Finding(
            path=context.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
        )

    def explain(self) -> str:
        """The ``--explain`` text: rationale plus worked examples."""
        sections = [f"{self.id}: {self.title}", "", self.rationale.strip()]
        if self.example_bad:
            sections += ["", "Violation:", _indent(self.example_bad)]
        if self.example_fix:
            sections += ["", "Fix:", _indent(self.example_fix)]
        return "\n".join(sections)


def _indent(block: str) -> str:
    return "\n".join(f"    {line}" for line in block.strip().splitlines())


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate ``rule_class`` into the registry."""
    instance = rule_class()
    if not instance.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if any(existing.id == instance.id for existing in REGISTRY):
        raise ValueError(f"duplicate rule id {instance.id}")
    REGISTRY.append(instance)
    return rule_class


__all__ = ["REGISTRY", "Rule", "register"]
