"""The rule registry.

Importing this package imports every rule module; each rule self-registers
via :func:`repro.lint.rules.base.register`, and :data:`RULES` exposes the
registry in rule-id order.  Adding a rule = adding a module here + importing
it below; nothing else in the engine changes.
"""

from repro.lint.rules.base import REGISTRY, Rule, register
from repro.lint.rules import (  # noqa: F401  (imports run the registrations)
    rep001_rng,
    rep002_ordering,
    rep003_wallclock,
    rep004_fingerprint,
    rep005_blocking,
    rep006_picklable,
)

#: Every registered rule, in rule-id order (stable report order).
RULES = tuple(sorted(REGISTRY, key=lambda rule: rule.id))


def rule_by_id(rule_id: str) -> Rule:
    """The registered rule with ``rule_id`` (raises ``KeyError`` if unknown)."""
    for rule in RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(
        f"unknown rule id {rule_id!r}; known rules: {[rule.id for rule in RULES]}"
    )


__all__ = ["RULES", "Rule", "register", "rule_by_id"]
