"""REP001 — unseeded / global RNG use.

Randomness in this codebase arrives as an explicit ``np.random.Generator``
(or ``SeedSequence``) parameter, derived from the per-cell seed tree that
:mod:`repro.runtime.cells` builds.  Any draw from numpy's *module-level*
legacy RNG (``np.random.rand()``, ``np.random.seed()``, …), from the stdlib
``random`` module, or from an argument-less ``default_rng()`` consumes hidden
global (or OS-entropy) state: the result depends on call order across the
whole process, so serial, pooled, and vectorized runs stop being
byte-identical the moment two cells interleave differently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, register

#: ``numpy.random`` attributes that are *constructors of explicit state*
#: rather than draws from the hidden global RNG.  Everything else under
#: ``numpy.random`` called at module level is flagged.
_NUMPY_ALLOWED = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "default_rng",  # argless form handled separately below
    }
)

#: Stdlib ``random`` attributes that construct explicitly seeded state.
_STDLIB_ALLOWED = frozenset({"Random", "SystemRandom", "getstate", "setstate"})


@register
class UnseededRandomRule(Rule):
    """Flag module-level RNG draws and argument-less ``default_rng()``."""

    id = "REP001"
    title = "unseeded or global RNG"
    rationale = (
        "Byte-identity across serial/pooled/vectorized/sharded runs requires every "
        "random draw to come from an explicit np.random.Generator threaded in as a "
        "parameter (the seam runtime/cells.py builds with per-cell SeedSequences). "
        "np.random.<fn>() module calls and the stdlib random module draw from hidden "
        "process-global state, so results depend on scheduling; default_rng() without "
        "a seed pulls OS entropy and is different on every run."
    )
    example_bad = (
        "noise = np.random.normal(size=n)          # global legacy RNG\n"
        "rng = np.random.default_rng()             # OS entropy, differs per run\n"
        "index = random.randrange(len(pool))       # stdlib global RNG"
    )
    example_fix = (
        "def evaluate(..., rng: np.random.Generator) -> ...:\n"
        "    noise = rng.normal(size=n)            # explicit, journaled seed tree\n"
        "rng = np.random.default_rng(seed)         # seeded construction is fine"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield a finding for every global-RNG call in the file."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = context.resolve(node.func)
            if qualified is None:
                continue
            if qualified == "numpy.random.default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    context,
                    node,
                    "default_rng() without a seed draws OS entropy; pass the cell's "
                    "SeedSequence/seed so runs are reproducible",
                )
                continue
            if qualified.startswith("numpy.random."):
                tail = qualified[len("numpy.random."):]
                if "." not in tail and tail not in _NUMPY_ALLOWED:
                    yield self.finding(
                        context,
                        node,
                        f"np.random.{tail}() draws from the hidden global RNG; thread an "
                        "explicit np.random.Generator parameter instead",
                    )
                continue
            if qualified.startswith("random."):
                tail = qualified[len("random."):]
                if "." not in tail and tail not in _STDLIB_ALLOWED:
                    yield self.finding(
                        context,
                        node,
                        f"random.{tail}() uses the stdlib's process-global RNG; use an "
                        "explicit np.random.Generator (or a seeded random.Random)",
                    )


__all__ = ["UnseededRandomRule"]
