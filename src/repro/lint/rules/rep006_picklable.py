"""REP006 — non-module-level callables crossing the process-pool seam.

The pool pickles every submitted callable by *qualified name*, and the
vectorize registry is keyed by function *object* — both seams silently break
for lambdas, closures, and locally defined functions: the pool raises an
opaque ``PicklingError`` at submit time (or worse, the fork start method
masks it locally and spawn-based platforms break later), and a worker-side
registry lookup misses because the unpickled cell function is a different
object than the locally created closure that registered the runner.  Only
module-level functions may be submitted to the pool or registered as group
runners.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, register

#: Method names that submit callables to a process pool.
_SUBMIT_METHODS = frozenset({"submit", "apply_async"})

#: Functions (by import-qualified or bare name) that register callables in a
#: function-object-keyed registry.
_REGISTRY_FUNCTIONS = frozenset(
    {
        "repro.runtime.vectorize.register_group_runner",
        "register_group_runner",
    }
)


@register
class PicklableCallableRule(Rule):
    """Flag lambdas/closures handed to pool.submit or the vectorize registry."""

    id = "REP006"
    title = "non-module-level callable submitted to the pool or registry"
    rationale = (
        "ProcessPoolExecutor pickles submitted callables by qualified name, and "
        "runtime/vectorize.py keys its group-runner registry by function object; "
        "a lambda, closure, or locally defined function breaks both — pickling "
        "fails (sometimes only under the spawn start method, i.e. not on the "
        "machine that wrote the code), and the worker-side registry repopulated "
        "by import cannot contain a function object created inside another "
        "function.  Define the callable at module level."
    )
    example_bad = (
        "def launch(cells):\n"
        "    def batch(cell):            # local function: unpicklable\n"
        "        return cell.run()\n"
        "    pool.submit(batch, cells[0])\n"
        "    register_group_runner(fn, lambda group: [run(c) for c in group])"
    )
    example_fix = (
        "def _run_batch(cell):            # module level: picklable, importable\n"
        "    return cell.run()\n"
        "\n"
        "def launch(cells):\n"
        "    pool.submit(_run_batch, cells[0])\n"
        "    register_group_runner(fn, _run_group)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield a finding for every non-module-level callable at the seams."""
        nested = self._nested_function_names(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates = self._submitted_callables(context, node)
            for argument in candidates:
                problem = self._problem(argument, nested)
                if problem is not None:
                    yield self.finding(context, argument, problem)

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> Set[str]:
        """Names of functions defined inside another function (unpicklable)."""
        nested: Set[str] = set()

        def walk(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_function:
                        nested.add(child.name)
                    walk(child, True)
                else:
                    walk(child, inside_function)

        walk(tree, False)
        return nested

    def _submitted_callables(self, context: FileContext, node: ast.Call) -> List[ast.expr]:
        """The argument expressions of ``node`` that must be module-level."""
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
            return node.args[:1]
        qualified = context.resolve(func)
        name = qualified or (func.id if isinstance(func, ast.Name) else None)
        if name in _REGISTRY_FUNCTIONS:
            # Both the keying function and the runner must be module-level.
            return list(node.args[:2])
        return []

    def _problem(self, argument: ast.expr, nested: Set[str]) -> Optional[str]:
        """Why ``argument`` cannot cross the pool/registry seam, or ``None``."""
        if isinstance(argument, ast.Lambda):
            return (
                "lambda submitted across the process-pool/registry seam: lambdas "
                "cannot be pickled and cannot be re-found by worker-side import"
            )
        if isinstance(argument, ast.Call):
            # functools.partial(...) is picklable iff its inner callable is.
            inner = argument.args[:1]
            return self._problem(inner[0], nested) if inner else None
        if isinstance(argument, ast.Name) and argument.id in nested:
            return (
                f"{argument.id!r} is defined inside a function: the pool cannot "
                "pickle it and workers repopulating the registry by import will "
                "never see the same function object — define it at module level"
            )
        return None


__all__ = ["PicklableCallableRule"]
