"""REP005 — blocking calls inside ``async def`` bodies.

The orchestrator is a single-threaded asyncio loop driving every shard's
launch, journal-tail, and stderr-drain concurrently.  One synchronous
``time.sleep``/``subprocess.run``/``.wait()``/unbounded ``.read()`` freezes
*all* of them — which is exactly how the PR 5 deadlock happened: a blocking
stderr drain against a fork-inherited process group that never exited.  Async
bodies must await (``asyncio.sleep``, ``create_subprocess_exec``,
``process.wait()`` under ``await``) or hand blocking work to an executor.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, register

#: Import-qualified synchronous calls that block the event loop outright.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.getoutput",
        "subprocess.getstatusoutput",
        "os.system",
        "os.wait",
        "os.waitpid",
        "select.select",
    }
)

#: ``asyncio`` wrappers whose arguments are coroutine objects, not calls
#: being executed synchronously — ``asyncio.ensure_future(launch.wait())``
#: schedules the wait, it does not block on it.
_ASYNC_WRAPPERS = frozenset(
    {
        "asyncio.ensure_future",
        "asyncio.create_task",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.shield",
        "asyncio.as_completed",
        "asyncio.run_coroutine_threadsafe",
    }
)


@register
class BlockingAsyncRule(Rule):
    """Flag synchronous blocking calls lexically inside ``async def``."""

    id = "REP005"
    title = "blocking call in async orchestration code"
    rationale = (
        "The orchestrator/backends/scheduler run as one asyncio event loop; a "
        "synchronous sleep, subprocess call, bare .wait(), or unbounded read "
        "blocks every concurrent shard at once and can deadlock outright against "
        "a child that will not exit until it is polled (the PR 5 stderr-drain "
        "deadlock).  Use the asyncio equivalents — asyncio.sleep, "
        "create_subprocess_exec, await process.wait() — or run_in_executor for "
        "genuinely synchronous work."
    )
    example_bad = (
        "async def drain(self, process):\n"
        "    process.wait()                      # blocks the whole event loop\n"
        "    time.sleep(self.poll_interval)      # every shard stalls"
    )
    example_fix = (
        "async def drain(self, process):\n"
        "    await process.wait()\n"
        "    await asyncio.sleep(self.poll_interval)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield a finding for each blocking call inside an async function."""
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(context, node)

    def _collect(self, func: ast.AsyncFunctionDef) -> Set[ast.AST]:
        """Nodes lexically inside ``func`` but not inside a nested sync def.

        A nested synchronous ``def`` is a separate callable (it may run on an
        executor thread), so its body is out of scope; nested ``async def``
        bodies are visited through the outer walk anyway.
        """
        selected: Set[ast.AST] = set()

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                selected.add(child)
                walk(child)

        walk(func)
        return selected

    def _check_async_body(
        self, context: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        body = self._collect(func)
        for node in body:
            if not isinstance(node, ast.Call):
                continue
            qualified = context.resolve(node.func)
            if qualified in _BLOCKING_CALLS:
                yield self.finding(
                    context,
                    node,
                    f"{qualified}() blocks the event loop inside async def "
                    f"{func.name!r}; use the asyncio equivalent or run_in_executor",
                )
                continue
            if self._is_bare_wait(context, node):
                yield self.finding(
                    context,
                    node,
                    f"synchronous .wait() inside async def {func.name!r} blocks the "
                    "event loop (the PR 5 deadlock class); await it, or wrap the "
                    "coroutine in an asyncio task",
                )
                continue
            if self._is_unbounded_read(node):
                yield self.finding(
                    context,
                    node,
                    f"unbounded synchronous file read inside async def {func.name!r} "
                    "blocks the event loop on slow/large input; read incrementally "
                    "or use an executor",
                )

    def _is_bare_wait(self, context: FileContext, node: ast.Call) -> bool:
        """A ``.wait()`` call neither awaited nor handed to asyncio."""
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "wait"):
            return False
        parent = context.parent_of(node)
        if isinstance(parent, ast.Await):
            return False
        if isinstance(parent, ast.Call):
            wrapper = context.resolve(parent.func)
            if wrapper in _ASYNC_WRAPPERS:
                return False
        return True

    @staticmethod
    def _is_unbounded_read(node: ast.Call) -> bool:
        """``open(...).read()`` / ``.read_text()`` / ``.read_bytes()`` forms."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr in ("read_text", "read_bytes"):
            return True
        if func.attr == "read" and not node.args and not node.keywords:
            receiver = func.value
            return (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "open"
            )
        return False


__all__ = ["BlockingAsyncRule"]
