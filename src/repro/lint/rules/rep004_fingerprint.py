"""REP004 — machine-local paths escaping into ``fingerprint_token``.

The version-2 journal fingerprint exists because version 1 digested
``repr()`` of cell kwargs and thereby the absolute ``cache_dir`` inside
:class:`~repro.runtime.residency.PolicyRef` — journals written on one machine
silently invalidated everywhere else (the PR 3 bug).  Every
``fingerprint_token`` implementation is a promise of machine independence;
this rule is the permanent regression guard on that promise, flagging the
constructs through which an absolute path can leak into the token.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, register

#: Calls that *produce* machine-local absolute paths.
_PATH_PRODUCERS = frozenset(
    {
        "os.getcwd",
        "os.getcwdb",
        "os.path.abspath",
        "os.path.realpath",
        "os.path.expanduser",
        "os.fspath",
        "pathlib.Path.cwd",
        "pathlib.Path.home",
    }
)

#: Method names that absolutize a path object.
_PATH_METHODS = frozenset({"resolve", "absolute", "expanduser"})

#: Identifier fragments that mark a value as path-typed by naming convention
#: (``cache_dir``, ``journal_path``, ``output_root`` ...).
_PATHLIKE_FRAGMENTS = ("path", "dir", "cwd", "root", "folder", "file")


def _looks_pathlike(node: ast.expr) -> bool:
    """Whether ``node`` names something that is, by convention, a path."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    lowered = name.lower()
    return any(fragment in lowered for fragment in _PATHLIKE_FRAGMENTS)


@register
class FingerprintPathRule(Rule):
    """Flag path-leaking constructs inside ``fingerprint_token`` bodies."""

    id = "REP004"
    title = "fingerprint_token can emit machine-local paths"
    rationale = (
        "fingerprint_token() is the machine-independence seam of the version-2 "
        "journal protocol: its output is digested into every plan fingerprint, so "
        "an absolute path inside it recreates the PR 3 bug class — journals that "
        "resume on the machine that wrote them and silently invalidate everywhere "
        "else.  Tokens must identify *content* (keys, fields, parameters), never "
        "*location* (cwd, resolved paths, cache directories)."
    )
    example_bad = (
        "def fingerprint_token(self) -> str:\n"
        "    return f'Ref({self.cache_dir}/{self.key})'   # absolute path digested"
    )
    example_fix = (
        "def fingerprint_token(self) -> str:\n"
        "    # cache_dir deliberately excluded: the key already encodes content\n"
        "    return f'Ref(key={self.key!r}, field={self.field!r})'"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield a finding for every path leak inside a ``fingerprint_token``."""
        for node in ast.walk(context.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "fingerprint_token"
            ):
                yield from self._check_body(context, node)

    def _check_body(self, context: FileContext, func: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                qualified = context.resolve(node.func)
                if qualified in _PATH_PRODUCERS:
                    yield self.finding(
                        context,
                        node,
                        f"{qualified}() inside fingerprint_token embeds a machine-local "
                        "path into the plan fingerprint (the PR 3 bug class)",
                    )
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _PATH_METHODS
                ):
                    yield self.finding(
                        context,
                        node,
                        f".{node.func.attr}() inside fingerprint_token absolutizes a "
                        "path; tokens must identify content, not location",
                    )
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("str", "repr")
                    and len(node.args) == 1
                    and _looks_pathlike(node.args[0])
                ):
                    yield self.finding(
                        context,
                        node,
                        f"{node.func.id}() of a path-typed value inside "
                        "fingerprint_token stringifies a machine-local location",
                    )
            elif isinstance(node, ast.FormattedValue) and _looks_pathlike(node.value):
                yield self.finding(
                    context,
                    node.value,
                    "f-string interpolation of a path-typed value inside "
                    "fingerprint_token embeds a machine-local location",
                )


__all__ = ["FingerprintPathRule"]
