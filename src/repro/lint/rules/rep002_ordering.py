"""REP002 — unordered iteration feeding deterministic output.

Journals, plan builders, shard manifests, and the result store all emit
artifacts whose **byte layout** is part of the repo's identity contract.
Iterating a ``set``/``frozenset`` or a directory listing (``os.listdir``,
``glob.glob``, ``Path.iterdir``/``.glob``/``.rglob``) feeds those outputs in
hash- or filesystem-order — stable enough to pass local tests, different
enough across machines and runs to break a merge diff.  Wrap the iterable in
``sorted(...)`` at the point of iteration.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, register

#: Import-qualified functions that return filesystem-ordered listings.
_LISTING_FUNCTIONS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method names that return filesystem-ordered listings on path-like objects.
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})


@register
class UnorderedIterationRule(Rule):
    """Flag direct iteration over sets and unsorted directory listings."""

    id = "REP002"
    title = "unordered iteration feeding deterministic output"
    rationale = (
        "Anything that ends up in a journal, plan, shard manifest, store row, or "
        "rendered payload must be produced in a deterministic order: set iteration "
        "follows hash order (which varies with insertion history and across "
        "processes) and os.listdir/glob/iterdir follow filesystem order (which "
        "varies across machines — exactly what multi-machine shard merges cannot "
        "tolerate).  Wrap the iterable in sorted(...) where it is consumed."
    )
    example_bad = (
        "for path in journal_dir.glob('*.jsonl'):   # filesystem order\n"
        "    ingest(path)\n"
        "for label in {c.label for c in cells}:     # hash order\n"
        "    emit(label)"
    )
    example_fix = (
        "for path in sorted(journal_dir.glob('*.jsonl')):\n"
        "    ingest(path)\n"
        "for label in sorted({c.label for c in cells}):\n"
        "    emit(label)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield a finding for every unordered iteration site in the file."""
        for node in ast.walk(context.tree):
            sources: List[Tuple[ast.expr, ast.expr]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sources.append((node.iter, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                sources.extend((gen.iter, gen.iter) for gen in node.generators)
            for iterable, anchor in sources:
                reason = self._unordered_reason(context, iterable)
                if reason is not None:
                    yield self.finding(
                        context,
                        anchor,
                        f"iterating {reason}; wrap the iterable in sorted(...) so "
                        "downstream output is deterministic",
                    )

    def _unordered_reason(self, context: FileContext, node: ast.expr) -> Optional[str]:
        """Why ``node`` iterates in unstable order, or ``None`` if it does not."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal (hash order)"
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...) (hash order)"
        qualified = context.resolve(func)
        if qualified in _LISTING_FUNCTIONS:
            return f"{qualified}(...) (filesystem order)"
        if isinstance(func, ast.Attribute) and func.attr in _LISTING_METHODS:
            # A method named glob/rglob/iterdir on *any* receiver: the only
            # such objects in this codebase are pathlib paths, and a false
            # positive here is a one-word sorted() wrap.
            return f".{func.attr}(...) (filesystem order)"
        return None


__all__ = ["UnorderedIterationRule"]
