"""``[tool.repro-lint]`` configuration loading.

The pyproject section scopes rules to the paths where their invariant
actually holds.  Example::

    [tool.repro-lint]
    include = ["src/repro"]

    [tool.repro-lint.per-rule-paths]
    REP002 = ["src/repro/runtime", "src/repro/core", "src/repro/utils"]
    REP005 = [
        "src/repro/runtime/orchestrator.py",
        "src/repro/runtime/backends.py",
        "src/repro/runtime/scheduler.py",
    ]

Semantics:

* ``include`` — the default lint roots when the CLI is invoked without
  explicit paths;
* ``per-rule-paths`` — a rule listed here runs **only** on files under one of
  its paths (resolved relative to the pyproject's directory).  Rules without
  an entry run everywhere.  Scoping narrows where a rule *applies*; it never
  widens the set of files walked.

Configuration is optional everywhere: ``LintConfig()`` (no scoping, every
rule everywhere) is what the fixture-corpus tests use, and what the CLI's
``--isolated`` flag selects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # Python 3.11+; tomllib is stdlib.  3.10 falls back to "no config".
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None


class LintConfigError(ValueError):
    """The ``[tool.repro-lint]`` section is present but malformed."""


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration.

    ``root`` anchors the relative paths in ``per_rule_paths``; it is the
    directory containing the pyproject the config was loaded from (the
    current directory for a default-constructed config).
    """

    root: Path = field(default_factory=Path.cwd)
    include: Tuple[str, ...] = ()
    per_rule_paths: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def rule_applies(self, rule_id: str, path: Path) -> bool:
        """Whether ``rule_id`` is in scope for ``path``.

        Rules without a ``per-rule-paths`` entry apply everywhere.  A scoped
        rule applies when ``path`` equals, or sits under, one of its
        configured paths.
        """
        scopes = self.per_rule_paths.get(rule_id)
        if not scopes:
            return True
        resolved = Path(path).resolve()
        for scope in scopes:
            anchor = (self.root / scope).resolve()
            if resolved == anchor or anchor in resolved.parents:
                return True
        return False


def find_pyproject(start: Path) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above ``start``, or ``None``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _string_list(value, context: str) -> List[str]:
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        raise LintConfigError(f"{context} must be a list of strings, got {value!r}")
    return list(value)


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Load the ``[tool.repro-lint]`` section of ``pyproject``.

    A missing file, a missing section, or a runtime without ``tomllib``
    (Python 3.10) all yield the permissive default config; a *present but
    malformed* section raises :class:`LintConfigError` — a scoping typo must
    not silently lint the wrong files.
    """
    if pyproject is None or tomllib is None:
        return LintConfig()
    pyproject = Path(pyproject)
    if not pyproject.is_file():
        return LintConfig()
    with pyproject.open("rb") as handle:
        document = tomllib.load(handle)
    section = document.get("tool", {}).get("repro-lint")
    if section is None:
        return LintConfig(root=pyproject.parent)
    if not isinstance(section, dict):
        raise LintConfigError(f"[tool.repro-lint] must be a table, got {section!r}")
    include = tuple(_string_list(section.get("include", []), "[tool.repro-lint] include"))
    raw_scopes = section.get("per-rule-paths", {})
    if not isinstance(raw_scopes, dict):
        raise LintConfigError(
            f"[tool.repro-lint.per-rule-paths] must be a table, got {raw_scopes!r}"
        )
    per_rule_paths = {
        rule_id: tuple(
            _string_list(paths, f"[tool.repro-lint.per-rule-paths] {rule_id}")
        )
        for rule_id, paths in raw_scopes.items()
    }
    unknown = sorted(set(section) - {"include", "per-rule-paths"})
    if unknown:
        raise LintConfigError(
            f"[tool.repro-lint] has unknown key(s) {unknown}; "
            "expected 'include' and/or 'per-rule-paths'"
        )
    return LintConfig(root=pyproject.parent, include=include, per_rule_paths=per_rule_paths)


__all__ = ["LintConfig", "LintConfigError", "find_pyproject", "load_config"]
