"""``repro-lint`` — determinism & concurrency static analysis for this repo.

Every layer of the campaign runtime rests on one invariant: serial, pooled,
vectorized, sharded, and mixed-backend runs produce **byte-identical**
payloads.  CI enforces that contract dynamically (the ``*-identity`` jobs),
but dynamic checks are expensive and catch violations only after they ship —
two real bug classes slipped through exactly this gap (the PR 3 path-in-
fingerprint leak and the PR 5 blocking-drain orchestrator deadlock).  This
package makes the house determinism rules checkable in seconds, at dev time,
with an AST-level lint pass:

* :mod:`repro.lint.engine` — file walking, per-file rule dispatch, pragma
  suppression, and the :class:`~repro.lint.engine.Finding` model;
* :mod:`repro.lint.rules` — the rule registry and the six initial rules
  (REP001–REP006), each carrying its house rationale and worked examples;
* :mod:`repro.lint.pragmas` — ``# repro-lint: disable=REPxxx -- reason``
  line-pragma parsing (a reason string is mandatory);
* :mod:`repro.lint.config` — ``[tool.repro-lint]`` pyproject loading for
  per-rule path scoping;
* :mod:`repro.lint.cli` — the ``repro-lint`` console script (text/JSON
  output, ``--explain``, advisory ``--no-error`` mode).

The package is deliberately stdlib-only (``ast`` + ``tomllib``): it must be
importable in minimal environments (CI lint jobs, pre-commit hooks) without
numpy or the campaign runtime.

The rules themselves are documented for humans in ``docs/STATIC_ANALYSIS.md``.
"""

from repro.lint.engine import Finding, LintReport, lint_paths, lint_source
from repro.lint.config import LintConfig, load_config
from repro.lint.pragmas import format_pragma, parse_pragmas
from repro.lint.rules import RULES, rule_by_id

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "format_pragma",
    "lint_paths",
    "lint_source",
    "load_config",
    "parse_pragmas",
    "rule_by_id",
]
