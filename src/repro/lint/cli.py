"""The ``repro-lint`` console script.

Usage::

    repro-lint src/repro                      # lint, exit 1 on findings
    repro-lint src/repro --format json        # machine-readable report
    repro-lint benchmarks examples --no-error # advisory: report, exit 0
    repro-lint --explain REP004               # the house rationale + examples
    repro-lint --list-rules                   # one line per rule

Configuration is read from the nearest ``pyproject.toml`` above the first
linted path (override with ``--config``, disable with ``--isolated``); see
:mod:`repro.lint.config` for the ``[tool.repro-lint]`` schema and
``docs/STATIC_ANALYSIS.md`` for the rule catalogue.

Exit codes: 0 — clean (or ``--no-error``); 1 — findings; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.config import LintConfig, LintConfigError, find_pyproject, load_config
from repro.lint.engine import lint_paths
from repro.lint.rules import RULES, rule_by_id


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & concurrency static analysis for the campaign runtime: "
            "enforces the byte-identity contract (explicit RNG threading, ordered "
            "iteration, path-free fingerprints, non-blocking async orchestration, "
            "picklable pool callables) at dev time."
        ),
        epilog="Rule catalogue and pragma policy: docs/STATIC_ANALYSIS.md",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse over *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--explain",
        metavar="REPxxx",
        help="print the rationale and worked examples for one rule, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule id and title, then exit",
    )
    parser.add_argument(
        "--no-error",
        action="store_true",
        help="advisory mode: report findings but exit 0 (CI uses this for "
        "benchmarks/, tools/, and examples/)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest above the first path)",
    )
    parser.add_argument(
        "--isolated",
        action="store_true",
        help="ignore any pyproject configuration (every rule applies everywhere)",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.isolated:
        return LintConfig()
    pyproject: Optional[Path] = args.config
    if pyproject is None and args.paths:
        pyproject = find_pyproject(Path(args.paths[0]))
    return load_config(pyproject)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        try:
            rule = rule_by_id(args.explain)
        except KeyError as error:
            parser.error(str(error.args[0]))
        print(rule.explain())
        return 0
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.title}")
        return 0
    if not args.paths:
        parser.error("no paths given (or use --explain/--list-rules)")

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path(s): {missing}")
    try:
        config = _resolve_config(args)
    except LintConfigError as error:
        parser.error(f"bad [tool.repro-lint] configuration: {error}")

    report = lint_paths(args.paths, config=config)
    print(report.render_json() if args.format == "json" else report.render_text())
    if report.findings and not args.no_error:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
