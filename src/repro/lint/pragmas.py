"""``# repro-lint: disable=...`` line-pragma parsing.

A pragma suppresses specific rules on **exactly the line it appears on** (the
line a finding anchors to), and must carry a reason::

    time.time()  # repro-lint: disable=REP003 -- ingest timestamp, never fingerprinted

Several rules separate with commas (``disable=REP001,REP002``).  A pragma
without a reason is itself reported as a malformed-pragma finding
(:data:`MALFORMED_PRAGMA_ID`) rather than silently honoured: the reason is
the audit trail that lets a reviewer decide whether the suppression is still
justified, so it is not optional.

:func:`format_pragma` is the inverse of :func:`parse_pragma_comment`; the
property suite round-trips arbitrary rule-id lists through the pair.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Pseudo rule id under which malformed pragmas are reported.  Not a real
#: rule (it has no registry entry) and deliberately not suppressible.
MALFORMED_PRAGMA_ID = "REP000"

#: ``# repro-lint: disable=REP001,REP002 -- reason`` anywhere in a line.
_PRAGMA_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Za-z0-9_,\s]*?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)

_RULE_ID_PATTERN = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression pragma."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str

    def suppresses(self, rule_id: str) -> bool:
        """Whether this pragma suppresses ``rule_id`` (on its own line)."""
        return rule_id in self.rule_ids


@dataclass(frozen=True)
class MalformedPragma:
    """A pragma the parser recognized but refuses to honour."""

    line: int
    problem: str


def format_pragma(rule_ids, reason: str) -> str:
    """Render the canonical pragma comment for ``rule_ids`` and ``reason``."""
    ids = ",".join(rule_ids)
    return f"# repro-lint: disable={ids} -- {reason}"


def parse_pragma_comment(text: str) -> Optional[Tuple[List[str], Optional[str], Optional[str]]]:
    """Parse one source line's pragma, if any.

    Returns ``None`` when the line carries no ``repro-lint`` pragma, else a
    ``(rule_ids, reason, problem)`` triple where ``problem`` is a
    human-readable defect description (missing reason, empty or malformed id
    list) and ``None`` when the pragma is well-formed.
    """
    match = _PRAGMA_PATTERN.search(text)
    if match is None:
        return None
    ids = [token.strip() for token in match.group("ids").split(",") if token.strip()]
    reason = match.group("reason")
    if reason is not None:
        reason = reason.strip() or None
    if not ids:
        return [], reason, "pragma lists no rule ids (expected disable=REPxxx[,REPyyy])"
    bad = [token for token in ids if not _RULE_ID_PATTERN.match(token)]
    if bad:
        return ids, reason, f"malformed rule id(s) {bad} (expected e.g. REP001)"
    if reason is None:
        return ids, reason, (
            "pragma has no reason; append ' -- <why this line is exempt>' — "
            "the reason is the audit trail for the suppression"
        )
    return ids, reason, None


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """``(line, text)`` for every *comment* token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma syntax
    mentioned inside strings and docstrings from being treated as a live
    pragma.  Tokenization errors (an unterminated string in a file that still
    parses is impossible, but tokenize is stricter than ast about e.g. bare
    form feeds) degrade to "no pragmas" — the engine has already produced the
    findings, so the failure mode is a finding that should have been
    suppressed, never a suppression that should not have happened.
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return


def parse_pragmas(source: str) -> Tuple[Dict[int, Pragma], List[MalformedPragma]]:
    """Scan ``source``'s comments for pragmas, keyed by 1-based line number.

    Returns the well-formed pragmas plus every malformed one; the engine
    turns the latter into :data:`MALFORMED_PRAGMA_ID` findings so a typo'd
    suppression fails loudly instead of silently not suppressing.
    """
    pragmas: Dict[int, Pragma] = {}
    malformed: List[MalformedPragma] = []
    for line_number, text in _comment_tokens(source):
        parsed = parse_pragma_comment(text)
        if parsed is None:
            continue
        ids, reason, problem = parsed
        if problem is not None:
            malformed.append(MalformedPragma(line=line_number, problem=problem))
            continue
        pragmas[line_number] = Pragma(line=line_number, rule_ids=tuple(ids), reason=reason)
    return pragmas, malformed


__all__ = [
    "MALFORMED_PRAGMA_ID",
    "MalformedPragma",
    "Pragma",
    "format_pragma",
    "parse_pragma_comment",
    "parse_pragmas",
]
