"""Common agent interface and episode bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.envs.base import Environment


@dataclass
class EpisodeStats:
    """Summary of one episode."""

    total_reward: float = 0.0
    steps: int = 0
    success: bool = False
    crashed: bool = False
    flight_distance: float = 0.0
    info: Dict[str, object] = field(default_factory=dict)


class Agent:
    """Interface every learning agent implements.

    Agents own a policy network; the federated layer exchanges parameters
    through ``state_dict`` / ``load_state_dict``.
    """

    def select_action(self, observation: np.ndarray, explore: bool = True) -> int:
        """Choose an action for ``observation``."""
        raise NotImplementedError

    def run_episode(self, env: Environment, train: bool = True) -> EpisodeStats:
        """Interact with ``env`` for one episode, learning if ``train``."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of the policy parameters."""
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Overwrite the policy parameters."""
        raise NotImplementedError

    def begin_episode(self, episode_index: int) -> None:
        """Hook called by trainers before each episode (e.g. ε decay)."""

    @property
    def exploration_rate(self) -> float:
        """Current exploration rate (0 for purely greedy agents)."""
        return 0.0

    @property
    def rng(self) -> Optional[np.random.Generator]:
        """The agent's own random stream, if it has one.

        Evaluation helpers default to this stream so that campaigns built
        from seeded agents are reproducible end to end (the runtime layer's
        parallel-vs-serial bit-identity depends on it).
        """
        return getattr(self, "_rng", None)


def outcome_to_stats(total_reward: float, steps: int, info: Optional[dict]) -> EpisodeStats:
    """Build an :class:`EpisodeStats` from a final step's info dictionary."""
    info = info or {}
    outcome = str(info.get("outcome", ""))
    return EpisodeStats(
        total_reward=total_reward,
        steps=steps,
        success=outcome in ("goal", "survived"),
        crashed=outcome == "crash",
        flight_distance=float(info.get("flight_distance", 0.0)),
        info=dict(info),
    )
