"""Offline pre-training of the drone policy.

The paper first trains the drone CNN policy offline with REINFORCE and then
fine-tunes it online inside the federated system.  Training a CNN policy from
scratch with pure Monte-Carlo policy gradient takes far more environment
interaction than a CPU-only reproduction can afford, so the offline stage is
implemented as behaviour cloning of a depth-seeking expert pilot followed by
(optional) REINFORCE fine-tuning — the same "train offline, fine-tune online"
structure at a tractable cost.  The cloned CNN is a genuine image-to-action
policy; every fault-injection experiment operates on its weights and
activations exactly as it would on a purely RL-trained policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.envs.base import Environment
from repro.envs.dronenav import SPEED_FACTORS, YAW_DELTAS_DEG
from repro.rl.reinforce import ReinforceAgent
from repro.utils.rng import as_rng


class DroneExpertPilot:
    """Heuristic depth-seeking pilot used as the behaviour-cloning teacher.

    The pilot reads the same observation the CNN sees: channel 0's top row is
    the normalized ray-depth profile across the field of view.  It yaws toward
    the angular sector with the most clearance and modulates speed by the
    clearance straight ahead.
    """

    def __init__(self, caution: float = 0.65) -> None:
        if not 0.0 < caution <= 1.0:
            raise ValueError(f"caution must be in (0, 1], got {caution}")
        self.caution = caution

    def depth_profile(self, observation: np.ndarray) -> np.ndarray:
        """Normalized depth per image column (values in [0, 1])."""
        observation = np.asarray(observation)
        if observation.ndim != 3:
            raise ValueError(f"expected a (3, H, W) observation, got shape {observation.shape}")
        return observation[0, 0, :]

    def select_action(self, observation: np.ndarray) -> int:
        """Steer toward the sector with the best worst-case clearance."""
        depths = self.depth_profile(observation)
        width = depths.shape[0]
        sectors = np.array_split(np.arange(width), len(YAW_DELTAS_DEG))
        # Worst-case clearance per sector: conservative near obstacles.
        sector_depths = np.asarray([depths[idx].min() for idx in sectors])
        # Mild preference for flying straight when clearances are similar.
        preference = np.array([0.0, 0.02, 0.05, 0.02, 0.0])
        yaw_index = int(np.argmax(sector_depths + preference))
        centre = sectors[len(sectors) // 2]
        front_clearance = float(depths[centre].min())
        thresholds = (0.9, 0.75, 0.55, 0.35)
        speed_index = 0
        for index, threshold in enumerate(thresholds):
            if front_clearance >= threshold * self.caution:
                speed_index = len(SPEED_FACTORS) - 1 - index
                break
        return yaw_index * len(SPEED_FACTORS) + speed_index


@dataclass(frozen=True)
class PretrainConfig:
    """Behaviour-cloning hyper-parameters.

    ``dagger_iterations`` rounds of DAgger-style aggregation (roll out the
    cloned policy, label the visited states with the expert, retrain) correct
    the compounding error of plain behaviour cloning.
    """

    collection_episodes: int = 6
    max_samples: int = 4000
    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 2e-3
    exploration_noise: float = 0.05
    dagger_iterations: int = 2
    dagger_episodes: int = 2

    def __post_init__(self) -> None:
        if self.collection_episodes <= 0 or self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("collection_episodes, epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.exploration_noise < 1.0:
            raise ValueError("exploration_noise must be in [0, 1)")
        if self.dagger_iterations < 0 or self.dagger_episodes < 0:
            raise ValueError("dagger_iterations and dagger_episodes must be non-negative")


def collect_expert_dataset(
    envs: Sequence[Environment],
    config: PretrainConfig,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Roll out the expert pilot and collect (observation, action) pairs."""
    rng = as_rng(rng)
    expert = DroneExpertPilot()
    observations: List[np.ndarray] = []
    actions: List[int] = []
    for env in envs:
        for _episode in range(config.collection_episodes):
            observation = env.reset()
            done = False
            while not done and len(observations) < config.max_samples:
                action = expert.select_action(observation)
                observations.append(observation)
                actions.append(action)
                if config.exploration_noise > 0 and rng.random() < config.exploration_noise:
                    action = int(rng.integers(0, env.action_count))
                result = env.step(action)
                observation = result.observation
                done = result.done
            if len(observations) >= config.max_samples:
                break
    if not observations:
        raise RuntimeError("expert collected no samples; check the environments")
    return np.stack(observations), np.asarray(actions, dtype=np.int64)


def _train_on_dataset(
    agent: ReinforceAgent,
    observations: np.ndarray,
    actions: np.ndarray,
    config: PretrainConfig,
    rng: np.random.Generator,
) -> float:
    """Supervised NLL training of the softmax policy; returns final accuracy.

    Cloning uses its own optimizer (and learning rate): the offline stage can
    afford larger steps than the cautious online fine-tuning optimizer the
    agent carries into the federated system.
    """
    from repro.nn import Adam

    optimizer = Adam(agent.network.parameters(), learning_rate=config.learning_rate)
    sample_count = observations.shape[0]
    accuracy = 0.0
    for _epoch in range(config.epochs):
        order = rng.permutation(sample_count)
        correct = 0
        for start in range(0, sample_count, config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            batch_obs = observations[batch_idx]
            batch_act = actions[batch_idx]
            probabilities = agent.network.forward(batch_obs)
            clipped = np.clip(probabilities, 1e-8, 1.0)
            grad = np.zeros_like(probabilities)
            rows = np.arange(len(batch_idx))
            grad[rows, batch_act] = -1.0 / clipped[rows, batch_act]
            grad /= len(batch_idx)
            agent.network.zero_grad()
            agent.network.backward(grad)
            optimizer.step()
            correct += int((probabilities.argmax(axis=1) == batch_act).sum())
        accuracy = correct / sample_count
    return accuracy


def collect_on_policy_dataset(
    agent: ReinforceAgent,
    envs: Sequence[Environment],
    episodes_per_env: int,
    max_samples: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Roll out the agent's own policy and label visited states with the expert."""
    expert = DroneExpertPilot()
    observations: List[np.ndarray] = []
    actions: List[int] = []
    for env in envs:
        for _episode in range(episodes_per_env):
            observation = env.reset()
            done = False
            while not done and len(observations) < max_samples:
                observations.append(observation)
                actions.append(expert.select_action(observation))
                action = agent.select_action(observation, explore=True)
                result = env.step(action)
                observation = result.observation
                done = result.done
            if len(observations) >= max_samples:
                break
    if not observations:
        raise RuntimeError("agent rollouts collected no samples; check the environments")
    return np.stack(observations), np.asarray(actions, dtype=np.int64)


def behaviour_clone(
    agent: ReinforceAgent,
    envs: Sequence[Environment],
    config: PretrainConfig = PretrainConfig(),
    rng=None,
) -> float:
    """Clone the expert pilot into ``agent``'s CNN policy.

    Plain behaviour cloning on expert rollouts is followed by
    ``config.dagger_iterations`` rounds of DAgger aggregation.  Returns the
    final training accuracy (fraction of expert actions matched).
    """
    rng = as_rng(rng)
    observations, actions = collect_expert_dataset(envs, config, rng=rng)
    accuracy = _train_on_dataset(agent, observations, actions, config, rng)
    for _iteration in range(config.dagger_iterations):
        extra_obs, extra_act = collect_on_policy_dataset(
            agent, envs, config.dagger_episodes, config.max_samples, rng
        )
        observations = np.concatenate([observations, extra_obs])
        actions = np.concatenate([actions, extra_act])
        accuracy = _train_on_dataset(agent, observations, actions, config, rng)
    return accuracy


def pretrain_drone_agent(
    agent: ReinforceAgent,
    envs: Sequence[Environment],
    clone_config: PretrainConfig = PretrainConfig(),
    reinforce_episodes: int = 0,
    rng=None,
) -> float:
    """Offline pre-training: behaviour cloning plus optional REINFORCE polish."""
    rng = as_rng(rng)
    accuracy = behaviour_clone(agent, envs, clone_config, rng=rng)
    for episode in range(reinforce_episodes):
        env = envs[episode % len(envs)]
        agent.begin_episode(episode)
        agent.run_episode(env, train=True)
    return accuracy
