"""Experience replay buffer for value-based learning."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

import numpy as np

from repro.utils.rng import as_rng


@dataclass(frozen=True)
class Transition:
    """One environment transition."""

    observation: np.ndarray
    action: int
    reward: float
    next_observation: np.ndarray
    done: bool


class ReplayBuffer:
    """Fixed-capacity FIFO buffer with uniform random sampling."""

    def __init__(self, capacity: int = 10_000, rng=None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[Transition] = deque(maxlen=capacity)
        self._rng = as_rng(rng)

    def push(self, transition: Transition) -> None:
        """Append one transition, evicting the oldest at capacity."""
        self._buffer.append(transition)

    def add(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        next_observation: np.ndarray,
        done: bool,
    ) -> None:
        """Coerce the fields into a :class:`Transition` and push it."""
        self.push(Transition(np.asarray(observation), int(action), float(reward),
                             np.asarray(next_observation), bool(done)))

    def __len__(self) -> int:
        return len(self._buffer)

    def sample(self, batch_size: int) -> List[Transition]:
        """Draw ``batch_size`` distinct transitions uniformly at random."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_size > len(self._buffer):
            raise ValueError(
                f"cannot sample {batch_size} transitions from a buffer of {len(self._buffer)}"
            )
        indices = self._rng.choice(len(self._buffer), size=batch_size, replace=False)
        return [self._buffer[int(index)] for index in indices]

    def sample_arrays(
        self, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample a batch and stack it into arrays for vectorized updates."""
        batch = self.sample(batch_size)
        observations = np.stack([t.observation for t in batch])
        actions = np.asarray([t.action for t in batch], dtype=np.int64)
        rewards = np.asarray([t.reward for t in batch], dtype=np.float64)
        next_observations = np.stack([t.next_observation for t in batch])
        dones = np.asarray([t.done for t in batch], dtype=bool)
        return observations, actions, rewards, next_observations, dones

    def clear(self) -> None:
        """Drop every stored transition."""
        self._buffer.clear()
