"""Rollout and evaluation helpers.

Evaluation supports a small ε of residual exploration noise: the paper's
success-rate campaigns repeat each scenario many times, which is only
meaningful when the rollout has some stochasticity.  A small ε also mirrors
the fielded behaviour of exploitation-phase agents that retain a residual
exploration rate.

When no explicit ``rng`` is supplied the helpers draw the ε noise from the
*agent's own* seeded stream instead of fresh OS entropy, so campaigns built
from seeded agents evaluate reproducibly — the property the parallel campaign
runner's serial/parallel bit-identity guarantee rests on.  The deliberate
trade-off: evaluating a live agent advances its training stream, so the
evaluation cadence is part of an experiment's definition (changing it changes
the downstream trajectory — deterministically).  Pass an explicit ``rng`` to
evaluate without touching the agent's stream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.envs.base import Environment
from repro.nn.batched import StackedPolicy
from repro.rl.base import Agent, EpisodeStats, outcome_to_stats
from repro.utils.rng import as_rng


def run_episode(agent: Agent, env: Environment, train: bool = True) -> EpisodeStats:
    """Run one episode (delegates to the agent's own loop)."""
    return agent.run_episode(env, train=train)


def greedy_episode(
    agent: Agent,
    env: Environment,
    max_steps: Optional[int] = None,
    epsilon: float = 0.0,
    rng=None,
) -> EpisodeStats:
    """Run one exploitation episode without learning.

    ``epsilon`` injects residual exploration noise (probability of a uniform
    random action per step); ``max_steps`` optionally caps the episode
    independently of the environment's own limit.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    rng = as_rng(rng if rng is not None else getattr(agent, "rng", None))
    observation = env.reset()
    total_reward = 0.0
    steps = 0
    last_info = {}
    done = False
    while not done:
        if epsilon > 0.0 and rng.random() < epsilon:
            action = int(rng.integers(0, env.action_count))
        else:
            action = agent.select_action(observation, explore=False)
        result = env.step(action)
        total_reward += result.reward
        steps += 1
        last_info = result.info
        observation = result.observation
        done = result.done
        if max_steps is not None and steps >= max_steps and not done:
            last_info = dict(last_info)
            last_info["outcome"] = "survived"
            done = True
    return outcome_to_stats(total_reward, steps, last_info)


def evaluate_success_rate(
    agent: Agent,
    env: Environment,
    attempts: int = 20,
    epsilon: float = 0.05,
    rng=None,
) -> float:
    """Fraction of attempts in which the agent reached the goal (GridWorld SR)."""
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    rng = as_rng(rng if rng is not None else getattr(agent, "rng", None))
    successes = 0
    for _ in range(attempts):
        stats = greedy_episode(agent, env, epsilon=epsilon, rng=rng)
        if stats.success:
            successes += 1
    return successes / attempts


def evaluate_flight_distance(
    agent: Agent,
    env: Environment,
    attempts: int = 5,
    epsilon: float = 0.0,
    rng=None,
) -> float:
    """Average safe flight distance over ``attempts`` exploitation episodes."""
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    rng = as_rng(rng if rng is not None else getattr(agent, "rng", None))
    distances: List[float] = []
    for _ in range(attempts):
        stats = greedy_episode(agent, env, epsilon=epsilon, rng=rng)
        distances.append(stats.flight_distance)
    return float(np.mean(distances))


# --------------------------------------------------------------------- lockstep
def evaluate_episodes_lockstep(
    agents: Sequence[Agent],
    vec_env,
    policy: StackedPolicy,
    policy_lanes: Optional[np.ndarray] = None,
    attempts: int = 1,
    epsilon: float = 0.0,
    rngs: Optional[Sequence] = None,
) -> List[List[EpisodeStats]]:
    """Run ``attempts`` greedy episodes per lane with all lanes in lockstep.

    Lane ``i`` of ``vec_env`` is driven by ``agents[i]`` using the stacked
    network at ``policy_lanes[i]``; its attempts run *sequentially* (the lane
    resets and continues when an episode ends) so the per-lane transcript is
    bitwise identical to ``attempts`` serial :func:`greedy_episode` calls.

    ``rngs[i]`` supplies lane ``i``'s residual-exploration stream (the agent's
    own stream when omitted, as in the serial helpers).  When ``epsilon`` (or
    an agent's ``greedy_epsilon``) is non-zero, identity requires each lane to
    draw from its *own* stream — lanes sharing one generator would interleave
    draws differently than back-to-back serial evaluation.  The drone campaign
    path evaluates with ``epsilon=0`` and ``greedy_epsilon=0``, which draws
    nothing and is identical regardless.
    """
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    lane_count = vec_env.lane_count
    if len(agents) != lane_count:
        raise ValueError(f"need {lane_count} agents, got {len(agents)}")
    if policy_lanes is None:
        policy_lanes = np.arange(lane_count, dtype=np.int64)
    else:
        policy_lanes = np.asarray(policy_lanes, dtype=np.int64)
    if rngs is None:
        rngs = [as_rng(getattr(agent, "rng", None)) for agent in agents]
    remaining = np.full(lane_count, attempts, dtype=np.int64)
    per_lane: List[List[EpisodeStats]] = [[] for _ in range(lane_count)]
    totals = np.zeros(lane_count, dtype=np.float64)
    steps = np.zeros(lane_count, dtype=np.int64)
    current = np.array(vec_env.reset_batch(), copy=True)
    while True:
        active = np.flatnonzero(~vec_env.done)
        if active.size == 0:
            break
        probabilities = policy.forward(current[active], lanes=policy_lanes[active])
        actions = np.zeros(lane_count, dtype=np.int64)
        for row, lane in enumerate(active):
            rng = rngs[lane]
            if epsilon > 0.0 and rng.random() < epsilon:
                actions[lane] = int(rng.integers(0, vec_env.action_count))
            else:
                # greedy_action_from may consume the lane's stream (residual
                # greedy-ε); the batched forward above consumed none, so the
                # per-stream draw order matches serial exactly.
                actions[lane] = agents[lane].greedy_action_from(probabilities[row])
        result = vec_env.step_batch(actions)
        finished: List[int] = []
        for lane in active:
            totals[lane] += result.rewards[lane]
            steps[lane] += 1
            if result.done[lane]:
                info = {"outcome": result.outcomes[lane]}
                distances = getattr(vec_env, "flight_distances", None)
                if distances is not None:
                    info["flight_distance"] = float(distances[lane])
                per_lane[lane].append(
                    outcome_to_stats(float(totals[lane]), int(steps[lane]), info)
                )
                totals[lane] = 0.0
                steps[lane] = 0
                remaining[lane] -= 1
                if remaining[lane] > 0:
                    finished.append(int(lane))
        if finished:
            vec_env.reset_batch(lanes=np.asarray(finished, dtype=np.int64))
        active_rows = np.flatnonzero(~vec_env.done)
        current[active_rows] = vec_env.observations[active_rows]
    return per_lane


def evaluate_flight_distances_lockstep(
    agents: Sequence[Agent],
    envs: Sequence[Environment],
    attempts: int = 5,
    epsilon: float = 0.0,
    policy: Optional[StackedPolicy] = None,
) -> List[float]:
    """Per-lane mean safe flight distance, lockstep over ``(agent, env)`` lanes.

    Lane ``i``'s value is bitwise identical to
    ``evaluate_flight_distance(agents[i], envs[i], attempts, epsilon)``.
    """
    from repro.rl.lockstep import build_vec_env

    vec_env = build_vec_env(envs)
    if policy is None:
        policy = StackedPolicy([agent.network for agent in agents])
    per_lane = evaluate_episodes_lockstep(
        agents, vec_env, policy, attempts=attempts, epsilon=epsilon
    )
    return [
        float(np.mean([stats.flight_distance for stats in lane])) for lane in per_lane
    ]


def evaluate_success_rates_lockstep(
    agents: Sequence[Agent],
    envs: Sequence[Environment],
    attempts: int = 20,
    epsilon: float = 0.05,
    policy: Optional[StackedPolicy] = None,
) -> List[float]:
    """Per-lane success rate, lockstep over ``(agent, env)`` lanes.

    Lane ``i``'s value is bitwise identical to
    ``evaluate_success_rate(agents[i], envs[i], attempts, epsilon)`` provided
    each lane draws ε noise from its own stream (see
    :func:`evaluate_episodes_lockstep`).
    """
    from repro.rl.lockstep import build_vec_env

    vec_env = build_vec_env(envs)
    if policy is None:
        policy = StackedPolicy([agent.network for agent in agents])
    per_lane = evaluate_episodes_lockstep(
        agents, vec_env, policy, attempts=attempts, epsilon=epsilon
    )
    return [
        sum(1 for stats in lane if stats.success) / attempts for lane in per_lane
    ]
