"""Rollout and evaluation helpers.

Evaluation supports a small ε of residual exploration noise: the paper's
success-rate campaigns repeat each scenario many times, which is only
meaningful when the rollout has some stochasticity.  A small ε also mirrors
the fielded behaviour of exploitation-phase agents that retain a residual
exploration rate.

When no explicit ``rng`` is supplied the helpers draw the ε noise from the
*agent's own* seeded stream instead of fresh OS entropy, so campaigns built
from seeded agents evaluate reproducibly — the property the parallel campaign
runner's serial/parallel bit-identity guarantee rests on.  The deliberate
trade-off: evaluating a live agent advances its training stream, so the
evaluation cadence is part of an experiment's definition (changing it changes
the downstream trajectory — deterministically).  Pass an explicit ``rng`` to
evaluate without touching the agent's stream.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.envs.base import Environment
from repro.rl.base import Agent, EpisodeStats, outcome_to_stats
from repro.utils.rng import as_rng


def run_episode(agent: Agent, env: Environment, train: bool = True) -> EpisodeStats:
    """Run one episode (delegates to the agent's own loop)."""
    return agent.run_episode(env, train=train)


def greedy_episode(
    agent: Agent,
    env: Environment,
    max_steps: Optional[int] = None,
    epsilon: float = 0.0,
    rng=None,
) -> EpisodeStats:
    """Run one exploitation episode without learning.

    ``epsilon`` injects residual exploration noise (probability of a uniform
    random action per step); ``max_steps`` optionally caps the episode
    independently of the environment's own limit.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    rng = as_rng(rng if rng is not None else getattr(agent, "rng", None))
    observation = env.reset()
    total_reward = 0.0
    steps = 0
    last_info = {}
    done = False
    while not done:
        if epsilon > 0.0 and rng.random() < epsilon:
            action = int(rng.integers(0, env.action_count))
        else:
            action = agent.select_action(observation, explore=False)
        result = env.step(action)
        total_reward += result.reward
        steps += 1
        last_info = result.info
        observation = result.observation
        done = result.done
        if max_steps is not None and steps >= max_steps and not done:
            last_info = dict(last_info)
            last_info["outcome"] = "survived"
            done = True
    return outcome_to_stats(total_reward, steps, last_info)


def evaluate_success_rate(
    agent: Agent,
    env: Environment,
    attempts: int = 20,
    epsilon: float = 0.05,
    rng=None,
) -> float:
    """Fraction of attempts in which the agent reached the goal (GridWorld SR)."""
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    rng = as_rng(rng if rng is not None else getattr(agent, "rng", None))
    successes = 0
    for _ in range(attempts):
        stats = greedy_episode(agent, env, epsilon=epsilon, rng=rng)
        if stats.success:
            successes += 1
    return successes / attempts


def evaluate_flight_distance(
    agent: Agent,
    env: Environment,
    attempts: int = 5,
    epsilon: float = 0.0,
    rng=None,
) -> float:
    """Average safe flight distance over ``attempts`` exploitation episodes."""
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    rng = as_rng(rng if rng is not None else getattr(agent, "rng", None))
    distances: List[float] = []
    for _ in range(attempts):
        stats = greedy_episode(agent, env, epsilon=epsilon, rng=rng)
        distances.append(stats.flight_distance)
    return float(np.mean(distances))
