"""NN-based Q-learning agent for the GridWorld navigation task.

The GridWorld policy in the paper is a small neural network trained with a
"widely used NN-based method"; we use Q-learning with an MLP Q-network,
ε-greedy exploration with a decaying schedule, and a small replay buffer for
stable updates.  The learned Q-network *is* the policy that the federated
server aggregates and that the fault injector corrupts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.envs.base import Environment
from repro.nn import Adam, HuberLoss, Sequential, build_gridworld_q_network
from repro.rl.base import Agent, EpisodeStats, outcome_to_stats
from repro.rl.exploration import EpsilonSchedule, LinearEpsilonDecay
from repro.rl.replay import ReplayBuffer
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class QLearningConfig:
    """Hyper-parameters of the GridWorld Q-learning agent."""

    observation_size: int = 6
    action_count: int = 4
    hidden_sizes: tuple = (32, 32)
    learning_rate: float = 1e-2
    discount: float = 0.9
    batch_size: int = 16
    replay_capacity: int = 4000
    warmup_transitions: int = 32
    updates_per_step: int = 1
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_episodes: int = 150

    def __post_init__(self) -> None:
        if not 0.0 < self.discount < 1.0:
            raise ValueError(f"discount must be in (0, 1), got {self.discount}")
        if self.batch_size <= 0 or self.replay_capacity <= 0:
            raise ValueError("batch_size and replay_capacity must be positive")


class QLearningAgent(Agent):
    """ε-greedy Q-learning over a small MLP Q-network."""

    def __init__(
        self,
        config: Optional[QLearningConfig] = None,
        epsilon_schedule: Optional[EpsilonSchedule] = None,
        rng=None,
    ) -> None:
        self.config = config or QLearningConfig()
        self._rng = as_rng(rng)
        self.network: Sequential = build_gridworld_q_network(
            observation_size=self.config.observation_size,
            action_count=self.config.action_count,
            hidden_sizes=self.config.hidden_sizes,
            rng=self._rng,
        )
        self.optimizer = Adam(self.network.parameters(), learning_rate=self.config.learning_rate)
        self.loss_fn = HuberLoss()
        self.replay = ReplayBuffer(capacity=self.config.replay_capacity, rng=self._rng)
        self.epsilon_schedule = epsilon_schedule or LinearEpsilonDecay(
            start=self.config.epsilon_start,
            end=self.config.epsilon_end,
            decay_episodes=self.config.epsilon_decay_episodes,
        )
        self._epsilon = self.epsilon_schedule.value(0)
        self._episode_index = 0

    # ------------------------------------------------------------------ acting
    @property
    def exploration_rate(self) -> float:
        """The current episode's epsilon from the schedule."""
        return self._epsilon

    def begin_episode(self, episode_index: int) -> None:
        """Advance the epsilon schedule to ``episode_index``."""
        self._episode_index = episode_index
        self._epsilon = self.epsilon_schedule.value(episode_index)

    def q_values(self, observation: np.ndarray) -> np.ndarray:
        """The network's Q-value row for one observation."""
        observation = np.asarray(observation, dtype=np.float64).reshape(1, -1)
        return self.network.forward(observation)[0]

    def select_action(self, observation: np.ndarray, explore: bool = True) -> int:
        """Epsilon-greedy action; greedy only when ``explore`` is false."""
        if explore and self._rng.random() < self._epsilon:
            return int(self._rng.integers(0, self.config.action_count))
        return self.greedy_action_from(self.q_values(observation))

    def greedy_action_from(self, q_values: np.ndarray) -> int:
        """Greedy action from precomputed Q-values (draws no random numbers)."""
        return int(np.argmax(q_values))

    # ---------------------------------------------------------------- learning
    def _update_from_replay(self) -> float:
        if len(self.replay) < max(self.config.warmup_transitions, self.config.batch_size):
            return 0.0
        observations, actions, rewards, next_observations, dones = self.replay.sample_arrays(
            self.config.batch_size
        )
        next_q = self.network.forward(next_observations)
        targets_for_actions = rewards + self.config.discount * next_q.max(axis=1) * (~dones)
        predictions = self.network.forward(observations)
        targets = predictions.copy()
        targets[np.arange(len(actions)), actions] = targets_for_actions
        loss, grad = self.loss_fn(predictions, targets)
        self.network.zero_grad()
        self.network.backward(grad)
        self.optimizer.step()
        return loss

    def run_episode(self, env: Environment, train: bool = True) -> EpisodeStats:
        """Play one episode; when training, learn from replay each step."""
        observation = env.reset()
        total_reward = 0.0
        steps = 0
        last_info: Dict[str, object] = {}
        done = False
        while not done:
            action = self.select_action(observation, explore=train)
            result = env.step(action)
            total_reward += result.reward
            steps += 1
            last_info = result.info
            if train:
                self.replay.add(observation, action, result.reward, result.observation, result.done)
                for _ in range(self.config.updates_per_step):
                    self._update_from_replay()
            observation = result.observation
            done = result.done
        return outcome_to_stats(total_reward, steps, last_info)

    # ------------------------------------------------------------- parameters
    def state_dict(self) -> Dict[str, np.ndarray]:
        """The network parameters, keyed by layer."""
        return self.network.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Replace the network parameters with ``state``."""
        self.network.load_state_dict(state)
