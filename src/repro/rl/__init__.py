"""Reinforcement-learning algorithms used by the FRL navigation systems.

GridWorld agents learn with NN-based Q-learning (value-based, ε-greedy
exploration); drone agents learn with the REINFORCE policy gradient over a
CNN policy, matching the paper's training recipe (offline REINFORCE followed
by online fine-tuning).  Both expose the same :class:`Agent` interface so the
federated layer can treat them uniformly.
"""

from repro.rl.base import Agent, EpisodeStats
from repro.rl.exploration import ConstantEpsilon, EpsilonSchedule, LinearEpsilonDecay
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.qlearning import QLearningAgent, QLearningConfig
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.rollout import (
    evaluate_flight_distance,
    evaluate_success_rate,
    greedy_episode,
    run_episode,
)
from repro.rl.policy import consensus_policy_std, policy_action_distribution

__all__ = [
    "Agent",
    "EpisodeStats",
    "EpsilonSchedule",
    "LinearEpsilonDecay",
    "ConstantEpsilon",
    "ReplayBuffer",
    "Transition",
    "QLearningAgent",
    "QLearningConfig",
    "ReinforceAgent",
    "ReinforceConfig",
    "run_episode",
    "greedy_episode",
    "evaluate_success_rate",
    "evaluate_flight_distance",
    "consensus_policy_std",
    "policy_action_distribution",
]
