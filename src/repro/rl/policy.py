"""Policy-level statistics (paper Table I).

The paper quantifies the generalization of the consensus policy by the
standard deviation of its outputs: a larger spread over actions for a given
state means the policy differentiates good from bad actions more sharply,
which correlates with both higher performance and higher fault resilience.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

import numpy as np

from repro.envs.gridworld import enumerate_observations
from repro.nn import Linear, ReLU, Sequential
from repro.nn.losses import softmax

StateDict = Dict[str, np.ndarray]


def mlp_from_state_dict(state: StateDict) -> Sequential:
    """Rebuild an MLP (Linear/ReLU stack) from a Q-network state dict.

    The GridWorld Q-networks built by :func:`repro.nn.build_gridworld_q_network`
    store parameters under keys like ``"0.weight"`` / ``"0.bias"``; the layer
    topology is recovered from the weight shapes so callers do not need to
    know the hidden sizes used during training.
    """
    if not state:
        raise ValueError("state dict is empty")
    layer_indices = sorted(
        {int(match.group(1)) for key in state if (match := re.match(r"(\d+)\.weight", key))}
    )
    if not layer_indices:
        raise KeyError("state dict does not look like a Sequential MLP (no '<i>.weight' keys)")
    modules = []
    for position, layer_index in enumerate(layer_indices):
        weight = np.asarray(state[f"{layer_index}.weight"])
        has_bias = f"{layer_index}.bias" in state
        linear = Linear(weight.shape[0], weight.shape[1], bias=has_bias, rng=0)
        modules.append(linear)
        if position < len(layer_indices) - 1:
            modules.append(ReLU())
    network = Sequential(*modules)
    # Map original layer indices onto the rebuilt network's positions.
    rebuilt_state = {}
    rebuilt_indices = [i for i, module in enumerate(network.modules) if isinstance(module, Linear)]
    for original, rebuilt in zip(layer_indices, rebuilt_indices):
        rebuilt_state[f"{rebuilt}.weight"] = np.asarray(state[f"{original}.weight"])
        if f"{original}.bias" in state:
            rebuilt_state[f"{rebuilt}.bias"] = np.asarray(state[f"{original}.bias"])
    network.load_state_dict(rebuilt_state)
    return network


def policy_action_distribution(
    network: Sequential, observations: Optional[np.ndarray] = None
) -> np.ndarray:
    """Action-preference distribution of a Q-network over GridWorld states.

    Returns an array of shape ``(states, actions)`` with the softmax of the
    Q-values for every enumerated observation.  The observation size is taken
    from the network's first linear layer.
    """
    if observations is None:
        first_linear = next(m for m in network.modules if isinstance(m, Linear))
        observations = enumerate_observations(first_linear.in_features)
    q_values = network.forward(np.asarray(observations, dtype=np.float64))
    return softmax(q_values, axis=1)


def consensus_policy_std(state: StateDict) -> float:
    """Standard deviation of the consensus policy's action preferences.

    Rebuilds the Q-network from ``state`` and computes the standard deviation
    of per-state action probabilities, averaged over states.  Higher values
    indicate better differentiation between good and bad actions
    (paper Table I).
    """
    network = mlp_from_state_dict(state)
    distribution = policy_action_distribution(network)
    return float(distribution.std(axis=1).mean())
