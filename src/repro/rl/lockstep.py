"""Lockstep (vectorized) training over batches of independent rollouts.

The vectorized campaign path advances N independent REINFORCE rollouts
("lanes") through one vector environment and one :class:`StackedPolicy`
forward per step, instead of N python episode loops.  Byte-identity with the
serial path rests on three facts:

* every lane owns its own ``np.random.Generator`` (per-cell ``SeedSequence``
  streams are independent), and the per-lane draw *order on that stream* is
  unchanged — forward passes draw nothing, so batching them is invisible;
* the vector environments compute each lane's transition with the exact
  serial op sequence on gathered rows (see ``envs/*.py``);
* :class:`~repro.nn.batched.StackedPolicy` reproduces each network's forward
  bitwise (see ``nn/batched.py`` for the BLAS-layout argument).

Terminated lanes are frozen by mask, not dropped, so lane indices are stable
for the whole batch lifetime.  Q-learning training is *not* lockstep-able
(its replay updates interleave with stepping), so this engine is REINFORCE
only; evaluation of both agent families is handled in ``rl/rollout.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.envs.base import Environment
from repro.nn.batched import StackedPolicy
from repro.rl.base import Agent, EpisodeStats, outcome_to_stats


def build_vec_env(envs: Sequence[Environment]):
    """Wrap a batch of same-family environments in their vector counterpart."""
    from repro.envs.dronenav import DroneNavEnv, DroneNavVecEnv
    from repro.envs.gridworld import GridWorldEnv, GridWorldVecEnv

    if not envs:
        raise ValueError("build_vec_env needs at least one environment")
    head = envs[0]
    if isinstance(head, DroneNavEnv):
        return DroneNavVecEnv(envs)
    if isinstance(head, GridWorldEnv):
        return GridWorldVecEnv(envs)
    raise TypeError(f"no vector environment for {type(head).__name__}")


def _lane_info(vec_env, lane: int, outcome: Optional[str]) -> dict:
    """The ``info`` dict a lane's serial environment would report at ``done``."""
    info = {"outcome": outcome}
    distances = getattr(vec_env, "flight_distances", None)
    if distances is not None:
        info["flight_distance"] = float(distances[lane])
    return info


def train_episodes_lockstep(
    agents: Sequence[Agent],
    vec_env,
    policy: StackedPolicy,
    policy_lanes: Optional[np.ndarray] = None,
) -> List[EpisodeStats]:
    """Run one training episode per lane, all lanes advancing in lockstep.

    ``agents[i]`` drives lane ``i`` of ``vec_env`` using the stacked network
    at ``policy_lanes[i]`` (lane ``i`` when omitted).  Each lane's episode is
    bitwise identical to ``agents[i].run_episode(envs[i], train=True)``: the
    pre-step observation/action/reward buffers feed the agent's own
    ``_policy_gradient_step`` the moment its lane terminates.  ``policy`` must
    have been ``refresh()``-ed after the last weight mutation; updates applied
    here leave the stacked copies stale, so refresh again before reuse.
    """
    lane_count = vec_env.lane_count
    if len(agents) != lane_count:
        raise ValueError(f"need {lane_count} agents, got {len(agents)}")
    if policy_lanes is None:
        policy_lanes = np.arange(lane_count, dtype=np.int64)
    else:
        policy_lanes = np.asarray(policy_lanes, dtype=np.int64)
    current = np.array(vec_env.reset_batch(), copy=True)
    observation_buffers: List[List[np.ndarray]] = [[] for _ in range(lane_count)]
    action_buffers: List[List[int]] = [[] for _ in range(lane_count)]
    reward_buffers: List[List[float]] = [[] for _ in range(lane_count)]
    totals = np.zeros(lane_count, dtype=np.float64)
    steps = np.zeros(lane_count, dtype=np.int64)
    stats: List[Optional[EpisodeStats]] = [None] * lane_count
    while True:
        active = np.flatnonzero(~vec_env.done)
        if active.size == 0:
            break
        probabilities = policy.forward(current[active], lanes=policy_lanes[active])
        actions = np.zeros(lane_count, dtype=np.int64)
        for row, lane in enumerate(active):
            # Per-lane draw on the lane's own stream, in lane order — the
            # forward pass above consumed no randomness, so each stream sees
            # exactly the serial sequence.
            actions[lane] = agents[lane].sample_action_from(probabilities[row])
        result = vec_env.step_batch(actions)
        for lane in active:
            observation_buffers[lane].append(current[lane].copy())
            action_buffers[lane].append(int(actions[lane]))
            reward_buffers[lane].append(float(result.rewards[lane]))
            totals[lane] += result.rewards[lane]
            steps[lane] += 1
            if result.done[lane]:
                agents[lane]._policy_gradient_step(
                    observation_buffers[lane], action_buffers[lane], reward_buffers[lane]
                )
                stats[lane] = outcome_to_stats(
                    float(totals[lane]),
                    int(steps[lane]),
                    _lane_info(vec_env, lane, result.outcomes[lane]),
                )
        current[active] = result.observations[active]
    return stats  # type: ignore[return-value]


__all__ = ["build_vec_env", "train_episodes_lockstep"]
