"""REINFORCE policy-gradient agent for the drone navigation task.

The paper trains the drone CNN policy offline with REINFORCE and fine-tunes it
online with transfer learning inside the federated system.  The policy network
ends in a softmax over the 25-element perception-based action space; the
agent samples actions from that distribution during training and acts greedily
(or near-greedily) during inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.envs.base import Environment
from repro.nn import Adam, Sequential, build_drone_policy_network
from repro.rl.base import Agent, EpisodeStats, outcome_to_stats
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class ReinforceConfig:
    """Hyper-parameters of the drone REINFORCE agent."""

    input_shape: tuple = (3, 18, 32)
    action_count: int = 25
    conv_channels: tuple = (8, 16, 16)
    fc_hidden: int = 64
    learning_rate: float = 1e-3
    discount: float = 0.98
    entropy_bonus: float = 1e-3
    exploration_temperature: float = 1.0
    greedy_epsilon: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.discount <= 1.0:
            raise ValueError(f"discount must be in (0, 1], got {self.discount}")
        if self.exploration_temperature <= 0:
            raise ValueError("exploration_temperature must be positive")
        if not 0.0 <= self.greedy_epsilon <= 1.0:
            raise ValueError("greedy_epsilon must be in [0, 1]")


def discounted_returns(rewards: Sequence[float], discount: float) -> np.ndarray:
    """Reward-to-go returns G_t = sum_k gamma^k r_{t+k}."""
    returns = np.zeros(len(rewards), dtype=np.float64)
    running = 0.0
    for index in range(len(rewards) - 1, -1, -1):
        running = rewards[index] + discount * running
        returns[index] = running
    return returns


class ReinforceAgent(Agent):
    """Monte-Carlo policy gradient over a CNN softmax policy."""

    def __init__(self, config: Optional[ReinforceConfig] = None, rng=None) -> None:
        self.config = config or ReinforceConfig()
        self._rng = as_rng(rng)
        self.network: Sequential = build_drone_policy_network(
            input_shape=self.config.input_shape,
            action_count=self.config.action_count,
            conv_channels=self.config.conv_channels,
            fc_hidden=self.config.fc_hidden,
            rng=self._rng,
        )
        self.optimizer = Adam(self.network.parameters(), learning_rate=self.config.learning_rate)
        self._episode_index = 0

    # ------------------------------------------------------------------ acting
    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """The policy distribution over actions for one observation."""
        observation = np.asarray(observation, dtype=np.float64)
        if observation.ndim == 3:
            observation = observation[None, ...]
        return self.network.forward(observation)[0]

    def select_action(self, observation: np.ndarray, explore: bool = True) -> int:
        """Sample from the policy when exploring, else act greedily."""
        probabilities = self.action_probabilities(observation)
        if explore:
            return self.sample_action_from(probabilities)
        return self.greedy_action_from(probabilities)

    def sample_action_from(self, probabilities: np.ndarray) -> int:
        """Sample an exploration action from precomputed policy probabilities.

        This is the exploration branch of :meth:`select_action` split out so the
        lockstep evaluator can batch the forward pass while drawing from this
        agent's own stream in exactly the serial order.
        """
        return int(self._rng.choice(len(probabilities), p=probabilities))

    def greedy_action_from(self, probabilities: np.ndarray) -> int:
        """Exploitation action from precomputed probabilities (serial branch)."""
        if self.config.greedy_epsilon > 0 and self._rng.random() < self.config.greedy_epsilon:
            return int(self._rng.integers(0, len(probabilities)))
        return int(np.argmax(probabilities))

    def begin_episode(self, episode_index: int) -> None:
        """Record the episode index (REINFORCE keeps no schedule state)."""
        self._episode_index = episode_index

    @property
    def exploration_rate(self) -> float:
        """The greedy-branch epsilon (constant for REINFORCE)."""
        return self.config.greedy_epsilon

    # ---------------------------------------------------------------- learning
    def _policy_gradient_step(
        self,
        observations: List[np.ndarray],
        actions: List[int],
        rewards: List[float],
    ) -> float:
        """One REINFORCE update over a full episode."""
        if not observations:
            return 0.0
        batch = np.stack(observations)
        action_array = np.asarray(actions, dtype=np.int64)
        returns = discounted_returns(rewards, self.config.discount)
        # Normalizing returns keeps the gradient scale stable across episodes.
        if returns.size > 1 and returns.std() > 1e-8:
            advantages = (returns - returns.mean()) / returns.std()
        else:
            advantages = returns - returns.mean()
        probabilities = self.network.forward(batch)
        clipped = np.clip(probabilities, 1e-8, 1.0)
        # Loss = -sum_t A_t log pi(a_t | s_t) - entropy_bonus * H(pi).
        loss = float(
            -(advantages * np.log(clipped[np.arange(len(action_array)), action_array])).mean()
        )
        grad = np.zeros_like(probabilities)
        grad[np.arange(len(action_array)), action_array] = (
            -advantages / clipped[np.arange(len(action_array)), action_array]
        )
        if self.config.entropy_bonus > 0:
            # d(-H)/dp = log p + 1 ; we *subtract* entropy from the loss.
            grad += self.config.entropy_bonus * (np.log(clipped) + 1.0)
        grad /= len(action_array)
        self.network.zero_grad()
        self.network.backward(grad)
        self.optimizer.step()
        return loss

    def run_episode(self, env: Environment, train: bool = True) -> EpisodeStats:
        """Play one episode; when training, take one policy-gradient step."""
        observation = env.reset()
        observations: List[np.ndarray] = []
        actions: List[int] = []
        rewards: List[float] = []
        total_reward = 0.0
        steps = 0
        last_info: Dict[str, object] = {}
        done = False
        while not done:
            action = self.select_action(observation, explore=train)
            result = env.step(action)
            observations.append(observation)
            actions.append(action)
            rewards.append(result.reward)
            total_reward += result.reward
            steps += 1
            last_info = result.info
            observation = result.observation
            done = result.done
        if train:
            self._policy_gradient_step(observations, actions, rewards)
        return outcome_to_stats(total_reward, steps, last_info)

    # ------------------------------------------------------------- parameters
    def state_dict(self) -> Dict[str, np.ndarray]:
        """The network parameters, keyed by layer."""
        return self.network.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Replace the network parameters with ``state``."""
        self.network.load_state_dict(state)
