"""Exploration schedules.

The paper's on-device procedure has two phases: a *training* phase in which
the exploration-to-exploitation ratio decreases, and an *inference* phase of
pure greedy exploitation.  :class:`LinearEpsilonDecay` models the first,
:class:`ConstantEpsilon` the second (and the small evaluation noise used when
measuring success rates).
"""

from __future__ import annotations


class EpsilonSchedule:
    """Maps an episode index to an exploration rate ε ∈ [0, 1]."""

    def value(self, episode: int) -> float:
        """The exploration rate to use for ``episode``."""
        raise NotImplementedError

    def __call__(self, episode: int) -> float:
        return self.value(episode)


class ConstantEpsilon(EpsilonSchedule):
    """A fixed exploration rate."""

    def __init__(self, epsilon: float) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon

    def value(self, episode: int) -> float:
        """The fixed rate, independent of ``episode``."""
        return self.epsilon


class LinearEpsilonDecay(EpsilonSchedule):
    """Linearly decay ε from ``start`` to ``end`` over ``decay_episodes``."""

    def __init__(self, start: float = 1.0, end: float = 0.05, decay_episodes: int = 500) -> None:
        if not 0.0 <= end <= start <= 1.0:
            raise ValueError("require 0 <= end <= start <= 1")
        if decay_episodes <= 0:
            raise ValueError(f"decay_episodes must be positive, got {decay_episodes}")
        self.start = start
        self.end = end
        self.decay_episodes = decay_episodes

    def value(self, episode: int) -> float:
        """The linearly interpolated rate, clamped to ``end`` after decay."""
        if episode < 0:
            raise ValueError(f"episode must be non-negative, got {episode}")
        if episode >= self.decay_episodes:
            return self.end
        fraction = episode / self.decay_episodes
        return self.start + fraction * (self.end - self.start)
