"""Fault detection and recovery techniques (paper §V).

Two low-overhead, application-aware schemes:

* **Training — server checkpointing**: the agents' cumulative reward drop is
  the fault symptom; a drop of more than ``p`` % for ``k`` consecutive
  episodes in one agent flags an agent fault, in more than half the agents a
  server fault.  The server keeps a checkpoint of the consensus policy
  (updated every few communication rounds) and restores the faulty agent or
  itself from it.
* **Inference — range-based anomaly detection**: the per-layer weight range
  (with a 10 % margin) is recorded before steady exploitation starts; any
  weight outside the range is treated as corrupted and suppressed.

DMR/TMR redundancy baselines are provided for the end-to-end overhead
comparison (paper Fig. 9).
"""

from repro.mitigation.reward_monitor import DetectionEvent, RewardDropDetector
from repro.mitigation.checkpointing import ServerCheckpointCallback, CheckpointStore
from repro.mitigation.anomaly import RangeAnomalyDetector, WeightRange
from repro.mitigation.redundancy import (
    RedundancyScheme,
    dmr_detect,
    tmr_vote,
    PROTECTION_SCHEMES,
)

__all__ = [
    "RewardDropDetector",
    "DetectionEvent",
    "ServerCheckpointCallback",
    "CheckpointStore",
    "RangeAnomalyDetector",
    "WeightRange",
    "RedundancyScheme",
    "dmr_detect",
    "tmr_vote",
    "PROTECTION_SCHEMES",
]
