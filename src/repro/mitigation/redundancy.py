"""Hardware-redundancy baselines: DMR and TMR.

Dual and triple modular redundancy are the conventional protections the paper
compares against.  Functionally, DMR detects a mismatch between two replicas
(and must fall back to re-execution or a safe state), while TMR corrects
single-replica corruption by majority voting.  Their real cost in a drone is
the extra compute hardware: power and weight that shrink the achievable safe
flight distance (paper Fig. 9), modelled in :mod:`repro.droneperf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

StateDict = Dict[str, np.ndarray]


@dataclass(frozen=True)
class RedundancyScheme:
    """Cost profile of a protection scheme for the end-to-end overhead model."""

    name: str
    compute_replicas: int
    runtime_overhead: float  # fraction of extra execution time on the critical path
    detects: bool
    corrects: bool

    def __post_init__(self) -> None:
        if self.compute_replicas < 1:
            raise ValueError("compute_replicas must be at least 1")
        if self.runtime_overhead < 0:
            raise ValueError("runtime_overhead must be non-negative")


# The schemes compared in Fig. 9.  The proposed detection scheme runs on the
# existing hardware with <2.7 % runtime overhead; DMR/TMR replicate the
# compute subsystem.
PROTECTION_SCHEMES: Dict[str, RedundancyScheme] = {
    "baseline": RedundancyScheme("baseline", compute_replicas=1, runtime_overhead=0.0,
                                 detects=False, corrects=False),
    "detection": RedundancyScheme("detection", compute_replicas=1, runtime_overhead=0.027,
                                  detects=True, corrects=True),
    "dmr": RedundancyScheme("dmr", compute_replicas=2, runtime_overhead=0.0,
                            detects=True, corrects=False),
    "tmr": RedundancyScheme("tmr", compute_replicas=3, runtime_overhead=0.0,
                            detects=True, corrects=True),
}


def dmr_detect(primary: np.ndarray, replica: np.ndarray, tolerance: float = 0.0) -> bool:
    """True if the two replicas disagree anywhere beyond ``tolerance``."""
    primary = np.asarray(primary, dtype=np.float64)
    replica = np.asarray(replica, dtype=np.float64)
    if primary.shape != replica.shape:
        raise ValueError("replicas must have identical shapes")
    return bool((np.abs(primary - replica) > tolerance).any())


def tmr_vote(replicas: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise majority vote over three replicas.

    For each element the two closest replica values form the majority and
    their midpoint is returned; a corrupted outlier replica is therefore
    out-voted, which is how TMR masks single-replica faults.
    """
    if len(replicas) != 3:
        raise ValueError(f"TMR requires exactly 3 replicas, got {len(replicas)}")
    a, b, c = (np.asarray(r, dtype=np.float64) for r in replicas)
    if not (a.shape == b.shape == c.shape):
        raise ValueError("replicas must have identical shapes")
    ab = np.abs(a - b)
    ac = np.abs(a - c)
    bc = np.abs(b - c)
    result = np.where(ab <= np.minimum(ac, bc), (a + b) / 2.0,
                      np.where(ac <= bc, (a + c) / 2.0, (b + c) / 2.0))
    return result


def tmr_vote_state_dict(replicas: Sequence[StateDict]) -> StateDict:
    """Majority vote applied layer by layer to three policy replicas."""
    if len(replicas) != 3:
        raise ValueError(f"TMR requires exactly 3 replicas, got {len(replicas)}")
    names = set(replicas[0])
    if any(set(replica) != names for replica in replicas[1:]):
        raise KeyError("replica state dicts must share the same layer names")
    return {name: tmr_vote([replica[name] for replica in replicas]) for name in names}
