"""Reward-drop fault detection (training-time symptom detector).

The detector works on an application-level metric rather than bit-level
comparison: a fault that does not degrade the agents' cumulative rewards is
benign for the navigation task and should not trigger recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class DetectionEvent:
    """A detected fault."""

    episode: int
    kind: str  # "agent" or "server"
    agent_indices: tuple

    def __str__(self) -> str:
        agents = ",".join(str(index) for index in self.agent_indices)
        return f"{self.kind} fault detected at episode {self.episode} (agents: {agents})"


@dataclass
class _AgentMonitor:
    """Per-agent running baseline and consecutive-drop counter."""

    baseline: Optional[float] = None
    consecutive_drops: int = 0
    history: List[float] = field(default_factory=list)


class RewardDropDetector:
    """Detects faults from sustained cumulative-reward drops.

    Parameters mirror the paper: a drop of more than ``drop_percent`` below
    the agent's running baseline for ``consecutive_episodes`` episodes in a
    row flags that agent.  If more than half of the agents are flagged at the
    same episode, the fault is attributed to the server.
    """

    def __init__(
        self,
        agent_count: int,
        drop_percent: float = 25.0,
        consecutive_episodes: int = 50,
        baseline_window: int = 20,
        min_baseline_magnitude: float = 0.5,
    ) -> None:
        if agent_count <= 0:
            raise ValueError(f"agent_count must be positive, got {agent_count}")
        if drop_percent <= 0:
            raise ValueError(f"drop_percent must be positive, got {drop_percent}")
        if consecutive_episodes <= 0:
            raise ValueError(f"consecutive_episodes must be positive, got {consecutive_episodes}")
        if baseline_window <= 0:
            raise ValueError(f"baseline_window must be positive, got {baseline_window}")
        self.agent_count = agent_count
        self.drop_percent = drop_percent
        self.consecutive_episodes = consecutive_episodes
        self.baseline_window = baseline_window
        self.min_baseline_magnitude = min_baseline_magnitude
        self._monitors: Dict[int, _AgentMonitor] = {
            index: _AgentMonitor() for index in range(agent_count)
        }
        self.events: List[DetectionEvent] = []

    def _update_monitor(self, monitor: _AgentMonitor, reward: float) -> bool:
        """Update one agent's monitor; return True if it is currently flagged."""
        monitor.history.append(reward)
        window = monitor.history[-self.baseline_window :]
        healthy_baseline = max(window) if window else reward
        if monitor.baseline is None:
            monitor.baseline = healthy_baseline
        # The baseline tracks the best recent performance but never sinks with
        # a faulty phase faster than the window forgets it.
        monitor.baseline = max(healthy_baseline, monitor.baseline * 0.999)
        reference = max(abs(monitor.baseline), self.min_baseline_magnitude)
        threshold = monitor.baseline - reference * (self.drop_percent / 100.0)
        if reward < threshold:
            monitor.consecutive_drops += 1
        else:
            monitor.consecutive_drops = 0
        return monitor.consecutive_drops >= self.consecutive_episodes

    def observe(self, episode: int, rewards: Sequence[float]) -> Optional[DetectionEvent]:
        """Feed one episode's per-agent rewards; returns an event if detected."""
        if len(rewards) != self.agent_count:
            raise ValueError(
                f"expected {self.agent_count} rewards, got {len(rewards)}"
            )
        flagged = []
        for index, reward in enumerate(rewards):
            if self._update_monitor(self._monitors[index], float(reward)):
                flagged.append(index)
        if not flagged:
            return None
        kind = "server" if len(flagged) > self.agent_count / 2 else "agent"
        event = DetectionEvent(episode=episode, kind=kind, agent_indices=tuple(flagged))
        self.events.append(event)
        # Reset the counters of the flagged agents so recovery has time to act
        # before the same fault is reported again.
        for index in flagged:
            self._monitors[index].consecutive_drops = 0
        return event

    def reset_agent(self, agent_index: int) -> None:
        """Forget an agent's monitor state (after recovery)."""
        self._monitors[agent_index] = _AgentMonitor()

    def reset(self) -> None:
        for index in range(self.agent_count):
            self.reset_agent(index)
        self.events.clear()
