"""Range-based anomaly detection for inference (paper §V-B).

Before the agents enter steady exploitation the weights of each layer are
tallied and their range ``(w_min, w_max)`` recorded; a 10 % margin widens the
detector.  At inference time any weight falling outside its layer's range is
flagged as corrupted and suppressed (the operations that would consume the
outlier are skipped, which is equivalent to treating the weight as zero —
most NN values sit near zero, so this is the minimal-disturbance repair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.nn.network import clone_state_dict

StateDict = Dict[str, np.ndarray]


@dataclass(frozen=True)
class WeightRange:
    """Observed value range of one layer plus the detection margin."""

    minimum: float
    maximum: float
    margin: float

    @property
    def lower_bound(self) -> float:
        # The paper widens the detector to (1.1*w_min, 1.1*w_max) for the
        # usual case w_min < 0 < w_max; expressed generally, each bound moves
        # outward by 10 % of its magnitude (or by the margin itself when the
        # bound sits at zero) so a healthy weight is never flagged.
        if self.minimum == 0.0:
            return -self.margin
        return self.minimum - self.margin * abs(self.minimum)

    @property
    def upper_bound(self) -> float:
        if self.maximum == 0.0:
            return self.margin
        return self.maximum + self.margin * abs(self.maximum)

    def contains(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return (values >= self.lower_bound) & (values <= self.upper_bound)


class RangeAnomalyDetector:
    """Per-layer weight-range detector with out-of-range suppression."""

    def __init__(self, margin: float = 0.10) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.margin = margin
        self._ranges: Dict[str, WeightRange] = {}

    @property
    def is_calibrated(self) -> bool:
        return bool(self._ranges)

    @property
    def ranges(self) -> Dict[str, WeightRange]:
        return dict(self._ranges)

    def calibrate(self, state: StateDict) -> None:
        """Record per-layer ranges from a known-good policy."""
        if not state:
            raise ValueError("cannot calibrate on an empty state dict")
        self._ranges = {}
        for name, values in state.items():
            values = np.asarray(values, dtype=np.float64)
            self._ranges[name] = WeightRange(
                minimum=float(values.min()), maximum=float(values.max()), margin=self.margin
            )

    def detect(self, state: StateDict) -> Dict[str, np.ndarray]:
        """Boolean mask of anomalous elements per layer."""
        self._require_calibration()
        anomalies: Dict[str, np.ndarray] = {}
        for name, values in state.items():
            if name not in self._ranges:
                raise KeyError(f"layer {name!r} was not seen during calibration")
            anomalies[name] = ~self._ranges[name].contains(values)
        return anomalies

    def anomaly_count(self, state: StateDict) -> int:
        """Total number of out-of-range values in ``state``."""
        return int(sum(mask.sum() for mask in self.detect(state).values()))

    def repair(self, state: StateDict) -> Tuple[StateDict, int]:
        """Suppress anomalous values; returns (repaired state, #repaired).

        Out-of-range values are replaced by zero (most NN values sit near
        zero, so skipping the operation is the minimal-disturbance repair).
        If zero itself lies outside a layer's calibrated range — e.g. a bias
        vector whose healthy values are all positive — the value is clamped to
        the nearest range bound instead, so a repaired state is always free of
        anomalies.
        """
        self._require_calibration()
        repaired = clone_state_dict(state)
        total = 0
        for name, mask in self.detect(state).items():
            count = int(mask.sum())
            if count:
                layer_range = self._ranges[name]
                if layer_range.lower_bound <= 0.0 <= layer_range.upper_bound:
                    replacement = 0.0
                else:
                    values = repaired[name][mask]
                    replacement = np.clip(
                        values, layer_range.lower_bound, layer_range.upper_bound
                    )
                repaired[name][mask] = replacement
                total += count
        return repaired, total

    def _require_calibration(self) -> None:
        if not self._ranges:
            raise RuntimeError("detector must be calibrated before use")
