"""Server checkpointing with reward-drop-triggered recovery (paper §V-A).

The server stores a checkpoint of the consensus policy every
``checkpoint_interval`` communication rounds.  When the reward-drop detector
flags a single agent, the checkpoint is copied to that agent; when it flags
the server (more than half the agents degraded), the server's consensus is
rolled back to the checkpoint and re-broadcast to every agent.  Checkpointing
is asynchronous with aggregation, so it adds no runtime overhead to the
training loop itself — only the modest memory of one extra policy copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.federated.callbacks import TrainingCallback
from repro.mitigation.reward_monitor import DetectionEvent, RewardDropDetector
from repro.nn.network import clone_state_dict

StateDict = Dict[str, np.ndarray]


class CheckpointStore:
    """Holds the most recent healthy consensus checkpoint."""

    def __init__(self) -> None:
        self._checkpoint: Optional[StateDict] = None
        self.saved_rounds = 0

    @property
    def checkpoint(self) -> Optional[StateDict]:
        return self._checkpoint

    def save(self, state: StateDict) -> None:
        self._checkpoint = clone_state_dict(state)
        self.saved_rounds += 1

    def restore(self) -> StateDict:
        if self._checkpoint is None:
            raise RuntimeError("no checkpoint has been saved yet")
        return clone_state_dict(self._checkpoint)

    @property
    def has_checkpoint(self) -> bool:
        return self._checkpoint is not None


class ServerCheckpointCallback(TrainingCallback):
    """Training callback implementing detection + checkpoint recovery."""

    def __init__(
        self,
        agent_count: int,
        drop_percent: float = 25.0,
        consecutive_episodes: int = 50,
        checkpoint_interval: int = 5,
        baseline_window: int = 20,
    ) -> None:
        if checkpoint_interval <= 0:
            raise ValueError(f"checkpoint_interval must be positive, got {checkpoint_interval}")
        self.detector = RewardDropDetector(
            agent_count=agent_count,
            drop_percent=drop_percent,
            consecutive_episodes=consecutive_episodes,
            baseline_window=baseline_window,
        )
        self.store = CheckpointStore()
        self.checkpoint_interval = checkpoint_interval
        self.recoveries: List[DetectionEvent] = []
        self._rounds_since_checkpoint = 0
        self._episode_rewards: List[float] = []

    # --------------------------------------------------------------- tracking
    def on_episode_start(self, system, episode: int) -> None:
        self._episode_rewards = [0.0] * system.agent_count

    def on_agent_episode_end(self, system, episode, agent_index, stats) -> None:
        if agent_index < len(self._episode_rewards):
            self._episode_rewards[agent_index] = stats.total_reward

    def on_round_end(self, system, episode: int, communicated: bool) -> None:
        # Periodically snapshot the consensus policy (asynchronously with the
        # aggregation path; here simply after the round completes).
        if communicated:
            self._rounds_since_checkpoint += 1
            if (
                self._rounds_since_checkpoint >= self.checkpoint_interval
                or not self.store.has_checkpoint
            ):
                consensus = system.consensus_state()
                self.store.save(consensus)
                self._rounds_since_checkpoint = 0
        elif not self.store.has_checkpoint:
            self.store.save(system.consensus_state())
        event = self.detector.observe(episode, self._episode_rewards)
        if event is not None and self.store.has_checkpoint:
            self._recover(system, event)

    # --------------------------------------------------------------- recovery
    def _recover(self, system, event: DetectionEvent) -> None:
        checkpoint = self.store.restore()
        if event.kind == "agent":
            for agent_index in event.agent_indices:
                system.corrupt_agent(agent_index, checkpoint)
                self.detector.reset_agent(agent_index)
        else:
            # Server fault: roll the server back and re-broadcast to everyone.
            if hasattr(system, "server"):
                system.server.set_consensus(checkpoint)
            for agent_index in range(system.agent_count):
                system.corrupt_agent(agent_index, checkpoint)
                self.detector.reset_agent(agent_index)
        self.recoveries.append(event)
        system.log.record_event(event.episode, "checkpoint_recovery",
                                fault_kind=event.kind, agents=list(event.agent_indices))

    @property
    def recovery_count(self) -> int:
        return len(self.recoveries)
