"""Programmatic checks of the paper's qualitative observations.

The paper's claims are about *shapes*: higher BER hurts more, later faults
hurt more, server faults hurt more than agent faults, multi-agent beats
single-agent, mitigation recovers the baseline.  These helpers turn those
claims into boolean checks over the experiment results so benchmarks and
EXPERIMENTS.md can state which observations the reproduction confirms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import HeatmapResult, SweepResult


@dataclass(frozen=True)
class ObservationCheck:
    """Outcome of one qualitative check."""

    name: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        status = "CONFIRMED" if self.holds else "NOT CONFIRMED"
        return f"[{status}] {self.name}: {self.detail}"


def check_heatmap_trend(
    result: HeatmapResult,
    name: str = "higher BER degrades the metric",
    tolerance: float = 0.05,
) -> ObservationCheck:
    """Check that the last (highest-BER) row is no better than the first row.

    ``tolerance`` is the fraction of the first-row mean by which the last row
    may exceed it before the check fails (noise allowance).
    """
    first_row = result.values[0]
    last_row = result.values[-1]
    first_mean = float(np.mean(first_row))
    last_mean = float(np.mean(last_row))
    holds = last_mean <= first_mean * (1.0 + tolerance)
    detail = f"baseline row mean {first_mean:.2f}, highest-BER row mean {last_mean:.2f}"
    return ObservationCheck(name=name, holds=holds, detail=detail)


def check_series_order(
    result: SweepResult,
    better: str,
    worse: str,
    name: str = "",
    at: str = "mean",
) -> ObservationCheck:
    """Check that series ``better`` dominates series ``worse``.

    ``at`` chooses the comparison point: ``"mean"`` compares the averages over
    the sweep, ``"last"`` compares the final (highest-stress) point.
    """
    better_values = np.asarray(result.series[better], dtype=np.float64)
    worse_values = np.asarray(result.series[worse], dtype=np.float64)
    if at == "mean":
        better_point, worse_point = float(better_values.mean()), float(worse_values.mean())
    elif at == "last":
        better_point, worse_point = float(better_values[-1]), float(worse_values[-1])
    else:
        raise ValueError(f"at must be 'mean' or 'last', got {at!r}")
    holds = better_point >= worse_point
    label = name or f"{better} outperforms {worse}"
    detail = f"{better}={better_point:.2f} vs {worse}={worse_point:.2f} ({at})"
    return ObservationCheck(name=label, holds=holds, detail=detail)


def check_improvement(
    result: SweepResult,
    baseline: str = "no_mitigation",
    improved: str = "mitigation",
    minimum_factor: float = 1.0,
    name: str = "mitigation improves resilience",
) -> ObservationCheck:
    """Check that the mitigation series improves on the baseline series."""
    factor = result.metadata.get("max_improvement_factor")
    if factor is None:
        baseline_values = np.asarray(result.series[baseline], dtype=np.float64)
        improved_values = np.asarray(result.series[improved], dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(baseline_values > 0, improved_values / baseline_values, 1.0)
        factor = float(np.max(ratios))
    holds = factor >= minimum_factor
    detail = f"max improvement factor {factor:.2f}x (threshold {minimum_factor:.2f}x)"
    return ObservationCheck(name=name, holds=holds, detail=detail)
