"""Render experiment results into plain-text reports."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.results import HeatmapResult, SweepResult, TableResult


def render_result(result) -> str:
    """Render any experiment result (heatmap, sweep, table) as text."""
    if isinstance(result, (HeatmapResult, SweepResult, TableResult)):
        return result.render()
    return str(result)


def experiment_report(
    results: Dict[str, object],
    observations: Optional[Iterable] = None,
    title: str = "FRL-FI reproduction report",
) -> str:
    """Combine experiment results and observation checks into one report."""
    lines = [title, "=" * len(title), ""]
    for experiment_id in sorted(results):
        lines.append(f"--- {experiment_id} ---")
        lines.append(render_result(results[experiment_id]))
        lines.append("")
    if observations:
        lines.append("Observation checks")
        lines.append("------------------")
        for check in observations:
            lines.append(str(check))
    return "\n".join(lines)
