"""Analysis helpers: observation extraction and report generation."""

from repro.analysis.observations import (
    ObservationCheck,
    check_heatmap_trend,
    check_improvement,
    check_series_order,
)
from repro.analysis.report import experiment_report, render_result

__all__ = [
    "ObservationCheck",
    "check_heatmap_trend",
    "check_series_order",
    "check_improvement",
    "experiment_report",
    "render_result",
]
