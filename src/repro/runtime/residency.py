"""Per-worker residency of pretrained baseline policies.

Decomposed campaign plans used to ship pretrained policies to every cell *by
value*: the process pool re-pickled the same state dict once per cell, which
is wasteful at paper scale (thousands of cells sharing a handful of
baselines).  This module replaces the by-value payload with a
:class:`PolicyRef` — a ``(cache_dir, key, field)`` handle into the disk-backed
policy cache — and a module-level registry that makes each referenced policy
*resident* in a worker process: the JSON cache entry is read and decoded once
per worker, then every cell that references it receives a cheap in-memory
copy.

The runner arranges residency through a ``ProcessPoolExecutor`` initializer
(:func:`preload_policy_refs`), so workers pay the decode cost once, before the
first cell arrives.  Serial execution resolves through the same registry in
the parent process, keeping the two paths byte-identical.

This module sits below :mod:`repro.core` in the import graph (like
:mod:`repro.runtime.cells`), so it reads cache entries directly via the
serialization helpers instead of importing :class:`repro.core.pretrained.PolicyCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.serialization import load_json, state_dict_from_lists

StateDict = Dict[str, np.ndarray]


@dataclass(frozen=True)
class PolicyRef:
    """A by-reference handle to a pretrained policy in the on-disk cache.

    ``cache_dir`` and ``key`` locate the JSON cache entry (written by
    :class:`repro.core.pretrained.PolicyCache`); ``field`` names the state
    dict inside the entry's payload (e.g. ``"policy"`` or ``"consensus"``).
    Plan builders must ensure the entry exists *before* handing out a ref —
    workers never train baselines, they only read them.
    """

    cache_dir: str
    key: str
    field: str = "policy"

    @property
    def path(self) -> Path:
        """The on-disk JSON cache entry this ref points at."""
        return Path(self.cache_dir) / f"{self.key}.json"

    def describe(self) -> str:
        """Human-readable form of the ref for error messages."""
        return f"{self.key}.json[{self.field}]"

    def fingerprint_token(self) -> str:
        """Machine-independent digest token for plan fingerprints.

        Identifies the cache *entry* — ``(key, field)`` — and deliberately
        excludes ``cache_dir``: the cache key already encodes everything that
        determines the policy's content (training scale, seed, datatype), so
        where the cache happens to live on one machine must not invalidate a
        journal resumed or merged on another (see
        :func:`repro.runtime.journal.plan_fingerprint`).
        """
        return f"PolicyRef(key={self.key!r}, field={self.field!r})"


class PolicyResidencyError(RuntimeError):
    """A :class:`PolicyRef` could not be resolved against the cache."""


# One resident (decoded) state dict per referenced policy, per process.
_RESIDENT: Dict[PolicyRef, StateDict] = {}


def resident_policy_count() -> int:
    """Number of policies currently resident in this process."""
    return len(_RESIDENT)


def clear_residency() -> None:
    """Drop every resident policy (test isolation helper)."""
    _RESIDENT.clear()


def _make_resident(ref: PolicyRef) -> StateDict:
    """Decode ``ref``'s cache entry into the registry (once per process)."""
    master = _RESIDENT.get(ref)
    if master is not None:
        return master
    if not ref.path.exists():
        raise PolicyResidencyError(
            f"policy cache entry {ref.describe()} not found under {ref.cache_dir!r}; "
            "plan builders must populate the cache before cells are executed"
        )
    payload = load_json(ref.path)
    if not isinstance(payload, dict) or ref.field not in payload:
        raise PolicyResidencyError(
            f"policy cache entry {ref.describe()} has no field {ref.field!r}"
        )
    master = state_dict_from_lists(payload[ref.field])
    _RESIDENT[ref] = master
    return master


def resolve_policy_ref(ref: PolicyRef) -> StateDict:
    """Resolve ``ref`` to a state dict, decoding the cache entry once per process.

    Returns a *fresh copy* of the resident arrays on every call: cells are free
    to mutate their policy (fault injection, fine-tuning) without corrupting
    the master copy that later cells in the same worker will receive.
    """
    master = _make_resident(ref)
    return {name: array.copy() for name, array in master.items()}


def preload_policy_refs(refs: Sequence[PolicyRef]) -> None:
    """Make every ref resident now — the process-pool worker initializer."""
    for ref in refs:
        _make_resident(ref)


def resolve_policy_kwargs(kwargs: Dict) -> Dict:
    """Replace every :class:`PolicyRef` value in ``kwargs`` with its state dict."""
    if not any(isinstance(value, PolicyRef) for value in kwargs.values()):
        return kwargs
    return {
        name: resolve_policy_ref(value) if isinstance(value, PolicyRef) else value
        for name, value in kwargs.items()
    }


def collect_policy_refs(cells: Iterable) -> Tuple[PolicyRef, ...]:
    """The unique policy refs used by ``cells``, in first-use order."""
    seen: List[PolicyRef] = []
    for cell in cells:
        for value in cell.kwargs.values():
            if isinstance(value, PolicyRef) and value not in seen:
                seen.append(value)
    return tuple(seen)
