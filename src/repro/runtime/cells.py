"""Cell decomposition primitives for fault-injection campaigns.

A paper artifact (``fig3a`` ... ``fig9``, ``table1``) is a grid of independent
(figure, BER, fault location, seed) measurements.  The runtime layer expresses
each artifact as a :class:`CampaignPlan`: a list of :class:`CellTask` items —
each a picklable, module-level function plus keyword arguments — and a merge
function that folds the per-cell outputs (in cell order) back into the
experiment's result object.

Because every cell derives its random streams from keyed
``numpy.random.SeedSequence`` children (via :class:`repro.utils.rng.RngFactory`
or :func:`derive_cell_seeds`), the same plan executed serially, on a process
pool, or across machines produces bit-identical merged results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.residency import resolve_policy_kwargs


@dataclass
class CellTask:
    """One independent unit of campaign work.

    ``fn`` must be a module-level (importable, hence picklable) callable and
    ``kwargs`` its keyword arguments; ``key`` identifies the cell within its
    experiment (e.g. ``("repeat", 0, "ber", 1, "episode", 2)``) for progress
    and error reporting.

    Pretrained baselines appear in ``kwargs`` as
    :class:`repro.runtime.residency.PolicyRef` handles rather than state
    dicts; :meth:`run` resolves them through the per-process residency
    registry, so the cell function itself always receives plain state dicts.
    """

    experiment_id: str
    key: Tuple
    fn: Callable
    kwargs: Dict = field(default_factory=dict)

    def run(self):
        """Execute the cell: resolve any :class:`PolicyRef` kwargs, call ``fn``."""
        return self.fn(**resolve_policy_kwargs(self.kwargs))

    def describe(self) -> str:
        """Human-readable cell identifier for progress and error messages."""
        return f"{self.experiment_id}{list(self.key)}"


@dataclass
class CampaignPlan:
    """An experiment decomposed into independent cells plus a merge step.

    ``merge`` receives the cell outputs in the same order as ``cells``
    regardless of completion order, so floating-point accumulation matches the
    original serial loops exactly.  Shared pretrained baselines are trained
    (or found) in the disk-backed policy cache while the plan is *built* (in
    the parent process) and referenced from cells by
    :class:`~repro.runtime.residency.PolicyRef`, so pooled workers never
    retrain them and submission payloads stay small.
    """

    experiment_id: str
    cells: List[CellTask]
    merge: Callable[[List[object]], object]

    @property
    def cell_count(self) -> int:
        """Number of independent cells in the plan."""
        return len(self.cells)

    def run_serial(self):
        """Execute the plan in-process, in order (the bit-identical fallback)."""
        return self.merge([cell.run() for cell in self.cells])


def derive_cell_seeds(root_seed: Optional[int], count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from ``root_seed``.

    Uses ``numpy.random.SeedSequence.spawn`` so the derived seeds are
    statistically independent and reproducible regardless of how many cells a
    campaign is split into.  Used by the CLI's ``--replicates`` option to give
    each campaign replicate its own seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def shard_cell_indices(shard_index: int, shard_count: int, cell_count: int) -> List[int]:
    """The cell indices assigned to shard ``shard_index`` of ``shard_count``.

    The partition is strided (shard *k* of *n* owns indices ``k-1, k-1+n,
    k-1+2n, ...``), so the expensive cells of a plan — which cluster by grid
    row, e.g. high-BER rows — spread evenly across shards instead of landing
    on one machine.  For every ``(shard_count, cell_count)`` the shards are
    pairwise disjoint and their union is ``range(cell_count)`` (pinned by
    ``tests/properties``), which is what lets ``--merge-only`` treat coverage
    gaps as hard errors.

    ``shard_index`` is 1-based, matching the CLI's ``--shard k/n`` spelling.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    if not 1 <= shard_index <= shard_count:
        raise ValueError(
            f"shard index must be in 1..{shard_count}, got {shard_index} "
            "(--shard k/n is 1-based)"
        )
    if cell_count < 0:
        raise ValueError(f"cell count must be non-negative, got {cell_count}")
    return list(range(shard_index - 1, cell_count, shard_count))


def single_cell_plan(experiment_id: str, fn: Callable, kwargs: Dict) -> CampaignPlan:
    """Wrap a whole experiment function as a one-cell plan.

    Fallback for artifacts without a finer-grained decomposition: the
    experiment still runs through the same executor (and off the main process
    when a pool is available), it just cannot spread across workers.
    """
    cell = CellTask(experiment_id=experiment_id, key=("all",), fn=fn, kwargs=kwargs)
    return CampaignPlan(experiment_id=experiment_id, cells=[cell], merge=lambda outputs: outputs[0])


def grid_merge_order(repeats: int, rows: int, columns: int) -> List[Tuple[int, int, int]]:
    """The canonical (repeat, row, column) enumeration order of heatmap cells."""
    return [
        (repeat, row, column)
        for repeat in range(repeats)
        for row in range(rows)
        for column in range(columns)
    ]


def accumulate_heatmap(
    outputs: Sequence[float], repeats: int, rows: int, columns: int
) -> np.ndarray:
    """Fold per-cell scalars back into the (rows × columns) accumulator.

    Accumulation happens in the original serial loop order (repeat-major), so
    the floating-point sums are bitwise identical to the historical nested
    loops.
    """
    expected = repeats * rows * columns
    if len(outputs) != expected:
        raise ValueError(f"expected {expected} cell outputs, got {len(outputs)}")
    values = np.zeros((rows, columns))
    for (_repeat, row, column), output in zip(grid_merge_order(repeats, rows, columns), outputs):
        values[row, column] += output
    return values
