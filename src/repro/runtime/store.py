"""Queryable result store: sqlite compaction of journals and reports.

Campaign truth lives in three kinds of loose files, each built for a
different job: per-label JSONL journals (resume + the multi-machine wire
format), ``<label>.shard-k-of-n.jsonl`` shard journals, and
``<label>.orchestrator.json`` attempt reports.  None of them is built for
*analysis* — every cross-campaign question (failure rate vs BER across runs,
per-backend timing regressions, retry rates) used to mean an ad-hoc script
over a journal directory.  :class:`ResultStore` is the compaction step: it
incrementally ingests those files into one schema-versioned sqlite database
that ``repro-campaign query`` (and raw SQL) can slice.

Design rules, in order:

* **Ingest is idempotent and incremental.**  Every ingested file is recorded
  in the ``sources`` table keyed by absolute path with its mtime/size; a file
  that has not changed is skipped entirely, so re-running ``ingest`` over the
  same journal directory inserts zero rows.  A file that *has* changed (a
  resumed shard journal that grew) replaces exactly its own rows.
* **The journal layer's tolerance carries over.**  A truncated or corrupt
  trailing journal line — the signature of a mid-write kill — is discarded
  exactly as :meth:`repro.runtime.journal.CampaignJournal.load` discards it;
  everything before it is ingested.
* **Mixed fingerprints are refused loudly.**  Two journal files for the same
  label in one directory with different plan fingerprints (a merged journal
  beside stale shard journals from an older grid, say) abort the ingest with
  a :class:`StoreError` naming the offending files — the store never blends
  cells from two different plans under one campaign.
* **Provenance survives compaction.**  Campaign rows carry the journal's
  ``fingerprint`` and ``fingerprint_version``; cell rows carry their source
  file and shard coordinates; attempt rows carry the backend that ran them.

The on-disk schema is versioned (:data:`SCHEMA_VERSION` in ``store_meta``):
opening a store written under a different schema fails loudly instead of
misreading rows.  See ``docs/RESULTS.md`` for the full schema and worked
query examples.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.journal import FINGERPRINT_VERSION
from repro.runtime.sharding import parse_shard_journal_name

logger = logging.getLogger(__name__)

#: Version of the sqlite schema below.  Bump on any table/column change so a
#: store written by an older build is refused instead of misread.
SCHEMA_VERSION = 1

#: Suffix of orchestrator attempt reports in a journal directory.
_REPORT_SUFFIX = ".orchestrator.json"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sources (
    source_id   INTEGER PRIMARY KEY,
    path        TEXT NOT NULL UNIQUE,
    kind        TEXT NOT NULL CHECK (kind IN ('journal', 'shard-journal', 'report')),
    mtime_ns    INTEGER NOT NULL,
    size_bytes  INTEGER NOT NULL,
    ingested_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id         INTEGER PRIMARY KEY,
    label               TEXT NOT NULL,
    experiment_id       TEXT NOT NULL,
    fingerprint         TEXT NOT NULL,
    fingerprint_version INTEGER NOT NULL,
    cell_count          INTEGER NOT NULL,
    UNIQUE (label, fingerprint)
);
CREATE TABLE IF NOT EXISTS cells (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(campaign_id),
    source_id   INTEGER NOT NULL REFERENCES sources(source_id),
    cell_index  INTEGER NOT NULL,
    cell_key    TEXT NOT NULL,
    output      TEXT NOT NULL,
    shard_index INTEGER,
    shard_count INTEGER,
    PRIMARY KEY (campaign_id, source_id, cell_index)
);
CREATE INDEX IF NOT EXISTS cells_by_campaign ON cells (campaign_id, cell_index);
CREATE TABLE IF NOT EXISTS reports (
    report_id        INTEGER PRIMARY KEY,
    source_id        INTEGER NOT NULL UNIQUE REFERENCES sources(source_id),
    label            TEXT NOT NULL,
    experiment_id    TEXT NOT NULL,
    shard_count      INTEGER NOT NULL,
    cell_count       INTEGER NOT NULL,
    max_retries      INTEGER NOT NULL,
    merged           INTEGER NOT NULL,
    duration_seconds REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS backends (
    report_id   INTEGER NOT NULL REFERENCES reports(report_id),
    position    INTEGER NOT NULL,
    description TEXT NOT NULL,
    PRIMARY KEY (report_id, position)
);
CREATE TABLE IF NOT EXISTS attempts (
    report_id        INTEGER NOT NULL REFERENCES reports(report_id),
    shard            TEXT NOT NULL,
    attempt          INTEGER NOT NULL,
    backend          TEXT,
    returncode       INTEGER,
    duration_seconds REAL NOT NULL,
    cells_completed  INTEGER NOT NULL,
    resumed          INTEGER NOT NULL,
    reason           TEXT,
    succeeded        INTEGER NOT NULL,
    PRIMARY KEY (report_id, shard, attempt)
);
"""


class StoreError(RuntimeError):
    """The store could not ingest a file, or a query cannot be answered."""


def read_journal_records(path) -> Tuple[Optional[dict], List[dict]]:
    """The header and cell records of one journal file, tail-tolerantly.

    Mirrors :meth:`repro.runtime.journal.CampaignJournal.load`'s parsing
    contract without requiring a plan: only newline-terminated lines count, a
    corrupt or truncated trailing line (a mid-write kill) ends the scan with
    everything before it kept, and malformed cell records end the scan
    rather than poisoning the store.  Returns ``(None, [])`` for a file with
    no readable header (empty, or the header line itself is the partial
    write) — the caller skips such files and retries on a later ingest.
    """
    raw = Path(path).read_bytes()
    lines = raw.split(b"\n")[:-1]
    header: Optional[dict] = None
    cells: List[dict] = []
    for line_number, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if line_number == 0:
                return None, []
            break  # tolerable truncated tail, exactly as journal.load()
        if line_number == 0:
            if not isinstance(record, dict) or record.get("kind") != "header":
                return None, []
            header = record
            continue
        if not isinstance(record, dict) or record.get("kind") != "cell":
            break
        if not isinstance(record.get("index"), int) or "output" not in record:
            break
        cells.append(record)
    return header, cells


@dataclass
class IngestReport:
    """What one :meth:`ResultStore.ingest` pass did, for humans and asserts."""

    scanned: int = 0
    skipped: int = 0
    ingested: List[str] = field(default_factory=list)
    campaigns_added: int = 0
    cells_added: int = 0
    attempts_added: int = 0
    warnings: List[str] = field(default_factory=list)

    @property
    def rows_added(self) -> int:
        """Total new cell + attempt rows (zero on an idempotent re-ingest)."""
        return self.cells_added + self.attempts_added

    def render(self) -> str:
        """One-paragraph human-readable ingest summary."""
        lines = [
            f"scanned {self.scanned} file(s): {len(self.ingested)} ingested, "
            f"{self.skipped} unchanged (skipped); "
            f"+{self.campaigns_added} campaign(s), +{self.cells_added} cell row(s), "
            f"+{self.attempts_added} attempt row(s)"
        ]
        for path in self.ingested:
            lines.append(f"  ingested {path}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)


def _numeric_leaves(value) -> List[float]:
    """Every int/float leaf in a JSON-decoded cell output, in order."""
    if isinstance(value, bool):
        return []
    if isinstance(value, (int, float)):
        return [float(value)]
    if isinstance(value, list):
        return [leaf for item in value for leaf in _numeric_leaves(item)]
    if isinstance(value, dict):
        return [leaf for item in value.values() for leaf in _numeric_leaves(item)]
    return []


def _key_coordinate(key, coordinate: str):
    """The value following ``coordinate`` in a cell key, or ``None``.

    Cell keys are name/value sequences (``["drones", 2, "location",
    "server", "ber", 0]``), so the coordinate's value is the element right
    after its name.
    """
    if not isinstance(key, list):
        return None
    for position in range(len(key) - 1):
        if key[position] == coordinate:
            return key[position + 1]
    return None


class ResultStore:
    """One sqlite database of compacted campaign results and attempt reports.

    Usable as a context manager; :meth:`ingest` folds a journal directory in,
    the ``query_*`` methods answer the canned CLI queries, and :meth:`sql`
    is the raw escape hatch.  All query methods return ``(columns, rows)``
    with JSON columns already decoded, so callers (CLI formatting, tests)
    never re-parse.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(self.path)
        self._connection.row_factory = sqlite3.Row
        self._init_schema()

    def _init_schema(self) -> None:
        """Create the schema on a fresh store; verify the version on an old one."""
        with self._connection:
            self._connection.executescript(_SCHEMA)
            row = self._connection.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._connection.execute(
                    "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif row["value"] != str(SCHEMA_VERSION):
                raise StoreError(
                    f"store {self.path} has schema version {row['value']}, but this "
                    f"build reads version {SCHEMA_VERSION}; re-ingest into a fresh "
                    "store file"
                )

    def close(self) -> None:
        """Close the underlying sqlite connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ResultStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # ---------------------------------------------------------------- ingest
    def ingest(self, journal_dir) -> IngestReport:
        """Fold one journal directory's files into the store, incrementally.

        Scans the directory's top level for merged journals (``<label>.jsonl``),
        shard journals (``<label>.shard-k-of-n.jsonl``) and orchestrator
        reports (``<label>.orchestrator.json``).  Unchanged files (same
        mtime and size as their ``sources`` row) are skipped — a re-ingest
        of an untouched directory inserts zero rows; changed files replace
        exactly their own rows.  Journals whose labels carry mixed plan
        fingerprints abort with :class:`StoreError` naming the files;
        journals without a readable header (or with a non-current
        ``fingerprint_version``) are skipped with a warning, mirroring the
        journal layer's own stale-journal reporting.
        """
        journal_dir = Path(journal_dir)
        if not journal_dir.is_dir():
            raise StoreError(f"journal directory {journal_dir} does not exist")
        report = IngestReport()
        journals = self._scan_journals(journal_dir, report)
        self._refuse_mixed_fingerprints(journals)
        with self._connection:
            for path, label, shard, header, cells in journals:
                self._ingest_journal(path, label, shard, header, cells, report)
            for path in sorted(journal_dir.glob(f"*{_REPORT_SUFFIX}")):
                self._ingest_report(path, report)
        for warning in report.warnings:
            logger.warning("%s", warning)
        return report

    def _scan_journals(self, journal_dir: Path, report: IngestReport) -> List[tuple]:
        """Parse every journal file in ``journal_dir`` into ingestable tuples."""
        journals = []
        for path in sorted(journal_dir.glob("*.jsonl")):
            report.scanned += 1
            parsed = parse_shard_journal_name(path.name)
            if parsed is not None:
                label, shard = parsed
            else:
                label, shard = path.name[: -len(".jsonl")], None
            header, cells = read_journal_records(path)
            if header is None:
                report.warnings.append(
                    f"skipping {path}: no readable journal header (still being "
                    "written, or not a campaign journal)"
                )
                continue
            version = header.get("fingerprint_version")
            if version != FINGERPRINT_VERSION or not header.get("fingerprint"):
                written = (
                    "an unversioned (version-1) fingerprint"
                    if version is None
                    else f"fingerprint version {version}"
                )
                report.warnings.append(
                    f"skipping {path}: journal was written with {written}, but this "
                    f"build ingests version {FINGERPRINT_VERSION} journals only"
                )
                continue
            journals.append((path, label, shard, header, cells))
        return journals

    @staticmethod
    def _refuse_mixed_fingerprints(journals: Sequence[tuple]) -> None:
        """Abort when one label's journal files disagree on the plan fingerprint."""
        by_label: Dict[str, Dict[str, List[str]]] = {}
        for path, label, _, header, _ in journals:
            by_label.setdefault(label, {}).setdefault(
                header["fingerprint"], []
            ).append(str(path))
        for label, fingerprints in sorted(by_label.items()):
            if len(fingerprints) > 1:
                detail = "; ".join(
                    f"fingerprint {fingerprint[:12]}… in {', '.join(paths)}"
                    for fingerprint, paths in sorted(fingerprints.items())
                )
                raise StoreError(
                    f"journals for label {label!r} carry mixed plan fingerprints "
                    f"({detail}) — they describe different plans (stale shard "
                    "journals from an older grid?); remove or move the stale "
                    "files before ingesting"
                )

    def _upsert_source(self, path: Path, kind: str) -> Optional[int]:
        """Record ``path`` in ``sources``; ``None`` means unchanged (skip).

        A changed file first drops every row its previous ingest contributed,
        so re-ingesting a grown shard journal (or a rewritten report) can
        never duplicate rows.
        """
        stat = path.stat()
        resolved = str(path.resolve())
        row = self._connection.execute(
            "SELECT source_id, mtime_ns, size_bytes FROM sources WHERE path = ?",
            (resolved,),
        ).fetchone()
        if row is not None:
            if row["mtime_ns"] == stat.st_mtime_ns and row["size_bytes"] == stat.st_size:
                return None
            source_id = row["source_id"]
            self._connection.execute("DELETE FROM cells WHERE source_id = ?", (source_id,))
            for report_row in self._connection.execute(
                "SELECT report_id FROM reports WHERE source_id = ?", (source_id,)
            ).fetchall():
                self._connection.execute(
                    "DELETE FROM attempts WHERE report_id = ?", (report_row["report_id"],)
                )
                self._connection.execute(
                    "DELETE FROM backends WHERE report_id = ?", (report_row["report_id"],)
                )
            self._connection.execute("DELETE FROM reports WHERE source_id = ?", (source_id,))
            self._connection.execute(
                "UPDATE sources SET mtime_ns = ?, size_bytes = ?, ingested_at = ? "
                "WHERE source_id = ?",
                # ingested_at is provenance metadata: sources-table only,
                # never journaled, never fingerprinted — hence the exemption.
                (stat.st_mtime_ns, stat.st_size, time.time(), source_id),  # repro-lint: disable=REP003 -- ingested_at is provenance metadata, never fingerprinted
            )
            return source_id
        cursor = self._connection.execute(
            "INSERT INTO sources (path, kind, mtime_ns, size_bytes, ingested_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (resolved, kind, stat.st_mtime_ns, stat.st_size, time.time()),  # repro-lint: disable=REP003 -- ingested_at is provenance metadata, never fingerprinted
        )
        return cursor.lastrowid

    def _campaign_id(self, label: str, header: dict, report: IngestReport) -> int:
        """The campaign row for ``(label, fingerprint)``, created on first sight."""
        row = self._connection.execute(
            "SELECT campaign_id FROM campaigns WHERE label = ? AND fingerprint = ?",
            (label, header["fingerprint"]),
        ).fetchone()
        if row is not None:
            return row["campaign_id"]
        cursor = self._connection.execute(
            "INSERT INTO campaigns (label, experiment_id, fingerprint, "
            "fingerprint_version, cell_count) VALUES (?, ?, ?, ?, ?)",
            (
                label,
                header.get("experiment_id", label),
                header["fingerprint"],
                header["fingerprint_version"],
                header.get("cell_count", 0),
            ),
        )
        report.campaigns_added += 1
        return cursor.lastrowid

    def _ingest_journal(
        self,
        path: Path,
        label: str,
        shard,
        header: dict,
        cells: Sequence[dict],
        report: IngestReport,
    ) -> None:
        """Insert one parsed journal's cell rows (skipping unchanged files)."""
        kind = "shard-journal" if shard is not None else "journal"
        source_id = self._upsert_source(path, kind)
        if source_id is None:
            report.skipped += 1
            return
        campaign_id = self._campaign_id(label, header, report)
        shard_index = shard.index if shard is not None else None
        shard_count = shard.count if shard is not None else None
        self._connection.executemany(
            "INSERT OR REPLACE INTO cells (campaign_id, source_id, cell_index, "
            "cell_key, output, shard_index, shard_count) VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    campaign_id,
                    source_id,
                    record["index"],
                    json.dumps(record.get("key")),
                    json.dumps(record["output"]),
                    shard_index,
                    shard_count,
                )
                for record in cells
            ],
        )
        report.cells_added += len(cells)
        report.ingested.append(str(path))

    def _ingest_report(self, path: Path, report: IngestReport) -> None:
        """Insert one ``<label>.orchestrator.json`` attempt report."""
        report.scanned += 1
        try:
            payload = json.loads(path.read_text(encoding="utf8"))
        except (OSError, json.JSONDecodeError) as error:
            report.warnings.append(f"skipping {path}: unreadable report ({error})")
            return
        if not isinstance(payload, dict) or "shards" not in payload:
            report.warnings.append(f"skipping {path}: not an orchestrator report")
            return
        source_id = self._upsert_source(path, "report")
        if source_id is None:
            report.skipped += 1
            return
        label = path.name[: -len(_REPORT_SUFFIX)]
        cursor = self._connection.execute(
            "INSERT INTO reports (source_id, label, experiment_id, shard_count, "
            "cell_count, max_retries, merged, duration_seconds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                source_id,
                label,
                payload.get("experiment_id", label),
                payload.get("shard_count", 0),
                payload.get("cell_count", 0),
                payload.get("max_retries", 0),
                1 if payload.get("merged") else 0,
                payload.get("duration_seconds", 0.0),
            ),
        )
        report_id = cursor.lastrowid
        self._connection.executemany(
            "INSERT INTO backends (report_id, position, description) VALUES (?, ?, ?)",
            [
                (report_id, position, str(description))
                for position, description in enumerate(payload.get("backends", []))
            ],
        )
        attempt_rows = []
        for outcome in payload.get("shards", []):
            for attempt in outcome.get("attempts", []):
                attempt_rows.append(
                    (
                        report_id,
                        outcome.get("shard", "?"),
                        attempt.get("number", 0),
                        attempt.get("backend"),
                        attempt.get("returncode"),
                        attempt.get("duration_seconds", 0.0),
                        attempt.get("cells_completed", 0),
                        1 if attempt.get("resumed") else 0,
                        attempt.get("reason"),
                        1 if attempt.get("reason") is None else 0,
                    )
                )
        self._connection.executemany(
            "INSERT INTO attempts (report_id, shard, attempt, backend, returncode, "
            "duration_seconds, cells_completed, resumed, reason, succeeded) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            attempt_rows,
        )
        report.attempts_added += len(attempt_rows)
        report.ingested.append(str(path))

    # --------------------------------------------------------------- queries
    def _campaign(self, label: str, fingerprint: Optional[str] = None) -> sqlite3.Row:
        """The newest campaign row for ``label`` (optionally pinned by digest)."""
        if fingerprint is not None:
            row = self._connection.execute(
                "SELECT * FROM campaigns WHERE label = ? AND fingerprint LIKE ? "
                "ORDER BY campaign_id DESC LIMIT 1",
                (label, fingerprint + "%"),
            ).fetchone()
        else:
            row = self._connection.execute(
                "SELECT * FROM campaigns WHERE label = ? ORDER BY campaign_id DESC LIMIT 1",
                (label,),
            ).fetchone()
        if row is None:
            known = [
                r["label"]
                for r in self._connection.execute(
                    "SELECT DISTINCT label FROM campaigns ORDER BY label"
                ).fetchall()
            ]
            raise StoreError(
                f"no ingested campaign named {label!r}"
                + (f" with fingerprint {fingerprint!r}" if fingerprint else "")
                + (f"; ingested labels: {known}" if known else "; the store is empty")
            )
        return row

    def query_campaigns(self) -> Tuple[List[str], List[tuple]]:
        """Canned query: every campaign with its cell coverage and sources."""
        rows = self._connection.execute(
            """
            SELECT c.label, c.experiment_id, c.fingerprint, c.fingerprint_version,
                   c.cell_count,
                   COUNT(DISTINCT l.cell_index) AS cells_ingested,
                   COUNT(DISTINCT l.source_id) AS sources
            FROM campaigns c LEFT JOIN cells l ON l.campaign_id = c.campaign_id
            GROUP BY c.campaign_id ORDER BY c.label, c.campaign_id
            """
        ).fetchall()
        columns = [
            "label",
            "experiment_id",
            "fingerprint",
            "fingerprint_version",
            "cell_count",
            "cells_ingested",
            "sources",
        ]
        return columns, [tuple(row) for row in rows]

    def query_cells(
        self, label: str, fingerprint: Optional[str] = None
    ) -> Tuple[List[str], List[tuple]]:
        """Canned query: per-cell outcomes of one campaign, in plan order.

        Each cell appears exactly once even when several sources recorded it
        (a merged journal beside shard journals): byte-identity makes every
        copy equal, so the first-ingested row wins deterministically.  The
        ``cell_key`` and ``output`` columns are JSON-decoded — ``output`` is
        exactly the journal's cell output, so reassembling the rows in order
        reproduces the merged journal payload.
        """
        campaign = self._campaign(label, fingerprint)
        rows = self._connection.execute(
            """
            SELECT cell_index, cell_key, output FROM cells
            WHERE campaign_id = :campaign
              AND rowid IN (SELECT MIN(rowid) FROM cells
                            WHERE campaign_id = :campaign GROUP BY cell_index)
            ORDER BY cell_index
            """,
            {"campaign": campaign["campaign_id"]},
        ).fetchall()
        return ["cell_index", "cell_key", "output"], [
            (row["cell_index"], json.loads(row["cell_key"]), json.loads(row["output"]))
            for row in rows
        ]

    def query_slice(
        self, label: str, coordinate: str = "ber", fingerprint: Optional[str] = None
    ) -> Tuple[List[str], List[tuple]]:
        """Canned query: outcome statistics sliced by one cell-key coordinate.

        Groups the campaign's cells by the value following ``coordinate`` in
        their key (e.g. ``ber`` for the failure-rate-vs-BER slices of the
        fig6a/fig6b grids) and aggregates every numeric leaf of the outputs:
        count, mean, min, max.  Cells whose key lacks the coordinate group
        under ``None``.
        """
        _, cells = self.query_cells(label, fingerprint)
        groups: Dict[object, List[float]] = {}
        cell_counts: Dict[object, int] = {}
        for _, key, output in cells:
            value = _key_coordinate(key, coordinate)
            groups.setdefault(value, []).extend(_numeric_leaves(output))
            cell_counts[value] = cell_counts.get(value, 0) + 1
        columns = [coordinate, "cells", "values", "mean", "min", "max"]
        rows = []
        for value in sorted(groups, key=lambda item: (item is None, str(item))):
            leaves = groups[value]
            rows.append(
                (
                    value,
                    cell_counts[value],
                    len(leaves),
                    round(sum(leaves) / len(leaves), 6) if leaves else None,
                    min(leaves) if leaves else None,
                    max(leaves) if leaves else None,
                )
            )
        return columns, rows

    def query_attempts(self, label: Optional[str] = None) -> Tuple[List[str], List[tuple]]:
        """Canned query: every orchestrator attempt, per shard, in order."""
        sql = """
            SELECT r.label, a.shard, a.attempt, a.backend, a.returncode,
                   a.duration_seconds, a.cells_completed, a.resumed, a.succeeded,
                   a.reason
            FROM attempts a JOIN reports r ON r.report_id = a.report_id
        """
        params: tuple = ()
        if label is not None:
            sql += " WHERE r.label = ?"
            params = (label,)
        sql += " ORDER BY r.label, a.shard, a.attempt"
        rows = self._connection.execute(sql, params).fetchall()
        columns = [
            "label",
            "shard",
            "attempt",
            "backend",
            "returncode",
            "duration_seconds",
            "cells_completed",
            "resumed",
            "succeeded",
            "reason",
        ]
        return columns, [tuple(row) for row in rows]

    def query_timings(self, label: Optional[str] = None) -> Tuple[List[str], List[tuple]]:
        """Canned query: per-backend attempt timings and success rates."""
        sql = """
            SELECT COALESCE(a.backend, '?') AS backend,
                   COUNT(*) AS attempts,
                   SUM(a.succeeded) AS succeeded,
                   ROUND(AVG(a.duration_seconds), 3) AS mean_seconds,
                   ROUND(SUM(a.duration_seconds), 3) AS total_seconds
            FROM attempts a JOIN reports r ON r.report_id = a.report_id
        """
        params: tuple = ()
        if label is not None:
            sql += " WHERE r.label = ?"
            params = (label,)
        sql += " GROUP BY a.backend ORDER BY backend"
        rows = self._connection.execute(sql, params).fetchall()
        return ["backend", "attempts", "succeeded", "mean_seconds", "total_seconds"], [
            tuple(row) for row in rows
        ]

    def sql(self, query: str) -> Tuple[List[str], List[tuple]]:
        """Raw-SQL escape hatch: execute ``query`` and return columns + rows."""
        try:
            cursor = self._connection.execute(query)
        except sqlite3.Error as error:
            raise StoreError(f"SQL query failed: {error}")
        columns = [description[0] for description in cursor.description or []]
        return columns, [tuple(row) for row in cursor.fetchall()]


def format_rows(columns: Sequence[str], rows: Sequence[tuple], fmt: str = "table") -> str:
    """Render a query result as ``table`` (aligned), ``json``, or ``ndjson``.

    Non-scalar values (decoded cell keys and outputs) stay JSON in every
    format: ``json``/``ndjson`` emit them natively, the table compacts them
    to one-line JSON.
    """
    records = [dict(zip(columns, row)) for row in rows]
    if fmt == "json":
        return json.dumps(records, indent=2)
    if fmt == "ndjson":
        return "\n".join(json.dumps(record) for record in records)
    if fmt != "table":
        raise StoreError(f"unknown output format {fmt!r}; use table, json or ndjson")

    def _cell_text(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, (dict, list)):
            return json.dumps(value)
        return str(value)

    texts = [[_cell_text(value) for value in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in texts)) if texts else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(str(column).ljust(width) for column, width in zip(columns, widths)).rstrip(),
        "  ".join("-" * width for width in widths),
    ]
    for row in texts:
        lines.append("  ".join(text.ljust(width) for text, width in zip(row, widths)).rstrip())
    lines.append(f"({len(rows)} row(s))")
    return "\n".join(lines)
